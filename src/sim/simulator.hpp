// Simulator driver: functional execution (every block, exact output) and
// sampled measurement (a few blocks per boundary region interpreted, metrics
// extrapolated by region population, then run through the timing model).
// Sampling is exact for our kernels because every block within one region
// executes the same instruction stream — only cache behaviour varies
// slightly at the image edges, which the per-region samples capture.
#pragma once

#include <memory>

#include "codegen/resource_estimator.hpp"
#include "sim/launch.hpp"
#include "sim/options.hpp"
#include "sim/timing.hpp"

namespace hipacc::sim {

class TraceSink;
struct ProgramSet;

struct LaunchStats {
  Metrics metrics;              ///< whole-grid (exact or extrapolated)
  TimingBreakdown timing;       ///< modelled time
  hw::OccupancyResult occupancy;
  hw::RegionGrid region_grid;
  bool sampled = false;
};

class Simulator {
 public:
  explicit Simulator(hw::DeviceSpec device,
                     SimulatorOptions options = DefaultSimulatorOptions())
      : device_(std::move(device)), options_(options) {}

  const SimulatorOptions& options() const noexcept { return options_; }

  const hw::DeviceSpec& device() const noexcept { return device_; }

  /// Attaches an observability sink: every Execute/Measure records a span
  /// with its configuration, metrics, and timing breakdown. `tid` labels the
  /// logical lane in the trace (exploration worker id). The sink must
  /// outlive the simulator; pass nullptr to detach. Launches themselves
  /// stay thread-safe, but set_trace must not race with in-flight launches.
  void set_trace(TraceSink* sink, int tid = 0) noexcept {
    trace_ = sink;
    trace_tid_ = tid;
  }
  TraceSink* trace() const noexcept { return trace_; }

  /// Validates the launch against device limits (configs exceeding the
  /// hardware model's resources fail like a real kernel-launch error).
  Status Validate(const Launch& launch) const;

  /// Executes every block of the grid (host-parallel), producing the exact
  /// output image and exact whole-grid metrics.
  Result<LaunchStats> Execute(const Launch& launch) const;

  /// Interprets up to `samples_per_region` blocks of each populated region
  /// and extrapolates. Output buffers are only partially written.
  Result<LaunchStats> Measure(const Launch& launch,
                              int samples_per_region = 3) const;

 private:
  hw::OccupancyResult Occupancy(const Launch& launch) const;
  double IssueScale(const Launch& launch) const;
  const hw::KernelResources& Resources(const Launch& launch) const;
  /// Resolves the bytecode programs for this launch: the artifact's
  /// pre-compiled set when attached, else a lazily compiled kernel-keyed
  /// cache. Returns null when the AST engine is selected or bytecode
  /// compilation bailed out (the launch then runs on the interpreter).
  const ProgramSet* PreparePrograms(const Launch& launch) const;

  hw::DeviceSpec device_;
  SimulatorOptions options_;
  TraceSink* trace_ = nullptr;
  int trace_tid_ = 0;
  /// Resource estimation walks the kernel IR; launches of the same kernel
  /// (every exploration candidate) reuse the walk. Guarded by the caller's
  /// single-threaded use of one Simulator per measurement lane.
  mutable const ast::DeviceKernel* resources_kernel_ = nullptr;
  mutable hw::KernelResources resources_cache_;
  /// Lazily compiled bytecode for launches that arrive without programs
  /// (hand-built launches, runtime paths that bypass the compiler pass).
  /// Same single-lane-use contract as the resources cache.
  mutable const ast::DeviceKernel* programs_kernel_ = nullptr;
  mutable std::shared_ptr<const ProgramSet> programs_cache_;
};

}  // namespace hipacc::sim
