// Ablation: scratchpad staging vs cached reads over growing window sizes
// (Section IV-A): "staging to scratchpad memory makes only sense in case the
// benefit of data reuse exceeds the multithreading benefit. For local
// operators with small window sizes, this is rarely the case." This sweep
// locates where (or whether) the crossover falls on each device.
#include <cstdio>

#include "compiler/executable.hpp"
#include "common/table.hpp"
#include "hwmodel/device_db.hpp"
#include "ops/kernel_sources.hpp"


using namespace hipacc;

namespace {

Result<double> Measure(int window, bool scratchpad,
                       codegen::TexturePolicy texture,
                       const hw::DeviceSpec& device, int n) {
  frontend::KernelSource source =
      ops::GaussianSource(window, 0.5f * window, ast::BoundaryMode::kClamp);
  compiler::CompileOptions copts;
  copts.codegen.use_scratchpad = scratchpad;
  copts.codegen.texture = texture;
  copts.device = device;
  copts.image_width = n;
  copts.image_height = n;
  copts.forced_config = hw::KernelConfig{32, 8};
  Result<compiler::CompiledKernel> compiled = compiler::Compile(source, copts);
  if (!compiled.ok()) return compiled.status();
  dsl::Image<float> in(n, n), out(n, n);
  runtime::BindingSet bindings;
  bindings.Input("Input", in).Output(out);
  compiler::SimulatedExecutable exe(std::move(compiled).take(), device);
  Result<sim::LaunchStats> stats = exe.Measure(bindings);
  if (!stats.ok()) return stats.status();
  return stats.value().timing.total_ms;
}

void Sweep(const hw::DeviceSpec& device) {
  const int n = 2048;
  std::printf("%s (%dx%d image, Gaussian clamp, config 32x8)\n",
              device.name.c_str(), n, n);
  std::printf("%8s  %10s  %10s  %10s\n", "window", "global", "texture",
              "smem");
  for (const int window : {3, 5, 9, 13, 17, 21, 25}) {
    auto global = Measure(window, false, codegen::TexturePolicy::kNone, device, n);
    auto tex = Measure(window, false, codegen::TexturePolicy::kLinear, device, n);
    auto smem = Measure(window, true, codegen::TexturePolicy::kNone, device, n);
    std::printf("%5dx%-3d %10.2f  %10.2f  %10.2f\n", window, window,
                global.ok() ? global.value() : -1.0,
                tex.ok() ? tex.value() : -1.0,
                smem.ok() ? smem.value() : -1.0);
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  hipacc::support::CliParser cli =
      hipacc::bench::MakeBenchCli("ablation_smem_window", "Ablation: scratchpad staging across window sizes");
  if (const int code = cli.HandleArgs(argc, argv); code >= 0) return code;

  std::printf("Ablation: scratchpad staging vs cached paths vs window size. "
              "Times in ms (modelled).\n\n");
  Sweep(hw::TeslaC2050());
  Sweep(hw::QuadroFx5800());
  return 0;
}
