// Scalar types of the DSL kernel subset. The paper's kernels operate on
// float images with int loop counters and bool conditions; we add uint for
// index arithmetic completeness.
#pragma once

#include <string>

namespace hipacc::ast {

enum class ScalarType {
  kVoid,
  kBool,
  kInt,
  kUInt,
  kFloat,
};

/// C spelling of the type ("float", "int", ...), shared by both emitters.
const char* to_string(ScalarType type) noexcept;

/// Usual arithmetic conversion of two operand types (bool->int->uint->float).
ScalarType Promote(ScalarType a, ScalarType b) noexcept;

/// True for int/uint/float (arithmetic operand types).
bool IsArithmetic(ScalarType type) noexcept;

/// Size in bytes on the simulated device (0 for void).
int SizeOf(ScalarType type) noexcept;

}  // namespace hipacc::ast
