#include "runtime/run_options.hpp"

#include "compiler/cache.hpp"
#include "compiler/driver.hpp"

namespace hipacc::runtime {

compiler::CompileOptions MakeCompileOptions(const RunOptions& options,
                                            int width, int height) {
  compiler::CompileOptions copts;
  copts.codegen = options.codegen;
  copts.device = options.device;
  copts.image_width = width;
  copts.image_height = height;
  copts.forced_config = options.forced_config;
  copts.trace = options.trace;
  copts.cache = options.cache != nullptr ? options.cache
                                         : &compiler::GlobalCompilationCache();
  copts.profiles = options.profiles;
  return copts;
}

}  // namespace hipacc::runtime
