// Reproduces Table II: bilateral filter on the Tesla C2050, CUDA backend,
// manual vs generated vs RapidMind implementations across boundary modes.
#include <cstdio>

#include "common/bilateral_table.hpp"
#include "common/table.hpp"
#include "hwmodel/device_db.hpp"

int main(int argc, char** argv) {
  hipacc::support::CliParser cli =
      hipacc::bench::MakeBenchCli("table2_tesla_cuda", "Table II: bilateral filter, Tesla C2050, CUDA backend");
  if (const int code = cli.HandleArgs(argc, argv); code >= 0) return code;
  hipacc::bench::BilateralTableOptions options;
  options.device = hipacc::hw::TeslaC2050();
  options.json_out = "BENCH_table2.json";
  options.backend = hipacc::ast::Backend::kCuda;
  options.include_rapidmind = true;
  std::printf("%s\n", hipacc::bench::RunBilateralTable(
                          "Table II: Tesla C2050, CUDA backend", options)
                          .c_str());
  return 0;
}
