// Scalar optimizer: CSE must collapse repeated reads, LICM must hoist
// loop-invariant reads/calls, and neither may change results (the functional
// equivalence is covered end-to-end by the integration tests; here we check
// the structural transformations directly).
#include "codegen/scalar_opt.hpp"

#include <gtest/gtest.h>

#include "ast/printer.hpp"
#include "ast/visitor.hpp"

namespace hipacc::codegen {
namespace {

using namespace hipacc::ast;

ExprPtr Read(const std::string& buf, ExprPtr x, ExprPtr y) {
  return MemRead(MemSpace::kGlobal, buf, std::move(x), std::move(y),
                 BoundaryMode::kUndefined, {});
}

int CountReads(const StmtPtr& stmt) {
  int reads = 0;
  VisitExprs(stmt, [&reads](const Expr& e) {
    if (e.kind == ExprKind::kMemRead) ++reads;
  });
  return reads;
}

TEST(ScalarOptTest, CseCollapsesDuplicateReads) {
  // d = IN[i, 0] + IN[i, 0];  e = IN[i, 0];
  const ExprPtr read = Read("IN", VarRef("i", ScalarType::kInt), IntLit(0));
  const StmtPtr body = Block({
      Decl(ScalarType::kFloat, "d", Binary(BinaryOp::kAdd, read, read)),
      Decl(ScalarType::kFloat, "e", read),
  });
  const StmtPtr optimized = OptimizeScalars(body);
  EXPECT_EQ(CountReads(optimized), 1);
  // The temp feeds both uses.
  const std::string text = PrintStmt(optimized);
  EXPECT_NE(text.find("_cse0"), std::string::npos);
}

TEST(ScalarOptTest, CseRespectsAssignedVariables) {
  // t is reassigned between the two uses of fmin(p, t): must NOT merge.
  const ExprPtr call = Call(
      "fmin",
      {VarRef("p", ScalarType::kFloat), VarRef("t", ScalarType::kFloat)},
      ScalarType::kFloat);
  const StmtPtr body = Block({
      Decl(ScalarType::kFloat, "a", call),
      Assign("t", AssignOp::kAssign, FloatLit(0.0)),
      Decl(ScalarType::kFloat, "b", call),
  });
  const StmtPtr optimized = OptimizeScalars(body);
  int calls = 0;
  VisitExprs(optimized, [&calls](const Expr& e) {
    if (e.kind == ExprKind::kCall) ++calls;
  });
  EXPECT_EQ(calls, 2);  // both call sites survive
}

TEST(ScalarOptTest, LicmHoistsInvariantRead) {
  // for i: s += IN[gid_x, gid_y]  -> read hoisted out of the loop.
  const ExprPtr center =
      Read("IN", ast::ThreadIndex(ThreadIndexKind::kGlobalIdX),
           ast::ThreadIndex(ThreadIndexKind::kGlobalIdY));
  const StmtPtr body = Block({
      Decl(ScalarType::kFloat, "s", FloatLit(0.0)),
      For("i", IntLit(0), IntLit(9), 1,
          Block({Assign("s", AssignOp::kAddAssign, center)})),
  });
  const StmtPtr optimized = OptimizeScalars(body);
  // The read appears before the loop, not inside it.
  ASSERT_EQ(optimized->kind, StmtKind::kBlock);
  bool read_in_loop = false;
  for (const auto& child : optimized->body) {
    if (child->kind == StmtKind::kFor)
      VisitExprs(child, [&](const Expr& e) {
        if (e.kind == ExprKind::kMemRead) read_in_loop = true;
      });
  }
  EXPECT_FALSE(read_in_loop);
  EXPECT_EQ(CountReads(optimized), 1);
}

TEST(ScalarOptTest, LoopVariantReadsStayInLoop) {
  const ExprPtr varying =
      Read("IN", VarRef("i", ScalarType::kInt), IntLit(0));
  const StmtPtr body = Block({
      Decl(ScalarType::kFloat, "s", FloatLit(0.0)),
      For("i", IntLit(0), IntLit(9), 1,
          Block({Assign("s", AssignOp::kAddAssign, varying)})),
  });
  const StmtPtr optimized = OptimizeScalars(body);
  bool read_in_loop = false;
  for (const auto& child : optimized->body)
    if (child->kind == StmtKind::kFor)
      VisitExprs(child, [&](const Expr& e) {
        if (e.kind == ExprKind::kMemRead) read_in_loop = true;
      });
  EXPECT_TRUE(read_in_loop);
}

TEST(ScalarOptTest, NestedLoopsHoistToOutermostLegalLevel) {
  // for y { for x { s += IN[gid, gid] } } -> hoisted above the y loop.
  const ExprPtr center =
      Read("IN", ast::ThreadIndex(ThreadIndexKind::kGlobalIdX),
           ast::ThreadIndex(ThreadIndexKind::kGlobalIdY));
  const StmtPtr body = Block({
      Decl(ScalarType::kFloat, "s", FloatLit(0.0)),
      For("y", IntLit(0), IntLit(3), 1,
          Block({For("x", IntLit(0), IntLit(3), 1,
                     Block({Assign("s", AssignOp::kAddAssign, center)}))})),
  });
  const StmtPtr optimized = OptimizeScalars(body);
  // Statement order at the top level: s decl, hoisted temp, outer loop.
  bool before_loop = false;
  for (const auto& child : optimized->body) {
    if (child->kind == StmtKind::kDecl && CountReads(child) == 1)
      before_loop = true;
    if (child->kind == StmtKind::kFor) {
      EXPECT_TRUE(before_loop);
      EXPECT_EQ(CountReads(child), 0);
    }
  }
  EXPECT_TRUE(before_loop);
}

TEST(ScalarOptTest, PlainArithmeticUntouched) {
  const StmtPtr body = Block({
      Decl(ScalarType::kFloat, "a",
           Binary(BinaryOp::kAdd, VarRef("x", ScalarType::kFloat),
                  VarRef("y", ScalarType::kFloat))),
      Decl(ScalarType::kFloat, "b",
           Binary(BinaryOp::kAdd, VarRef("x", ScalarType::kFloat),
                  VarRef("y", ScalarType::kFloat))),
  });
  // (x + y) twice, but without a read/call it is not hoistworthy.
  const StmtPtr optimized = OptimizeScalars(body);
  EXPECT_EQ(PrintStmt(optimized), PrintStmt(body));
}

}  // namespace
}  // namespace hipacc::codegen
