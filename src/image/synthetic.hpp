// Synthetic workload generators standing in for the Siemens angiography data
// the paper used. Local-operator cost is data-independent, so benchmarks only
// need correctly-sized images; the examples additionally want content where
// edge preservation (bilateral) and multiresolution artifacts are visible.
#pragma once

#include <cstdint>

#include "image/host_image.hpp"

namespace hipacc {

/// Uniform noise in [0, 1); deterministic for a given seed.
HostImage<float> MakeNoiseImage(int width, int height, std::uint64_t seed);

/// Smooth horizontal gradient from 0 to 1.
HostImage<float> MakeGradientImage(int width, int height);

/// A synthetic X-ray angiogram phantom: dark curved "vessels" of varying
/// width over a bright tissue-like background, plus additive Gaussian noise
/// of strength `noise_sigma` (0 disables noise). Pixel range ~[0, 1].
HostImage<float> MakeAngiogramPhantom(int width, int height,
                                      float noise_sigma, std::uint64_t seed);

/// Checkerboard with `cell` pixel squares alternating `lo` and `hi`.
HostImage<float> MakeCheckerboard(int width, int height, int cell, float lo,
                                  float hi);

/// All-zero image with a single impulse of `value` at (cx, cy); the classic
/// probe for inspecting a filter's point-spread function.
HostImage<float> MakeImpulseImage(int width, int height, int cx, int cy,
                                  float value);

/// Image whose pixel (x, y) == y * width + x; handy for boundary-mode tests
/// because every pixel value identifies its coordinates.
HostImage<float> MakeIndexImage(int width, int height);

}  // namespace hipacc
