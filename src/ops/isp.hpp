// Camera-ISP workload for the streaming frame executor: the classic
// raw-to-YUV front half of a camera image signal processor, expressed as a
// PipelineGraph so every frame of a video stream re-executes the identical
// compiled plan. The chain is
//
//   raw, gain (sources)
//     -> shaded   lens-shading / vignetting correction (raw * gain map)
//     -> r, g, b  demosaic planes: three 3x3 interpolation convolutions
//                 reading the same shaded image (horizontal-fusion siblings)
//     -> y, u, v  color-space matrix (BT.601), one 3-accessor point op per
//                 output channel
//     -> y_dn     3x3 Gaussian luma denoise (the existing Gaussian stage)
//
// with outputs y_dn, u, v — the shape openpilot-style camera pipelines run
// per frame at 30-120 fps.
//
// The DSL (and the host bytecode executor the streaming benches lean on)
// only expresses coordinate-free operators, so two stages are stand-ins for
// their coordinate-dependent textbook forms: demosaicing uses fixed
// parity-averaged interpolation masks instead of switching on the Bayer
// phase of (x, y), and vignetting reads a precomputed radial gain *image*
// (MakeVignettingGain) instead of evaluating the radius per pixel. Both
// keep the arithmetic-per-pixel and dataflow of the real chain, which is
// what the streaming executor exercises.
#pragma once

#include "ast/metadata.hpp"
#include "frontend/parser.hpp"
#include "image/host_image.hpp"
#include "runtime/graph.hpp"

namespace hipacc::ops {

/// Demosaic interpolation plane for the R/G/B channel: a 3x3 convolution
/// with the bilinear Bayer-interpolation mask averaged over the four Bayer
/// phases (coordinate-free stand-in; see file comment). `plane` is 'r', 'g',
/// or 'b' and names the kernel "debayer_<plane>".
frontend::KernelSource DebayerPlaneSource(char plane, ast::BoundaryMode mode);

/// Point operator: output() = Input() * Gain() — lens-shading correction
/// against a per-pixel gain map bound as a second input image.
frontend::KernelSource VignettingApplySource();

/// Point operator: output() = c_r * R() + c_g * G() + c_b * B() + bias,
/// with the four coefficients as scalar params — one instance per YUV
/// channel, bound to the BT.601 row in BuildCameraIspGraph.
frontend::KernelSource ColorMatrixSource(const std::string& name);

/// Radial lens-shading gain map: 1.0 in the centre rising to `edge_gain`
/// in the corners (quadratic falloff model, evaluated on the host once per
/// stream, not per frame).
HostImage<float> MakeVignettingGain(int width, int height,
                                    float edge_gain = 1.8f);

/// Declares the full ISP chain on `graph` (see file comment): sources "raw"
/// and "gain" (width x height), outputs "y_dn", "u", "v". Reusable: bind
/// the sources/outputs and run — one-shot or through the StreamExecutor.
void BuildCameraIspGraph(runtime::PipelineGraph& graph, int width, int height,
                         ast::BoundaryMode mode);

}  // namespace hipacc::ops
