#include "compiler/disk_cache.hpp"

#include "sim/bytecode.hpp"
#include "support/serial.hpp"

namespace hipacc::compiler {
namespace {

using support::BinaryReader;
using support::BinaryWriter;

// Per-artifact payload tags, distinct from the DiskStore frame header: the
// frame proves "this file belongs to this key"; the tag proves "this payload
// is the artifact type the caller expects".
constexpr std::uint32_t kFrontendTag = 0x48504631;  // "HPF1"
constexpr std::uint32_t kTargetTag = 0x48505431;    // "HPT1"

// ---- Expr / Stmt trees ----------------------------------------------------
//
// Trees are encoded pre-order with a nullable marker per child pointer. The
// reader carries an explicit depth budget: a hostile payload cannot recurse
// the decoder off the stack, it just fails decode.
constexpr int kMaxTreeDepth = 512;

void PutExpr(BinaryWriter& w, const ast::ExprPtr& expr);

void PutExprBody(BinaryWriter& w, const ast::Expr& e) {
  w.U32(static_cast<std::uint32_t>(e.kind));
  w.U32(static_cast<std::uint32_t>(e.type));
  w.I64(e.int_value);
  w.F64(e.float_value);
  w.Bool(e.bool_value);
  w.Str(e.name);
  w.U32(static_cast<std::uint32_t>(e.unary_op));
  w.U32(static_cast<std::uint32_t>(e.binary_op));
  w.U64(e.args.size());
  for (const ast::ExprPtr& arg : e.args) PutExpr(w, arg);
  w.U32(static_cast<std::uint32_t>(e.thread_index));
  w.Bool(e.is_y);
  w.U32(static_cast<std::uint32_t>(e.space));
  w.U32(static_cast<std::uint32_t>(e.boundary));
  w.Bool(e.checks.lo_x);
  w.Bool(e.checks.hi_x);
  w.Bool(e.checks.lo_y);
  w.Bool(e.checks.hi_y);
  w.F64(static_cast<double>(e.constant_value));
}

void PutExpr(BinaryWriter& w, const ast::ExprPtr& expr) {
  w.Bool(expr != nullptr);
  if (expr) PutExprBody(w, *expr);
}

ast::ExprPtr GetExpr(BinaryReader& r, int depth);

ast::ExprPtr GetExprBody(BinaryReader& r, int depth) {
  if (depth > kMaxTreeDepth) return nullptr;
  ast::Expr e;
  e.kind = static_cast<ast::ExprKind>(r.U32());
  e.type = static_cast<ast::ScalarType>(r.U32());
  e.int_value = r.I64();
  e.float_value = r.F64();
  e.bool_value = r.Bool();
  e.name = r.Str();
  e.unary_op = static_cast<ast::UnaryOp>(r.U32());
  e.binary_op = static_cast<ast::BinaryOp>(r.U32());
  const std::uint64_t n_args = r.U64();
  if (!r.ok() || n_args > (1u << 20)) return nullptr;
  e.args.reserve(n_args);
  for (std::uint64_t i = 0; i < n_args; ++i) {
    ast::ExprPtr arg = GetExpr(r, depth + 1);
    if (!r.ok()) return nullptr;
    e.args.push_back(std::move(arg));
  }
  e.thread_index = static_cast<ast::ThreadIndexKind>(r.U32());
  e.is_y = r.Bool();
  e.space = static_cast<ast::MemSpace>(r.U32());
  e.boundary = static_cast<ast::BoundaryMode>(r.U32());
  e.checks.lo_x = r.Bool();
  e.checks.hi_x = r.Bool();
  e.checks.lo_y = r.Bool();
  e.checks.hi_y = r.Bool();
  e.constant_value = static_cast<float>(r.F64());
  if (!r.ok()) return nullptr;
  return std::make_shared<const ast::Expr>(std::move(e));
}

ast::ExprPtr GetExpr(BinaryReader& r, int depth) {
  if (!r.Bool()) return nullptr;
  return GetExprBody(r, depth);
}

void PutStmt(BinaryWriter& w, const ast::StmtPtr& stmt);

void PutStmtBody(BinaryWriter& w, const ast::Stmt& s) {
  w.U32(static_cast<std::uint32_t>(s.kind));
  w.Str(s.name);
  w.U32(static_cast<std::uint32_t>(s.decl_type));
  w.U32(static_cast<std::uint32_t>(s.assign_op));
  PutExpr(w, s.value);
  PutExpr(w, s.cond);
  PutExpr(w, s.lo);
  PutExpr(w, s.hi);
  w.I32(s.step);
  PutExpr(w, s.x);
  PutExpr(w, s.y);
  w.U32(static_cast<std::uint32_t>(s.space));
  w.U64(s.body.size());
  for (const ast::StmtPtr& child : s.body) PutStmt(w, child);
}

void PutStmt(BinaryWriter& w, const ast::StmtPtr& stmt) {
  w.Bool(stmt != nullptr);
  if (stmt) PutStmtBody(w, *stmt);
}

ast::StmtPtr GetStmt(BinaryReader& r, int depth);

ast::StmtPtr GetStmtBody(BinaryReader& r, int depth) {
  if (depth > kMaxTreeDepth) return nullptr;
  ast::Stmt s;
  s.kind = static_cast<ast::StmtKind>(r.U32());
  s.name = r.Str();
  s.decl_type = static_cast<ast::ScalarType>(r.U32());
  s.assign_op = static_cast<ast::AssignOp>(r.U32());
  s.value = GetExpr(r, depth + 1);
  s.cond = GetExpr(r, depth + 1);
  s.lo = GetExpr(r, depth + 1);
  s.hi = GetExpr(r, depth + 1);
  s.step = r.I32();
  s.x = GetExpr(r, depth + 1);
  s.y = GetExpr(r, depth + 1);
  s.space = static_cast<ast::MemSpace>(r.U32());
  const std::uint64_t n_body = r.U64();
  if (!r.ok() || n_body > (1u << 20)) return nullptr;
  s.body.reserve(n_body);
  for (std::uint64_t i = 0; i < n_body; ++i) {
    ast::StmtPtr child = GetStmt(r, depth + 1);
    if (!r.ok()) return nullptr;
    s.body.push_back(std::move(child));
  }
  if (!r.ok()) return nullptr;
  return std::make_shared<const ast::Stmt>(std::move(s));
}

ast::StmtPtr GetStmt(BinaryReader& r, int depth) {
  if (!r.Bool()) return nullptr;
  return GetStmtBody(r, depth);
}

// ---- Metadata structs -----------------------------------------------------

void PutWindow(BinaryWriter& w, const ast::WindowExtent& window) {
  w.I32(window.half_x);
  w.I32(window.half_y);
}

ast::WindowExtent GetWindow(BinaryReader& r) {
  ast::WindowExtent window;
  window.half_x = r.I32();
  window.half_y = r.I32();
  return window;
}

void PutParams(BinaryWriter& w, const std::vector<ast::ParamInfo>& params) {
  w.U64(params.size());
  for (const ast::ParamInfo& p : params) {
    w.Str(p.name);
    w.U32(static_cast<std::uint32_t>(p.type));
  }
}

bool GetParams(BinaryReader& r, std::vector<ast::ParamInfo>* params) {
  const std::uint64_t n = r.U64();
  if (!r.ok() || n > (1u << 16)) return false;
  params->reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    ast::ParamInfo p;
    p.name = r.Str();
    p.type = static_cast<ast::ScalarType>(r.U32());
    params->push_back(std::move(p));
  }
  return r.ok();
}

void PutMasks(BinaryWriter& w, const std::vector<ast::MaskInfo>& masks) {
  w.U64(masks.size());
  for (const ast::MaskInfo& m : masks) {
    w.Str(m.name);
    w.I32(m.size_x);
    w.I32(m.size_y);
    w.U64(m.static_values.size());
    for (const float v : m.static_values) w.F64(static_cast<double>(v));
  }
}

bool GetMasks(BinaryReader& r, std::vector<ast::MaskInfo>* masks) {
  const std::uint64_t n = r.U64();
  if (!r.ok() || n > (1u << 16)) return false;
  masks->reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    ast::MaskInfo m;
    m.name = r.Str();
    m.size_x = r.I32();
    m.size_y = r.I32();
    const std::uint64_t n_values = r.U64();
    if (!r.ok() || n_values > (1u << 20)) return false;
    m.static_values.reserve(n_values);
    for (std::uint64_t j = 0; j < n_values; ++j)
      m.static_values.push_back(static_cast<float>(r.F64()));
    masks->push_back(std::move(m));
  }
  return r.ok();
}

void PutDecl(BinaryWriter& w, const ast::KernelDecl& decl) {
  w.Str(decl.name);
  PutParams(w, decl.params);
  w.U64(decl.accessors.size());
  for (const ast::AccessorInfo& a : decl.accessors) {
    w.Str(a.name);
    PutWindow(w, a.window);
    w.U32(static_cast<std::uint32_t>(a.boundary));
    w.F64(static_cast<double>(a.constant_value));
  }
  PutMasks(w, decl.masks);
  w.U64(decl.extra_outputs.size());
  for (const std::string& name : decl.extra_outputs) w.Str(name);
  PutStmt(w, decl.body);
}

bool GetDecl(BinaryReader& r, ast::KernelDecl* decl) {
  decl->name = r.Str();
  if (!GetParams(r, &decl->params)) return false;
  const std::uint64_t n_acc = r.U64();
  if (!r.ok() || n_acc > (1u << 16)) return false;
  decl->accessors.reserve(n_acc);
  for (std::uint64_t i = 0; i < n_acc; ++i) {
    ast::AccessorInfo a;
    a.name = r.Str();
    a.window = GetWindow(r);
    a.boundary = static_cast<ast::BoundaryMode>(r.U32());
    a.constant_value = static_cast<float>(r.F64());
    decl->accessors.push_back(std::move(a));
  }
  if (!GetMasks(r, &decl->masks)) return false;
  const std::uint64_t n_extra = r.U64();
  if (!r.ok() || n_extra > (1u << 16)) return false;
  decl->extra_outputs.reserve(n_extra);
  for (std::uint64_t i = 0; i < n_extra; ++i)
    decl->extra_outputs.push_back(r.Str());
  decl->body = GetStmt(r, 0);
  return r.ok();
}

void PutDeviceKernel(BinaryWriter& w, const ast::DeviceKernel& k) {
  w.Str(k.name);
  w.U32(static_cast<std::uint32_t>(k.backend));
  PutParams(w, k.params);
  w.U64(k.buffers.size());
  for (const ast::BufferParam& b : k.buffers) {
    w.Str(b.name);
    w.U32(static_cast<std::uint32_t>(b.space));
    w.Bool(b.is_output);
    w.Bool(b.texture_2d_array);
  }
  PutMasks(w, k.const_masks);
  PutMasks(w, k.global_masks);
  w.Bool(k.smem.has_value());
  if (k.smem) {
    w.Str(k.smem->accessor);
    w.Str(k.smem->smem_name);
    PutWindow(w, k.smem->window);
    w.U32(static_cast<std::uint32_t>(k.smem->boundary));
    w.F64(static_cast<double>(k.smem->constant_value));
  }
  w.U64(k.variants.size());
  for (const ast::RegionVariant& v : k.variants) {
    w.U32(static_cast<std::uint32_t>(v.region));
    PutStmt(w, v.body);
  }
  PutWindow(w, k.bh_window);
  w.U32(static_cast<std::uint32_t>(k.boundary));
  w.Bool(k.vliw_vectorized);
  w.I32(k.ppt);
}

bool GetDeviceKernel(BinaryReader& r, ast::DeviceKernel* k) {
  k->name = r.Str();
  k->backend = static_cast<ast::Backend>(r.U32());
  if (!GetParams(r, &k->params)) return false;
  const std::uint64_t n_buffers = r.U64();
  if (!r.ok() || n_buffers > (1u << 16)) return false;
  k->buffers.reserve(n_buffers);
  for (std::uint64_t i = 0; i < n_buffers; ++i) {
    ast::BufferParam b;
    b.name = r.Str();
    b.space = static_cast<ast::MemSpace>(r.U32());
    b.is_output = r.Bool();
    b.texture_2d_array = r.Bool();
    k->buffers.push_back(std::move(b));
  }
  if (!GetMasks(r, &k->const_masks)) return false;
  if (!GetMasks(r, &k->global_masks)) return false;
  if (r.Bool()) {
    ast::SmemPlan plan;
    plan.accessor = r.Str();
    plan.smem_name = r.Str();
    plan.window = GetWindow(r);
    plan.boundary = static_cast<ast::BoundaryMode>(r.U32());
    plan.constant_value = static_cast<float>(r.F64());
    k->smem = std::move(plan);
  }
  const std::uint64_t n_variants = r.U64();
  if (!r.ok() || n_variants > 16) return false;
  k->variants.reserve(n_variants);
  for (std::uint64_t i = 0; i < n_variants; ++i) {
    ast::RegionVariant v;
    v.region = static_cast<ast::Region>(r.U32());
    v.body = GetStmt(r, 0);
    if (!r.ok()) return false;
    k->variants.push_back(std::move(v));
  }
  k->bh_window = GetWindow(r);
  k->boundary = static_cast<ast::BoundaryMode>(r.U32());
  k->vliw_vectorized = r.Bool();
  k->ppt = r.I32();
  return r.ok();
}

void PutResources(BinaryWriter& w, const hw::KernelResources& res) {
  w.I32(res.regs_per_thread);
  w.I32(res.smem_static_bytes);
  w.Bool(res.smem_tile);
  w.I32(res.smem_halo_x);
  w.I32(res.smem_halo_y);
  w.I32(res.elem_bytes);
  w.I32(res.ppt);
  w.I64(res.approx_ops);
}

hw::KernelResources GetResources(BinaryReader& r) {
  hw::KernelResources res;
  res.regs_per_thread = r.I32();
  res.smem_static_bytes = r.I32();
  res.smem_tile = r.Bool();
  res.smem_halo_x = r.I32();
  res.smem_halo_y = r.I32();
  res.elem_bytes = r.I32();
  res.ppt = r.I32();
  res.approx_ops = r.I64();
  return res;
}

void PutCodegen(BinaryWriter& w, const codegen::CodegenOptions& o) {
  w.U32(static_cast<std::uint32_t>(o.backend));
  w.U32(static_cast<std::uint32_t>(o.texture));
  w.U32(static_cast<std::uint32_t>(o.border));
  w.Bool(o.use_scratchpad);
  w.Bool(o.masks_in_constant_memory);
  w.Bool(o.use_fast_intrinsics);
  w.Bool(o.scalar_optimizer);
  w.Bool(o.vectorize_vliw);
  w.I32(o.pixels_per_thread);
}

codegen::CodegenOptions GetCodegen(BinaryReader& r) {
  codegen::CodegenOptions o;
  o.backend = static_cast<ast::Backend>(r.U32());
  o.texture = static_cast<codegen::TexturePolicy>(r.U32());
  o.border = static_cast<codegen::BorderPolicy>(r.U32());
  o.use_scratchpad = r.Bool();
  o.masks_in_constant_memory = r.Bool();
  o.use_fast_intrinsics = r.Bool();
  o.scalar_optimizer = r.Bool();
  o.vectorize_vliw = r.Bool();
  o.pixels_per_thread = r.I32();
  return o;
}

void PutChoice(BinaryWriter& w, const hw::HeuristicChoice& c) {
  w.I32(c.config.block_x);
  w.I32(c.config.block_y);
  w.Bool(c.occupancy.valid);
  w.Str(c.occupancy.reason);
  w.I32(c.occupancy.blocks_per_sm);
  w.I32(c.occupancy.active_warps);
  w.F64(c.occupancy.occupancy);
  w.U32(static_cast<std::uint32_t>(c.occupancy.limiter));
  w.I64(c.border_threads);
}

hw::HeuristicChoice GetChoice(BinaryReader& r) {
  hw::HeuristicChoice c;
  c.config.block_x = r.I32();
  c.config.block_y = r.I32();
  c.occupancy.valid = r.Bool();
  c.occupancy.reason = r.Str();
  c.occupancy.blocks_per_sm = r.I32();
  c.occupancy.active_warps = r.I32();
  c.occupancy.occupancy = r.F64();
  c.occupancy.limiter = static_cast<hw::OccupancyLimiter>(r.U32());
  c.border_threads = r.I64();
  return c;
}

}  // namespace

std::string EncodeFrontendArtifacts(const FrontendArtifacts& artifacts) {
  BinaryWriter w;
  w.U32(kFrontendTag);
  PutDecl(w, artifacts.decl);
  PutDeviceKernel(w, artifacts.device_ir);
  PutResources(w, artifacts.resources);
  PutCodegen(w, artifacts.codegen);
  w.Str(artifacts.source_fingerprint);
  w.U64(artifacts.source_hash);
  return w.Take();
}

std::optional<FrontendArtifacts> DecodeFrontendArtifacts(
    const std::string& payload) {
  BinaryReader r(payload);
  if (r.U32() != kFrontendTag) return std::nullopt;
  FrontendArtifacts artifacts;
  if (!GetDecl(r, &artifacts.decl)) return std::nullopt;
  if (!GetDeviceKernel(r, &artifacts.device_ir)) return std::nullopt;
  artifacts.resources = GetResources(r);
  artifacts.codegen = GetCodegen(r);
  artifacts.source_fingerprint = r.Str();
  artifacts.source_hash = r.U64();
  if (!r.AtEnd()) return std::nullopt;
  return artifacts;
}

std::string EncodeCompiledKernel(const CompiledKernel& kernel) {
  BinaryWriter w;
  w.U32(kTargetTag);
  PutDecl(w, kernel.decl);
  PutDeviceKernel(w, kernel.device_ir);
  w.Str(kernel.source);
  PutResources(w, kernel.resources);
  PutChoice(w, kernel.config);
  PutCodegen(w, kernel.codegen);
  w.Str(kernel.source_fingerprint);
  w.U64(kernel.source_hash);
  return w.Take();
}

std::optional<CompiledKernel> DecodeCompiledKernel(const std::string& payload) {
  BinaryReader r(payload);
  if (r.U32() != kTargetTag) return std::nullopt;
  CompiledKernel kernel;
  if (!GetDecl(r, &kernel.decl)) return std::nullopt;
  if (!GetDeviceKernel(r, &kernel.device_ir)) return std::nullopt;
  kernel.source = r.Str();
  kernel.resources = GetResources(r);
  kernel.config = GetChoice(r);
  kernel.codegen = GetCodegen(r);
  kernel.source_fingerprint = r.Str();
  kernel.source_hash = r.U64();
  if (!r.AtEnd()) return std::nullopt;
  // Re-attach the interpreter bytecode: it is derived state, cheap to
  // rebuild, and pinning it to the IR here keeps the disk format small and
  // the VM free to evolve without schema bumps. A bytecode fallback (IR the
  // VM cannot prove) leaves it null, exactly like the live pipeline.
  Result<std::shared_ptr<const sim::ProgramSet>> bytecode =
      sim::CompileToBytecode(kernel.device_ir);
  if (bytecode.ok()) kernel.bytecode = std::move(bytecode.value());
  return kernel;
}

}  // namespace hipacc::compiler
