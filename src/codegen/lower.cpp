#include "codegen/lower.hpp"

#include "ast/const_fold.hpp"
#include "ast/visitor.hpp"
#include "codegen/readwrite.hpp"
#include "codegen/scalar_opt.hpp"
#include "support/string_utils.hpp"

namespace hipacc::codegen {
namespace {

using namespace hipacc::ast;

/// Narrows the region's guard set for one access by its offset expressions:
/// a literal offset can only cross the border in its own sign's direction,
/// and the center pixel (offset 0) never can. Non-literal offsets (loop
/// variables) keep the full region guards.
RegionChecks NarrowChecks(RegionChecks region, const ExprPtr& dx,
                          const ExprPtr& dy) {
  RegionChecks checks = region;
  double off = 0.0;
  if (EvaluateConstant(dx, &off)) {
    if (off >= 0) checks.lo_x = false;
    if (off <= 0) checks.hi_x = false;
  }
  if (EvaluateConstant(dy, &off)) {
    if (off >= 0) checks.lo_y = false;
    if (off <= 0) checks.hi_y = false;
  }
  return checks;
}

ExprPtr GlobalX() { return ast::ThreadIndex(ThreadIndexKind::kGlobalIdX); }
ExprPtr GlobalY() { return ast::ThreadIndex(ThreadIndexKind::kGlobalIdY); }

class Lowerer {
 public:
  Lowerer(const KernelDecl& kernel, const CodegenOptions& options)
      : kernel_(kernel), options_(options),
        ppt_(options.pixels_per_thread > 1 ? options.pixels_per_thread : 1) {}

  Result<DeviceKernel> Run() {
    const AccessSummary access = AnalyzeAccesses(kernel_);
    if (!access.output_written)
      return Status::Invalid("kernel '" + kernel_.name +
                             "' never writes output()");

    DeviceKernel dk;
    dk.name = kernel_.name;
    dk.backend = options_.backend;
    dk.params = kernel_.params;
    dk.bh_window = kernel_.MaxWindow();
    dk.boundary = kernel_.accessors.empty() ? BoundaryMode::kUndefined
                                            : kernel_.accessors.front().boundary;
    dk.vliw_vectorized = options_.vectorize_vliw;
    dk.ppt = ppt_;

    // Decide the memory space of each input (read/write analysis gates the
    // texture path: only pure reads may go through it).
    for (const auto& acc : kernel_.accessors) {
      BufferParam buf;
      buf.name = acc.name;
      const auto it = access.accessors.find(acc.name);
      const bool read_only =
          it == access.accessors.end() || it->second == AccessKind::kRead ||
          it->second == AccessKind::kNone;
      buf.space = (options_.texture != TexturePolicy::kNone && read_only)
                      ? MemSpace::kTexture
                      : MemSpace::kGlobal;
      buf.texture_2d_array = buf.space == MemSpace::kTexture &&
                             options_.texture == TexturePolicy::kArray2D;
      if (options_.texture == TexturePolicy::kArray2D) {
        // Hardware address modes exist only for Clamp and Repeat; Mirror and
        // Constant cannot be expressed (the paper's "n/a" table cells).
        if (acc.boundary == BoundaryMode::kMirror)
          return Status::Unimplemented(
              "2D texture boundary handling supports only Clamp and Repeat");
        if (acc.boundary == BoundaryMode::kConstant &&
            options_.backend == Backend::kCuda)
          return Status::Unimplemented(
              "CUDA 2D texture boundary handling supports only Clamp and Repeat");
      }
      buffers_cache_.push_back(buf);
    }
    buffers_cache_.push_back({"_out", MemSpace::kGlobal, true});
    // Extra outputs of multi-output (horizontally fused) kernels follow the
    // primary output so output_buffer() keeps returning "_out".
    for (const auto& name : kernel_.extra_outputs)
      buffers_cache_.push_back({"_out_" + name, MemSpace::kGlobal, true});

    // Masks: constant memory by default; a global buffer otherwise. Masks
    // whose every read was constant-propagated away (convolve() unrolling)
    // are dropped entirely.
    for (const auto& mask : kernel_.masks) {
      const auto reads = access.mask_reads.find(mask.name);
      if (reads == access.mask_reads.end() || reads->second == 0) continue;
      if (options_.masks_in_constant_memory) {
        dk.const_masks.push_back(mask);
      } else {
        dk.global_masks.push_back(mask);
        buffers_cache_.push_back({mask.name, MemSpace::kGlobal, false});
      }
    }
    dk.buffers = buffers_cache_;

    // Scratchpad staging plan (first windowed accessor).
    if (options_.use_scratchpad) {
      for (const auto& acc : kernel_.accessors) {
        if (acc.window.half_x == 0 && acc.window.half_y == 0) continue;
        SmemPlan plan;
        plan.accessor = acc.name;
        plan.smem_name = "_smem" + acc.name;
        plan.window = acc.window;
        plan.boundary = acc.boundary;
        plan.constant_value = acc.constant_value;
        dk.smem = plan;
        break;
      }
    }

    // Region variants.
    const bool bh = kernel_.NeedsBoundaryHandling();
    // With PPT > 1 only region variants carrying hi_y guards can prove their
    // extra rows handled; everywhere else a trailing block may hold rows past
    // the image, so sub-rows i >= 1 get an explicit If(y_i < IH) guard.
    row_guard_all_ = !(options_.border == BorderPolicy::kRegions && bh &&
                       dk.bh_window.half_y > 0);
    if (options_.border == BorderPolicy::kRegions && bh) {
      static constexpr Region kAllRegions[] = {
          Region::kTopLeft, Region::kTop, Region::kTopRight,
          Region::kLeft, Region::kInterior, Region::kRight,
          Region::kBottomLeft, Region::kBottom, Region::kBottomRight};
      for (const Region region : kAllRegions)
        dk.variants.push_back({region, LowerBody(ChecksFor(region))});
    } else if (options_.border == BorderPolicy::kUniform && bh) {
      dk.variants.push_back({Region::kInterior, LowerBody({true, true, true, true})});
    } else {
      dk.variants.push_back({Region::kInterior, LowerBody({})});
    }
    return dk;
  }

 private:
  /// Output row of sub-iteration `i`: gid_y for PPT=1, gid_y*ppt + i else.
  ExprPtr SubRowY(int i) const {
    if (ppt_ == 1) return GlobalY();
    ExprPtr base = Binary(BinaryOp::kMul, GlobalY(), IntLit(ppt_));
    return i == 0 ? base : Binary(BinaryOp::kAdd, std::move(base), IntLit(i));
  }

  StmtPtr LowerBody(RegionChecks region_checks) {
    if (ppt_ == 1) return LowerSubBody(region_checks, 0);
    std::vector<StmtPtr> subs;
    subs.reserve(static_cast<std::size_t>(ppt_));
    for (int i = 0; i < ppt_; ++i) {
      StmtPtr sub = LowerSubBody(region_checks, i);
      // The warp active mask only proves row 0 in bounds; later sub-rows of
      // a trailing block must be guarded unless the region variant's hi_y
      // band math already excludes them.
      if (i > 0 && (row_guard_all_ || region_checks.hi_y))
        sub = ast::If(Binary(BinaryOp::kLt, SubRowY(i),
                             ast::ThreadIndex(ThreadIndexKind::kImageH)),
                      sub);
      subs.push_back(std::move(sub));
    }
    return Block(std::move(subs));
  }

  StmtPtr LowerSubBody(RegionChecks region_checks, int sub) {
    cur_sub_ = sub;
    const ExprRewriteFn rewrite = [this, region_checks](const Expr& e) -> ExprPtr {
      switch (e.kind) {
        case ExprKind::kIterIndex:
          return e.is_y ? SubRowY(cur_sub_) : GlobalX();
        case ExprKind::kAccessorRead:
          return LowerAccessorRead(e, region_checks);
        case ExprKind::kMaskRead:
          return LowerMaskRead(e);
        default:
          return nullptr;
      }
    };
    StmtPtr body = RewriteStmtExprs(kernel_.body, rewrite);
    StmtPtr lowered = RewriteOutput(body);
    lowered = FoldConstants(lowered);
    if (options_.scalar_optimizer) lowered = OptimizeScalars(lowered);
    return lowered;
  }

  ExprPtr LowerAccessorRead(const Expr& e, RegionChecks region_checks) const {
    const AccessorInfo* acc = kernel_.FindAccessor(e.name);
    HIPACC_CHECK(acc != nullptr);
    const ExprPtr& dx = e.args[0];
    const ExprPtr& dy = e.args[1];

    // Scratchpad-staged accessor: reads are redirected to the tile, indexed
    // by local thread ids plus the halo (Listing 7, phase 2). Boundary
    // handling happened during staging, so no guards remain here.
    if (dk_smem_matches(e.name)) {
      ExprPtr lx = Binary(BinaryOp::kAdd,
                          ast::ThreadIndex(ThreadIndexKind::kThreadIdxX),
                          Binary(BinaryOp::kAdd, dx, IntLit(acc->window.half_x)));
      // Tile row of sub-row i: tid_y*ppt + i (the tile spans BSY*PPT + SY
      // rows when PPT > 1).
      ExprPtr tile_row = ast::ThreadIndex(ThreadIndexKind::kThreadIdxY);
      if (ppt_ > 1) {
        tile_row = Binary(BinaryOp::kMul, std::move(tile_row), IntLit(ppt_));
        if (cur_sub_ > 0)
          tile_row =
              Binary(BinaryOp::kAdd, std::move(tile_row), IntLit(cur_sub_));
      }
      ExprPtr ly = Binary(BinaryOp::kAdd, std::move(tile_row),
                          Binary(BinaryOp::kAdd, dy, IntLit(acc->window.half_y)));
      return ast::MemRead(MemSpace::kShared, "_smem" + e.name, std::move(lx),
                          std::move(ly), BoundaryMode::kUndefined, {});
    }

    RegionChecks checks =
        acc->boundary == BoundaryMode::kUndefined
            ? RegionChecks{}
            : NarrowChecks(region_checks, dx, dy);

    // Hardware boundary handling through 2D textures / samplers resolves
    // the address in the texture unit — no software guards.
    const BufferParam* buf = FindBuffer(e.name);
    HIPACC_CHECK(buf != nullptr);
    bool hardware_bh = options_.texture == TexturePolicy::kArray2D &&
                       buf->space == MemSpace::kTexture &&
                       acc->boundary != BoundaryMode::kUndefined;
    if (hardware_bh) checks = {};

    ExprPtr x = Binary(BinaryOp::kAdd, GlobalX(), dx);
    ExprPtr y = Binary(BinaryOp::kAdd, SubRowY(cur_sub_), dy);
    return ast::MemRead(buf->space, e.name, std::move(x), std::move(y),
                        acc->boundary, checks, acc->constant_value);
  }

  ExprPtr LowerMaskRead(const Expr& e) const {
    const MaskInfo* mask = kernel_.FindMask(e.name);
    HIPACC_CHECK(mask != nullptr);
    ExprPtr x = Binary(BinaryOp::kAdd, e.args[0], IntLit(mask->size_x / 2));
    ExprPtr y = Binary(BinaryOp::kAdd, e.args[1], IntLit(mask->size_y / 2));
    const MemSpace space = options_.masks_in_constant_memory
                               ? MemSpace::kConstant
                               : MemSpace::kGlobal;
    return ast::MemRead(space, e.name, std::move(x), std::move(y),
                        BoundaryMode::kUndefined, {});
  }

  /// Replaces OutputAssign statements with explicit global writes at the
  /// global thread index.
  StmtPtr RewriteOutput(const StmtPtr& stmt) const {
    if (!stmt) return nullptr;
    if (stmt->kind == StmtKind::kOutputAssign)
      return ast::MemWrite(MemSpace::kGlobal,
                           stmt->name.empty() ? "_out" : "_out_" + stmt->name,
                           GlobalX(), SubRowY(cur_sub_), stmt->value);
    if (stmt->body.empty()) return stmt;
    auto copy = std::make_shared<Stmt>(*stmt);
    bool changed = false;
    for (auto& child : copy->body) {
      StmtPtr next = RewriteOutput(child);
      if (next != child) {
        child = next;
        changed = true;
      }
    }
    return changed ? StmtPtr(copy) : stmt;
  }

  bool dk_smem_matches(const std::string& accessor) const {
    if (!options_.use_scratchpad) return false;
    const AccessorInfo* acc = kernel_.FindAccessor(accessor);
    if (!acc) return false;
    // Only the first windowed accessor is staged (matches Run()).
    for (const auto& candidate : kernel_.accessors) {
      if (candidate.window.half_x == 0 && candidate.window.half_y == 0)
        continue;
      return candidate.name == accessor;
    }
    return false;
  }

  const BufferParam* FindBuffer(const std::string& name) const {
    for (const auto& buf : buffers_cache_)
      if (buf.name == name) return &buf;
    return nullptr;
  }

 public:
  /// Populated by Run() before LowerBody uses it.
  std::vector<BufferParam> buffers_cache_;

 private:
  const KernelDecl& kernel_;
  const CodegenOptions& options_;
  const int ppt_;
  int cur_sub_ = 0;         ///< sub-iteration being lowered (0..ppt-1)
  bool row_guard_all_ = true;
};

}  // namespace

Result<ast::DeviceKernel> LowerKernel(const ast::KernelDecl& kernel,
                                      const CodegenOptions& options) {
  Lowerer lowerer(kernel, options);
  return lowerer.Run();
}

}  // namespace hipacc::codegen
