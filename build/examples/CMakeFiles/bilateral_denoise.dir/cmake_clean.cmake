file(REMOVE_RECURSE
  "CMakeFiles/bilateral_denoise.dir/bilateral_denoise.cpp.o"
  "CMakeFiles/bilateral_denoise.dir/bilateral_denoise.cpp.o.d"
  "bilateral_denoise"
  "bilateral_denoise.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bilateral_denoise.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
