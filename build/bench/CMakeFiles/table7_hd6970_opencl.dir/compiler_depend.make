# Empty compiler generated dependencies file for table7_hd6970_opencl.
# This may be replaced when dependencies are built.
