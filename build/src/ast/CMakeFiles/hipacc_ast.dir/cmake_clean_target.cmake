file(REMOVE_RECURSE
  "libhipacc_ast.a"
)
