file(REMOVE_RECURSE
  "libhipacc_codegen.a"
)
