#include "sim/trace.hpp"

namespace hipacc::sim {

using support::Json;

void TraceSink::AddSpan(std::string name, std::string category,
                        double start_ms, double dur_ms, Json args, int tid) {
  TraceEvent event;
  event.name = std::move(name);
  event.category = std::move(category);
  event.start_ms = start_ms;
  event.dur_ms = dur_ms;
  event.tid = tid;
  event.args = std::move(args);
  const std::lock_guard<std::mutex> lock(mutex_);
  events_.push_back(std::move(event));
}

void TraceSink::AddInstant(std::string name, std::string category, Json args,
                           int tid) {
  AddSpan(std::move(name), std::move(category), NowMs(), 0.0, std::move(args),
          tid);
}

void TraceSink::RecordLaunch(const std::string& kernel_name,
                             const hw::KernelConfig& config,
                             const LaunchStats& stats, double start_ms,
                             double dur_ms, int tid) {
  Json args = Json::Object();
  args["config"] = ConfigJson(config);
  args["occupancy"] = OccupancyJson(stats.occupancy);
  args["metrics"] = MetricsJson(stats.metrics);
  args["timing"] = TimingJson(stats.timing);
  args["sampled"] = stats.sampled;
  AddSpan("launch " + kernel_name, "sim", start_ms, dur_ms, std::move(args),
          tid);
}

void TraceSink::IncrementCounter(const std::string& name, long long delta) {
  const std::lock_guard<std::mutex> lock(mutex_);
  counters_[name] += delta;
}

long long TraceSink::counter(const std::string& name) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

void TraceSink::RecordCacheAccess(const std::string& level, bool hit,
                                  const std::string& key_hex) {
  IncrementCounter((hit ? "cache_hit." : "cache_miss.") + level);
  Json args = Json::Object();
  args["level"] = level;
  args["hit"] = hit;
  args["key"] = key_hex;
  AddInstant(hit ? "cache_hit" : "cache_miss", "cache", std::move(args));
}

bool TraceSink::empty() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return events_.empty();
}

std::size_t TraceSink::event_count() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return events_.size();
}

Json TraceSink::ToJson() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  Json events = Json::Array();
  for (const TraceEvent& event : events_) {
    Json e = Json::Object();
    e["name"] = event.name;
    e["category"] = event.category;
    e["start_ms"] = event.start_ms;
    e["dur_ms"] = event.dur_ms;
    e["tid"] = event.tid;
    if (!event.args.is_null()) e["args"] = event.args;
    events.push_back(std::move(e));
  }
  Json doc = Json::Object();
  doc["events"] = std::move(events);
  if (!counters_.empty()) {
    Json counters = Json::Object();
    for (const auto& [name, value] : counters_) counters[name] = value;
    doc["counters"] = std::move(counters);
  }
  return doc;
}

std::string TraceSink::ToChromeTrace() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  Json events = Json::Array();
  for (const TraceEvent& event : events_) {
    Json e = Json::Object();
    e["name"] = event.name;
    e["cat"] = event.category;
    e["ph"] = "X";  // complete event: ts + dur
    e["ts"] = event.start_ms * 1000.0;   // trace_event wants microseconds
    e["dur"] = event.dur_ms * 1000.0;
    e["pid"] = 1;
    e["tid"] = event.tid;
    if (!event.args.is_null()) e["args"] = event.args;
    events.push_back(std::move(e));
  }
  Json doc = Json::Object();
  doc["traceEvents"] = std::move(events);
  doc["displayTimeUnit"] = "ms";
  if (!counters_.empty()) {
    // Extra top-level keys are preserved by the trace_event format; the
    // aggregate counters travel with the timeline they summarise.
    Json counters = Json::Object();
    for (const auto& [name, value] : counters_) counters[name] = value;
    doc["counters"] = std::move(counters);
  }
  return doc.Dump();
}

Status TraceSink::WriteJson(const std::string& path) const {
  return support::WriteFile(path, ToJson().Dump(2) + "\n");
}

Status TraceSink::WriteChromeTrace(const std::string& path) const {
  return support::WriteFile(path, ToChromeTrace() + "\n");
}

Json MetricsJson(const Metrics& metrics) {
  Json j = Json::Object();
  j["alu_ops"] = metrics.alu_ops;
  j["sfu_calls"] = metrics.sfu_calls;
  j["global_read_instrs"] = metrics.global_read_instrs;
  j["global_write_instrs"] = metrics.global_write_instrs;
  j["global_transactions"] = metrics.global_transactions;
  j["l1_hits"] = metrics.l1_hits;
  j["tex_read_instrs"] = metrics.tex_read_instrs;
  j["tex_hits"] = metrics.tex_hits;
  j["tex_transactions"] = metrics.tex_transactions;
  j["const_broadcasts"] = metrics.const_broadcasts;
  j["const_serialized"] = metrics.const_serialized;
  j["smem_accesses"] = metrics.smem_accesses;
  j["smem_conflict_cycles"] = metrics.smem_conflict_cycles;
  j["oob_violations"] = metrics.oob_violations;
  return j;
}

Json TimingJson(const TimingBreakdown& timing) {
  Json j = Json::Object();
  j["compute_cycles"] = timing.compute_cycles;
  j["bandwidth_cycles"] = timing.bandwidth_cycles;
  j["latency_cycles"] = timing.latency_cycles;
  j["total_ms"] = timing.total_ms;
  return j;
}

Json OccupancyJson(const hw::OccupancyResult& occupancy) {
  Json j = Json::Object();
  j["valid"] = occupancy.valid;
  j["occupancy"] = occupancy.occupancy;
  j["blocks_per_sm"] = occupancy.blocks_per_sm;
  j["active_warps"] = occupancy.active_warps;
  j["limiter"] = to_string(occupancy.limiter);
  return j;
}

Json ConfigJson(const hw::KernelConfig& config) {
  Json j = Json::Object();
  j["block_x"] = config.block_x;
  j["block_y"] = config.block_y;
  j["threads"] = config.threads();
  return j;
}

}  // namespace hipacc::sim
