#include "image/metrics.hpp"

#include <cmath>

namespace hipacc {

double MaxAbsDiff(const HostImage<float>& a, const HostImage<float>& b) {
  HIPACC_CHECK(a.width() == b.width() && a.height() == b.height());
  double worst = 0.0;
  for (int y = 0; y < a.height(); ++y)
    for (int x = 0; x < a.width(); ++x)
      worst = std::max(worst, std::abs(static_cast<double>(a(x, y)) - b(x, y)));
  return worst;
}

double MeanSquaredError(const HostImage<float>& a, const HostImage<float>& b) {
  HIPACC_CHECK(a.width() == b.width() && a.height() == b.height());
  if (a.empty()) return 0.0;
  double acc = 0.0;
  for (int y = 0; y < a.height(); ++y)
    for (int x = 0; x < a.width(); ++x) {
      const double d = static_cast<double>(a(x, y)) - b(x, y);
      acc += d * d;
    }
  return acc / static_cast<double>(a.size());
}

double Psnr(const HostImage<float>& a, const HostImage<float>& b,
            double peak) {
  const double mse = MeanSquaredError(a, b);
  if (mse == 0.0) return HUGE_VAL;
  return 10.0 * std::log10(peak * peak / mse);
}

bool AllClose(const HostImage<float>& a, const HostImage<float>& b,
              double tol) {
  if (a.width() != b.width() || a.height() != b.height()) return false;
  return MaxAbsDiff(a, b) <= tol;
}

}  // namespace hipacc
