#include "support/cli.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "support/string_utils.hpp"

namespace hipacc::support {

CliParser::CliParser(std::string program, std::string summary)
    : program_(std::move(program)), summary_(std::move(summary)) {}

CliParser& CliParser::Bool(const std::string& name, bool* value,
                           const std::string& help) {
  return Switch(name, help, [value]() {
    *value = true;
    return Status::Ok();
  });
}

CliParser& CliParser::Int(const std::string& name, int* value,
                          const std::string& value_name,
                          const std::string& help) {
  return Value(name, value_name, help,
               [name, value](const std::string& text) {
                 char* end = nullptr;
                 const long parsed = std::strtol(text.c_str(), &end, 10);
                 if (text.empty() || end == nullptr || *end != '\0')
                   return Status::Invalid("flag --" + name +
                                          " expects an integer, got '" + text +
                                          "'");
                 *value = static_cast<int>(parsed);
                 return Status::Ok();
               });
}

CliParser& CliParser::String(const std::string& name, std::string* value,
                             const std::string& value_name,
                             const std::string& help) {
  return Value(name, value_name, help, [value](const std::string& text) {
    *value = text;
    return Status::Ok();
  });
}

CliParser& CliParser::Value(const std::string& name,
                            const std::string& value_name,
                            const std::string& help,
                            std::function<Status(const std::string&)> setter) {
  Flag flag;
  flag.name = name;
  flag.value_name = value_name;
  flag.help = help;
  flag.takes_value = true;
  flag.setter = std::move(setter);
  flags_.push_back(std::move(flag));
  return *this;
}

CliParser& CliParser::Switch(const std::string& name, const std::string& help,
                             std::function<Status()> setter) {
  Flag flag;
  flag.name = name;
  flag.help = help;
  flag.takes_value = false;
  flag.action = std::move(setter);
  flags_.push_back(std::move(flag));
  return *this;
}

CliParser& CliParser::Positional(const std::string& name, std::string* value,
                                 const std::string& help, bool required) {
  PositionalArg arg;
  arg.name = name;
  arg.help = help;
  arg.required = required;
  arg.value = value;
  positionals_.push_back(std::move(arg));
  return *this;
}

const CliParser::Flag* CliParser::FindFlag(const std::string& name) const {
  for (const Flag& flag : flags_)
    if (flag.name == name) return &flag;
  return nullptr;
}

Status CliParser::Parse(int argc, const char* const* argv) {
  std::size_t next_positional = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      help_requested_ = true;
      return Status::Ok();
    }
    if (arg.rfind("--", 0) == 0) {
      const std::size_t eq = arg.find('=');
      const std::string name =
          arg.substr(2, eq == std::string::npos ? std::string::npos : eq - 2);
      const Flag* flag = FindFlag(name);
      if (flag == nullptr)
        return Status::Invalid("unknown flag '--" + name + "' (try --help)");
      if (flag->takes_value) {
        if (eq == std::string::npos)
          return Status::Invalid("flag --" + name + " expects a value: --" +
                                 name + "=" + flag->value_name);
        HIPACC_RETURN_IF_ERROR(flag->setter(arg.substr(eq + 1)));
      } else {
        if (eq != std::string::npos)
          return Status::Invalid("flag --" + name + " does not take a value");
        HIPACC_RETURN_IF_ERROR(flag->action());
      }
      continue;
    }
    if (next_positional >= positionals_.size())
      return Status::Invalid("unexpected argument '" + arg + "' (try --help)");
    *positionals_[next_positional].value = arg;
    ++next_positional;
  }
  for (std::size_t p = next_positional; p < positionals_.size(); ++p)
    if (positionals_[p].required)
      return Status::Invalid("missing required argument <" +
                             positionals_[p].name + "> (try --help)");
  return Status::Ok();
}

std::string CliParser::Help() const {
  std::string usage = "usage: " + program_;
  for (const PositionalArg& arg : positionals_)
    usage += arg.required ? " <" + arg.name + ">" : " [" + arg.name + "]";
  if (!flags_.empty()) usage += " [options]";
  std::string out = usage + "\n";
  if (!summary_.empty()) out += summary_ + "\n";

  auto flag_label = [](const Flag& flag) {
    return flag.takes_value ? "--" + flag.name + "=" + flag.value_name
                            : "--" + flag.name;
  };
  std::size_t width = 0;
  for (const Flag& flag : flags_)
    width = std::max(width, flag_label(flag).size());
  for (const PositionalArg& arg : positionals_)
    width = std::max(width, arg.name.size() + 2);

  if (!positionals_.empty()) out += "\narguments:\n";
  for (const PositionalArg& arg : positionals_) {
    const std::string label = "<" + arg.name + ">";
    out += "  " + label + std::string(width - label.size(), ' ') + "  " +
           arg.help + "\n";
  }
  if (!flags_.empty()) out += "\noptions:\n";
  for (const Flag& flag : flags_) {
    const std::string label = flag_label(flag);
    out += "  " + label + std::string(width - label.size(), ' ') + "  " +
           flag.help + "\n";
  }
  out += "  --help" + std::string(width - 6, ' ') + "  show this message\n";
  return out;
}

int CliParser::HandleArgs(int argc, const char* const* argv) {
  const Status status = Parse(argc, argv);
  if (help_requested_) {
    std::fputs(Help().c_str(), stdout);
    return 0;
  }
  if (!status.ok()) {
    std::fprintf(stderr, "%s: %s\n", program_.c_str(),
                 status.message().c_str());
    return 2;
  }
  return -1;
}

}  // namespace hipacc::support
