# Empty dependencies file for sobel_edges.
# This may be replaced when dependencies are built.
