#include "dsl/boundary.hpp"

namespace hipacc::dsl {

int ResolveBoundaryIndex(int c, int n, BoundaryMode mode) noexcept {
  if (n <= 0) return -1;
  if (c >= 0 && c < n) return c;
  switch (mode) {
    case BoundaryMode::kConstant:
      return -1;
    case BoundaryMode::kUndefined:
    case BoundaryMode::kClamp:
      return c < 0 ? 0 : n - 1;
    case BoundaryMode::kRepeat: {
      int r = c % n;
      if (r < 0) r += n;
      return r;
    }
    case BoundaryMode::kMirror: {
      // Reflect about the image edges (border pixel duplicated) until the
      // index falls inside; the reflection has period 2n.
      int r = c % (2 * n);
      if (r < 0) r += 2 * n;
      return r < n ? r : 2 * n - 1 - r;
    }
  }
  return -1;
}

}  // namespace hipacc::dsl
