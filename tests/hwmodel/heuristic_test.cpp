// Algorithm 2: configuration selection. Checks the paper's worked examples —
// 32x6 for the 13x13 bilateral on the Tesla C2050 (Figure 4), 1D tilings for
// kernels without boundary handling, and the 32x3-beats-32x4/32x6 border
// metric example of Section V-C.
#include "hwmodel/heuristic.hpp"

#include <gtest/gtest.h>

#include "hwmodel/device_db.hpp"

namespace hipacc::hw {
namespace {

HeuristicInput BilateralInput() {
  HeuristicInput input;
  input.device = TeslaC2050();
  input.resources.regs_per_thread = 20;  // what the estimator reports
  input.border_handling = true;
  input.window = {6, 6};  // 13x13
  input.image_width = 4096;
  input.image_height = 4096;
  return input;
}

TEST(HeuristicTest, Selects32x6ForBilateralOnTesla) {
  const auto choice = SelectConfig(BilateralInput());
  ASSERT_TRUE(choice.ok()) << choice.status().ToString();
  EXPECT_EQ(choice.value().config.block_x, 32);
  EXPECT_EQ(choice.value().config.block_y, 6);
  EXPECT_DOUBLE_EQ(choice.value().occupancy.occupancy, 1.0);
}

TEST(HeuristicTest, BorderTilingUsesSimdWidthInX) {
  HeuristicInput input = BilateralInput();
  input.device = RadeonHd5870();
  const auto choice = SelectConfig(input);
  ASSERT_TRUE(choice.ok());
  EXPECT_EQ(choice.value().config.block_x, input.device.simd_width);
}

TEST(HeuristicTest, NoBorderHandlingPicks1dConfig) {
  HeuristicInput input = BilateralInput();
  input.border_handling = false;
  input.window = {0, 0};
  const auto choice = SelectConfig(input);
  ASSERT_TRUE(choice.ok());
  EXPECT_EQ(choice.value().config.block_y, 1);
  EXPECT_GE(choice.value().config.block_x, 128);  // 128x1 / 256x1 style
  EXPECT_DOUBLE_EQ(choice.value().occupancy.occupancy, 1.0);
}

TEST(HeuristicTest, TiesPreferFewerThreads) {
  // Without border handling, among same-occupancy 1D configs the smallest
  // thread count wins (Section V-C: "the one with the lowest number of
  // threads is chosen").
  HeuristicInput input = BilateralInput();
  input.border_handling = false;
  const auto choice = SelectConfig(input);
  ASSERT_TRUE(choice.ok());
  const auto all = ExploreConfigs(input);
  for (const auto& candidate : all) {
    if (candidate.occupancy.occupancy ==
            choice.value().occupancy.occupancy &&
        candidate.config.block_y == 1) {
      EXPECT_LE(choice.value().config.threads(), candidate.config.threads());
    }
  }
}

TEST(HeuristicTest, ApproxBorderThreadsPaperExample) {
  // Section V-C: "we prefer a configuration of 32x6 over 32x4 for a window
  // size of 13x13, a configuration of 32x3, however, would be preferred to
  // the two aforementioned."
  const int w = 4096, h = 4096;
  const ast::WindowExtent window{6, 6};
  const long long bh_32x6 = ApproxBorderThreads({32, 6}, w, h, window);
  const long long bh_32x4 = ApproxBorderThreads({32, 4}, w, h, window);
  const long long bh_32x3 = ApproxBorderThreads({32, 3}, w, h, window);
  EXPECT_LT(bh_32x6, bh_32x4);
  EXPECT_LE(bh_32x3, bh_32x6);
}

TEST(HeuristicTest, FailsWhenNothingFits) {
  HeuristicInput input = BilateralInput();
  input.resources.regs_per_thread = 4096;  // nothing can launch
  const auto choice = SelectConfig(input);
  EXPECT_FALSE(choice.ok());
  EXPECT_EQ(choice.status().code(), StatusCode::kResourceExhausted);
}

TEST(HeuristicTest, RespectsSmemTileGrowth) {
  // With a scratchpad tile, large block_y configurations blow the shared
  // memory budget; the selection must stay valid.
  HeuristicInput input = BilateralInput();
  input.device = QuadroFx5800();  // 16 KB scratchpad
  input.resources.smem_tile = true;
  input.resources.smem_halo_x = 6;
  input.resources.smem_halo_y = 6;
  const auto choice = SelectConfig(input);
  ASSERT_TRUE(choice.ok()) << choice.status().ToString();
  const int smem =
      input.resources.SmemBytesPerBlock(choice.value().config);
  EXPECT_LE(smem, input.device.smem_per_sm);
}

TEST(ExploreConfigsTest, OnlyValidCandidates) {
  const auto all = ExploreConfigs(BilateralInput());
  EXPECT_GT(all.size(), 20u);
  for (const auto& candidate : all) {
    EXPECT_TRUE(candidate.occupancy.valid);
    EXPECT_GT(candidate.border_threads, 0);
  }
}

}  // namespace
}  // namespace hipacc::hw
