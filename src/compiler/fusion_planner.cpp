#include "compiler/fusion_planner.hpp"

#include <algorithm>
#include <cctype>
#include <map>

#include "sim/timing.hpp"
#include "support/string_utils.hpp"

namespace hipacc::compiler {
namespace {

/// Modelled steady-state cost of one kernel launch, in chip cycles per
/// output pixel: the larger of the compute-throughput bound and the DRAM
/// bandwidth bound (the same two bounds the simulator's timing model takes
/// the max of; exposed latency is occupancy-dependent and left to the
/// simulator). Global traffic counts one transfer per pixel per image
/// buffer — scratchpad staging amortises the halo, and global-memory masks
/// are loaded once per block, not per pixel.
double PerPixelCycles(const CompiledKernel& ck, const hw::DeviceSpec& device) {
  const double ppt = std::max(1, ck.resources.ppt);
  const double ops = static_cast<double>(ck.resources.approx_ops) / ppt;
  int images = 0;
  for (const ast::BufferParam& buf : ck.device_ir.buffers) {
    bool is_mask = false;
    for (const ast::MaskInfo& mask : ck.device_ir.global_masks)
      is_mask |= mask.name == buf.name;
    if (!is_mask) ++images;
  }
  const double bytes = 4.0 * images;
  const double ops_per_cycle =
      static_cast<double>(device.num_sms) * device.alus_per_sm;
  const double bytes_per_cycle =
      device.mem_bandwidth_gbps / device.core_clock_ghz;
  return std::max(ops / ops_per_cycle, bytes / bytes_per_cycle);
}

/// Fixed launch overhead in chip cycles.
double LaunchOverheadCycles(const hw::DeviceSpec& device) {
  return sim::kLaunchOverheadMs * 1e-3 * device.core_clock_ghz * 1e9;
}

/// A valid extra-output / buffer-suffix identifier derived from a virtual
/// image name ("lap.sep_row" -> "lap_sep_row").
std::string SanitizeOutputName(const std::string& image) {
  std::string name;
  for (char c : image)
    name += std::isalnum(static_cast<unsigned char>(c)) != 0 ? c : '_';
  if (name.empty() || std::isdigit(static_cast<unsigned char>(name[0])) != 0)
    name = "o" + name;
  return name;
}

struct Planner {
  const std::vector<PlannerStage>& stages;
  const FusionPlannerOptions& options;
  std::map<std::string, int> producer;  ///< image name -> stage index

  explicit Planner(const std::vector<PlannerStage>& s,
                   const FusionPlannerOptions& o)
      : stages(s), options(o) {
    for (std::size_t i = 0; i < stages.size(); ++i) {
      if (!stages[i].name.empty())
        producer[stages[i].name] = static_cast<int>(i);
      for (const std::string& image : stages[i].extra_images)
        producer[image] = static_cast<int>(i);
    }
  }

  int EdgeCount(const std::string& image) const {
    int count = 0;
    for (const PlannerStage& stage : stages)
      for (const auto& [accessor, input] : stage.inputs)
        if (input == image) ++count;
    return count;
  }

  /// True when stage `to` is (transitively) an input of stage `from` —
  /// merging two stages with a path between them would create a cycle.
  bool Reaches(int from, int to) const {
    if (from == to) return true;
    for (const auto& [accessor, image] : stages[static_cast<std::size_t>(from)]
                                             .inputs) {
      auto it = producer.find(image);
      if (it != producer.end() && Reaches(it->second, to)) return true;
    }
    return false;
  }

  void Record(CandidateDecision decision) const {
    if (options.decisions != nullptr)
      options.decisions->push_back(std::move(decision));
  }

  Result<CompiledKernel> CompileFor(const frontend::KernelSource& source,
                                    const PlannerStage& stage) const {
    CompileOptions copts = options.compile;
    copts.image_width = stage.width;
    copts.image_height = stage.height;
    return Compile(source, copts);
  }

  /// Profitability: the fused kernel must launch on the device at all
  /// (Compile runs Algorithm 2 — register / scratchpad exhaustion fails
  /// it), and its modelled cost must undercut the two separate launches.
  /// Fills `decision` either way; returns true on accept.
  bool Profitable(const frontend::KernelSource& fused,
                  const PlannerStage& into, const PlannerStage& retired,
                  CandidateDecision* decision) const {
    Result<CompiledKernel> fused_ck = CompileFor(fused, into);
    if (!fused_ck.ok()) {
      decision->reason =
          "fused kernel does not fit the device: " + fused_ck.status().message();
      return false;
    }
    Result<CompiledKernel> a_ck = CompileFor(*into.source, into);
    Result<CompiledKernel> b_ck = CompileFor(*retired.source, retired);
    if (!a_ck.ok() || !b_ck.ok()) {
      decision->reason = "unfused stage does not compile";
      return false;
    }
    const double pixels =
        static_cast<double>(into.width) * static_cast<double>(into.height);
    const double overhead = LaunchOverheadCycles(options.compile.device) /
                            std::max(1.0, pixels);
    const double unfused = PerPixelCycles(a_ck.value(), options.compile.device) +
                           PerPixelCycles(b_ck.value(), options.compile.device) +
                           2.0 * overhead;
    const double fused_cost =
        PerPixelCycles(fused_ck.value(), options.compile.device) + overhead;
    decision->score = unfused - fused_cost;
    if (fused_cost >= unfused) {
      decision->reason = StrFormat(
          "recompute outweighs saved traffic (%.4f vs %.4f cycles/pixel)",
          fused_cost, unfused);
      return false;
    }
    decision->reason = StrFormat(
        "saves %.4f cycles/pixel (%.4f fused vs %.4f unfused)",
        unfused - fused_cost, fused_cost, unfused);
    return true;
  }

  /// Producer→consumer candidates of one kind (kPoint or kHalo) over every
  /// single-consumer, non-external kernel→kernel edge of matching extent.
  std::optional<PlannedFusion> PlanEdge(FuseKind kind) const {
    for (std::size_t c = 0; c < stages.size(); ++c) {
      const PlannerStage& consumer = stages[c];
      if (!consumer.fusable) continue;
      for (const auto& [accessor, image] : consumer.inputs) {
        const auto it = producer.find(image);
        if (it == producer.end()) continue;
        const std::size_t p = static_cast<std::size_t>(it->second);
        const PlannerStage& prod = stages[p];
        if (!prod.fusable || p == c) continue;

        CandidateDecision decision;
        decision.kind = kind;
        decision.producer = prod.name;
        decision.consumer = consumer.name;

        // Structural legality: the intermediate image must be eliminable.
        if (prod.name != image) {
          decision.reason = "intermediate '" + image +
                            "' is a named extra output of a fused stage";
          Record(std::move(decision));
          continue;
        }
        if (prod.external) {
          decision.reason = "intermediate '" + image +
                            "' is an externally visible output";
          Record(std::move(decision));
          continue;
        }
        if (EdgeCount(image) != 1) {
          decision.reason = "intermediate '" + image +
                            "' has more than one consumer edge";
          Record(std::move(decision));
          continue;
        }
        if (prod.width != consumer.width || prod.height != consumer.height) {
          decision.reason = "iteration spaces differ";
          Record(std::move(decision));
          continue;
        }

        Result<frontend::KernelSource> fused =
            kind == FuseKind::kPoint
                ? FusePointwise(*prod.source, *consumer.source, accessor)
                : FuseHalo(*prod.source, *consumer.source, accessor,
                           consumer.width, consumer.height);
        if (!fused.ok()) {
          decision.reason = fused.status().message();
          Record(std::move(decision));
          continue;
        }
        decision.legal = true;
        if (!Profitable(fused.value(), consumer, prod, &decision)) {
          Record(std::move(decision));
          continue;
        }
        decision.accepted = true;
        Record(std::move(decision));

        PlannedFusion plan;
        plan.request.kind = kind;
        plan.request.consumer = *consumer.source;
        plan.request.accessor = accessor;
        plan.request.image_width = consumer.width;
        plan.request.image_height = consumer.height;
        plan.fused = std::move(fused).take();
        plan.into = static_cast<int>(c);
        plan.retired = static_cast<int>(p);
        return plan;
      }
    }
    return std::nullopt;
  }

  /// Horizontal candidates: independent kernel-stage pairs sharing an input
  /// image over the same iteration space. Neither image is eliminated, so
  /// external outputs and multi-consumer images are fine; the second
  /// sibling must still be single-output (chains fold fresh siblings into
  /// the accumulated multi-output kernel one by one).
  std::optional<PlannedFusion> PlanHorizontal() const {
    for (std::size_t a = 0; a < stages.size(); ++a) {
      const PlannerStage& sa = stages[a];
      if (!sa.fusable) continue;
      for (std::size_t b = a + 1; b < stages.size(); ++b) {
        const PlannerStage& sb = stages[b];
        if (!sb.fusable) continue;

        // A shared input image read by both stages.
        std::string a_acc, b_acc, shared;
        for (const auto& [aa, ai] : sa.inputs) {
          for (const auto& [ba, bi] : sb.inputs) {
            if (ai != bi || !shared.empty()) continue;
            a_acc = aa;
            b_acc = ba;
            shared = ai;
          }
        }
        if (shared.empty()) continue;

        CandidateDecision decision;
        decision.kind = FuseKind::kHorizontal;
        decision.producer = sa.name;
        decision.consumer = sb.name;

        if (sa.width != sb.width || sa.height != sb.height) {
          decision.reason = "iteration spaces differ";
          Record(std::move(decision));
          continue;
        }
        if (Reaches(static_cast<int>(a), static_cast<int>(b)) ||
            Reaches(static_cast<int>(b), static_cast<int>(a))) {
          decision.reason = "stages are not independent (one feeds the other)";
          Record(std::move(decision));
          continue;
        }

        const std::string output_name = SanitizeOutputName(sb.name);
        Result<frontend::KernelSource> fused = FuseHorizontal(
            *sa.source, a_acc, *sb.source, b_acc, output_name);
        if (!fused.ok()) {
          decision.reason = fused.status().message();
          Record(std::move(decision));
          continue;
        }
        decision.legal = true;
        if (!Profitable(fused.value(), sa, sb, &decision)) {
          Record(std::move(decision));
          continue;
        }
        decision.accepted = true;
        Record(std::move(decision));

        PlannedFusion plan;
        plan.request.kind = FuseKind::kHorizontal;
        plan.request.consumer = *sb.source;
        plan.request.accessor = a_acc;
        plan.request.peer_accessor = b_acc;
        plan.request.output_name = output_name;
        plan.request.image_width = sa.width;
        plan.request.image_height = sa.height;
        plan.fused = std::move(fused).take();
        plan.into = static_cast<int>(a);
        plan.retired = static_cast<int>(b);
        return plan;
      }
    }
    return std::nullopt;
  }
};

}  // namespace

void DedupeDecisions(std::vector<CandidateDecision>* decisions) {
  std::vector<CandidateDecision> unique;
  for (const CandidateDecision& d : *decisions) {
    CandidateDecision* existing = nullptr;
    for (CandidateDecision& u : unique)
      if (u.kind == d.kind && u.producer == d.producer &&
          u.consumer == d.consumer)
        existing = &u;
    if (existing == nullptr)
      unique.push_back(d);
    else if (!existing->accepted)
      *existing = d;  // keep the latest (or the accepted) verdict
  }
  *decisions = std::move(unique);
}

std::optional<PlannedFusion> PlanNextFusion(
    const std::vector<PlannerStage>& stages,
    const FusionPlannerOptions& options) {
  Planner planner(stages, options);
  // Point-wise edges first (a strict traffic win at no recompute), then
  // halo edges (they subsume fewer cases the earlier kinds could have
  // taken), then horizontal sibling merges over what remains.
  if (FusionModeAllows(options.mode, FuseKind::kPoint))
    if (auto plan = planner.PlanEdge(FuseKind::kPoint)) return plan;
  if (FusionModeAllows(options.mode, FuseKind::kHalo))
    if (auto plan = planner.PlanEdge(FuseKind::kHalo)) return plan;
  if (FusionModeAllows(options.mode, FuseKind::kHorizontal))
    if (auto plan = planner.PlanHorizontal()) return plan;
  return std::nullopt;
}

}  // namespace hipacc::compiler
