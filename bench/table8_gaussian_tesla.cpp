// Reproduces Table VIII: Gaussian 3x3 and 5x5 on the Tesla C2050 — OpenCV's
// separable GPU filters (PPT=8 original mapping, PPT=1 one-to-one) vs our
// generated implementations with automatic configuration selection.
#include <cstdio>

#include "common/gaussian_table.hpp"
#include "common/table.hpp"
#include "hwmodel/device_db.hpp"

int main(int argc, char** argv) {
  hipacc::support::CliParser cli =
      hipacc::bench::MakeBenchCli("table8_gaussian_tesla", "Table VIII: Gaussian filters, Tesla C2050");
  if (const int code = cli.HandleArgs(argc, argv); code >= 0) return code;
  hipacc::bench::GaussianTableOptions options;
  options.device = hipacc::hw::TeslaC2050();
  options.json_out = "BENCH_table8.json";
  std::printf("%s\n", hipacc::bench::RunGaussianTable(
                          "Table VIII: Gaussian filters, Tesla C2050", options)
                          .c_str());
  return 0;
}
