file(REMOVE_RECURSE
  "libhipacc_image.a"
)
