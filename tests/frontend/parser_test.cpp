#include "frontend/parser.hpp"

#include <gtest/gtest.h>

#include "ast/const_fold.hpp"
#include "ast/printer.hpp"
#include "ast/visitor.hpp"
#include "ops/kernel_sources.hpp"

namespace hipacc::frontend {
namespace {

using ast::ExprKind;
using ast::ScalarType;
using ast::StmtKind;

KernelSource MinimalSource(const std::string& body) {
  KernelSource src;
  src.name = "test_kernel";
  src.params = {{"gain", ScalarType::kFloat}};
  src.accessors = {{"Input", {1, 1}, ast::BoundaryMode::kClamp, 0.0f}};
  ast::MaskInfo mask;
  mask.name = "M";
  mask.size_x = mask.size_y = 3;
  src.masks = {mask};
  src.body = body;
  return src;
}

TEST(ParserTest, ParsesBilateralListing) {
  const KernelSource src = ops::BilateralSource(3, ast::BoundaryMode::kMirror);
  auto kernel = ParseKernel(src);
  ASSERT_TRUE(kernel.ok()) << kernel.status().ToString();
  EXPECT_EQ(kernel.value().name, "bilateral");
  EXPECT_EQ(kernel.value().accessors.size(), 1u);
  // The body contains two nested loops and an output assignment.
  int fors = 0, outputs = 0;
  ast::VisitStmts(kernel.value().body, [&](const ast::Stmt& s) {
    if (s.kind == StmtKind::kFor) ++fors;
    if (s.kind == StmtKind::kOutputAssign) ++outputs;
  });
  EXPECT_EQ(fors, 2);
  EXPECT_EQ(outputs, 1);
}

TEST(ParserTest, AccessorReadForms) {
  auto kernel = ParseKernel(MinimalSource(
      "output() = Input() + Input(1, -1) + gain;"));
  ASSERT_TRUE(kernel.ok()) << kernel.status().ToString();
  int center = 0, offset = 0;
  ast::VisitExprs(kernel.value().body, [&](const ast::Expr& e) {
    if (e.kind != ExprKind::kAccessorRead) return;
    double dx = 0.0;
    if (ast::EvaluateConstant(e.args[0], &dx) && dx == 0.0) ++center;
    else ++offset;
  });
  EXPECT_EQ(center, 1);
  EXPECT_EQ(offset, 1);
}

TEST(ParserTest, MaskReadAndMathCalls) {
  auto kernel = ParseKernel(MinimalSource(
      "float s = exp(-1.0f) * M(0, 0);\n"
      "output() = fmin(s, 1.0f);"));
  ASSERT_TRUE(kernel.ok()) << kernel.status().ToString();
  bool saw_mask = false, saw_exp = false, saw_fmin = false;
  ast::VisitExprs(kernel.value().body, [&](const ast::Expr& e) {
    if (e.kind == ExprKind::kMaskRead && e.name == "M") saw_mask = true;
    if (e.kind == ExprKind::kCall && e.name == "exp") saw_exp = true;
    if (e.kind == ExprKind::kCall && e.name == "fmin") saw_fmin = true;
  });
  EXPECT_TRUE(saw_mask);
  EXPECT_TRUE(saw_exp);
  EXPECT_TRUE(saw_fmin);
}

TEST(ParserTest, CudaSuffixedSpellingCanonicalises) {
  auto kernel = ParseKernel(MinimalSource("output() = expf(Input());"));
  ASSERT_TRUE(kernel.ok()) << kernel.status().ToString();
  bool canonical = false;
  ast::VisitExprs(kernel.value().body, [&](const ast::Expr& e) {
    if (e.kind == ExprKind::kCall) canonical = e.name == "exp";
  });
  EXPECT_TRUE(canonical);
}

TEST(ParserTest, IterationIndicesParse) {
  auto kernel = ParseKernel(MinimalSource(
      "output() = Input() + (float)(x() + y());"));
  ASSERT_TRUE(kernel.ok()) << kernel.status().ToString();
  int idx = 0;
  ast::VisitExprs(kernel.value().body, [&](const ast::Expr& e) {
    if (e.kind == ExprKind::kIterIndex) ++idx;
  });
  EXPECT_EQ(idx, 2);
}

TEST(ParserTest, OperatorPrecedence) {
  auto kernel = ParseKernel(MinimalSource(
      "float v = 1.0f + 2.0f * 3.0f;\n"
      "output() = v;"));
  ASSERT_TRUE(kernel.ok()) << kernel.status().ToString();
  // 1 + (2*3) = 7 after folding.
  double value = 0.0;
  const ast::StmtPtr decl = kernel.value().body->body.front();
  ASSERT_TRUE(ast::EvaluateConstant(decl->value, &value));
  EXPECT_DOUBLE_EQ(value, 7.0);
}

TEST(ParserTest, TernaryAndLogical) {
  auto kernel = ParseKernel(MinimalSource(
      "output() = Input() > 0.5f && Input() < 1.0f ? 1.0f : 0.0f;"));
  ASSERT_TRUE(kernel.ok()) << kernel.status().ToString();
}

TEST(ParserTest, ForLoopVariants) {
  // <= form, < form, ++, += step.
  EXPECT_TRUE(ParseKernel(MinimalSource(
      "float s = 0.0f;\n"
      "for (int i = 0; i <= 3; i++) { s += 1.0f; }\n"
      "for (int j = 0; j < 4; j++) { s += 1.0f; }\n"
      "for (int k = -2; k <= 2; k += 2) { s += 1.0f; }\n"
      "output() = s;")).ok());
}

TEST(ParserTest, MultiDeclarationStatement) {
  auto kernel = ParseKernel(MinimalSource(
      "float a = 1.0f, b = 2.0f, c;\n"
      "c = a + b;\n"
      "output() = c;"));
  ASSERT_TRUE(kernel.ok()) << kernel.status().ToString();
}

TEST(ParserTest, ScopingAllowsShadowBlocks) {
  EXPECT_TRUE(ParseKernel(MinimalSource(
      "float a = 1.0f;\n"
      "if (a > 0.0f) { float b = 2.0f; a = b; }\n"
      "output() = a;")).ok());
}

// ---- error cases ----------------------------------------------------------

TEST(ParserErrorTest, UndeclaredVariable) {
  const auto result = ParseKernel(MinimalSource("output() = nope;"));
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("undeclared"), std::string::npos);
}

TEST(ParserErrorTest, UnsupportedFunctionIsRejected) {
  // Section V-A: "In case a function is not supported, our compiler emits an
  // error message to the user."
  const auto result = ParseKernel(MinimalSource("output() = erfinv(1.0f);"));
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("not supported"), std::string::npos);
}

TEST(ParserErrorTest, FunctionArityChecked) {
  EXPECT_FALSE(ParseKernel(MinimalSource("output() = exp(1.0f, 2.0f);")).ok());
  EXPECT_FALSE(ParseKernel(MinimalSource("output() = fmin(1.0f);")).ok());
}

TEST(ParserErrorTest, AccessorArityChecked) {
  EXPECT_FALSE(ParseKernel(MinimalSource("output() = Input(1);")).ok());
  EXPECT_FALSE(ParseKernel(MinimalSource("output() = Input(1, 2, 3);")).ok());
}

TEST(ParserErrorTest, MaskRequiresTwoIndices) {
  EXPECT_FALSE(ParseKernel(MinimalSource("output() = M(0);")).ok());
}

TEST(ParserErrorTest, ParametersAreReadOnly) {
  const auto result =
      ParseKernel(MinimalSource("gain = 2.0f;\noutput() = gain;"));
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("read-only"), std::string::npos);
}

TEST(ParserErrorTest, MissingOutputAssignment) {
  const auto result = ParseKernel(MinimalSource("float a = 1.0f;"));
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("output"), std::string::npos);
}

TEST(ParserErrorTest, RedeclarationInSameScope) {
  EXPECT_FALSE(ParseKernel(MinimalSource(
      "float a = 1.0f;\nfloat a = 2.0f;\noutput() = a;")).ok());
}

TEST(ParserErrorTest, NonCanonicalLoopsRejected) {
  EXPECT_FALSE(ParseKernel(MinimalSource(
      "for (int i = 0; i >= -3; i++) { }\noutput() = 0.0f;")).ok());
  EXPECT_FALSE(ParseKernel(MinimalSource(
      "for (int i = 0; i <= 3; i -= 1) { }\noutput() = 0.0f;")).ok());
}

TEST(ParserErrorTest, SyntaxErrorsCarryLocation) {
  const auto result = ParseKernel(MinimalSource("output() = ;"));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kParseError);
  EXPECT_NE(result.status().message().find("test_kernel:"), std::string::npos);
}

}  // namespace
}  // namespace hipacc::frontend
