// Quickstart: the paper's running example end to end (Listings 1-3).
//
// 1. Describe the bilateral filter as a DSL kernel operating on one output
//    pixel, with boundary handling attached to the Accessor.
// 2. Execute it functionally on the host.
// 3. Feed the same kernel through the source-to-source compiler and run the
//    generated kernel on the simulated GPU; outputs must match exactly.
#include <cstdio>

#include "hipacc.hpp"

using namespace hipacc;

int main() {
  const int width = 512, height = 512;
  const int sigma_d = 2, sigma_r = 5;

  // --- input: synthetic angiogram with noise ------------------------------
  const HostImage<float> host_in =
      MakeAngiogramPhantom(width, height, 0.08f, /*seed=*/1);

  // --- Listing 2: images, region of interest, accessor, kernel ------------
  dsl::Image<float> in(width, height);
  dsl::Image<float> out(width, height);
  in = host_in.data();  // operator= uploads the raw host array

  const int window = 4 * sigma_d + 1;
  dsl::BoundaryCondition<float> bound(in, window, window,
                                      ast::BoundaryMode::kClamp);
  dsl::Accessor<float> acc_in(bound);
  dsl::IterationSpace<float> iter_space(out);

  ops::BilateralFilter bf(iter_space, acc_in, sigma_d, sigma_r);
  bf.execute();  // functional host execution
  const HostImage<float> host_out = out.getData();

  // --- the compiled path: same kernel through the compiler + simulator ----
  frontend::KernelSource source =
      ops::BilateralSource(sigma_d, ast::BoundaryMode::kClamp);
  compiler::CompileOptions copts;
  copts.device = hw::TeslaC2050();
  copts.image_width = width;
  copts.image_height = height;
  Result<compiler::CompiledKernel> compiled = compiler::Compile(source, copts);
  if (!compiled.ok()) {
    std::fprintf(stderr, "compile error: %s\n",
                 compiled.status().ToString().c_str());
    return 1;
  }
  std::printf("compiled '%s': config %dx%d, %d regs/thread, occupancy %.0f%%\n",
              compiled.value().decl.name.c_str(),
              compiled.value().config.config.block_x,
              compiled.value().config.config.block_y,
              compiled.value().resources.regs_per_thread,
              100.0 * compiled.value().config.occupancy.occupancy);

  dsl::Image<float> gpu_out(width, height);
  runtime::BindingSet bindings;
  bindings.Input("Input", in).Output(gpu_out).Scalar("sigma_d", sigma_d).Scalar(
      "sigma_r", sigma_r);
  compiler::SimulatedExecutable exe(std::move(compiled).take(),
                                    hw::TeslaC2050());
  Result<sim::LaunchStats> stats = exe.Run(bindings);
  if (!stats.ok()) {
    std::fprintf(stderr, "launch error: %s\n", stats.status().ToString().c_str());
    return 1;
  }
  const HostImage<float> host_gpu = gpu_out.getData();

  std::printf("host executor vs simulated GPU: max |diff| = %.3g\n",
              MaxAbsDiff(host_out, host_gpu));
  std::printf("modelled GPU time: %.3f ms\n", stats.value().timing.total_ms);
  std::printf("input PSNR vs denoised PSNR against clean phantom:\n");
  const HostImage<float> clean = MakeAngiogramPhantom(width, height, 0.0f, 1);
  std::printf("  noisy:    %.2f dB\n  filtered: %.2f dB\n",
              Psnr(clean, host_in), Psnr(clean, host_out));

  (void)WritePgm(host_in, ExampleOutputPath("quickstart_in.pgm"));
  (void)WritePgm(host_out, ExampleOutputPath("quickstart_out.pgm"));
  std::printf("wrote %s / %s\n",
              ExampleOutputPath("quickstart_in.pgm").c_str(),
              ExampleOutputPath("quickstart_out.pgm").c_str());
  return 0;
}
