# Empty dependencies file for kernel_file_test.
# This may be replaced when dependencies are built.
