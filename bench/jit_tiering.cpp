// Native-tier speedup report: wall-clock of the simulator's three
// execution engines on the interpreter workloads, plus the jit trace
// counters, written to BENCH_jit.json. The native rows tier up during an
// untimed warm launch (threshold 1), so the measured loop sees only the
// dlopen'd code; the one-off host-compile cost is reported separately.
//
// The ratios this records are bounded by what the engines share: the
// memory/timing model and libm calls are identical across engines, so
// fused straight-line kernels land around 1.7-2x over the bytecode VM and
// per-instruction (non-fused) kernels around 1x. The CI perf smoke runs
// this binary with --min-ratio=1.5 over the fused shapes.
//
//   --repeats=N        timed launches per engine (default 5)
//   --min-ratio=R      exit non-zero unless every fused kernel's
//                      native-vs-bytecode speedup is >= R (default: off)
//   --json-out=FILE    report path (default BENCH_jit.json)
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/table.hpp"
#include "compiler/driver.hpp"
#include "image/synthetic.hpp"
#include "ops/kernel_sources.hpp"
#include "ops/masks.hpp"
#include "runtime/bindings.hpp"
#include "sim/jit/toolchain.hpp"
#include "sim/simulator.hpp"
#include "sim/trace.hpp"
#include "support/string_utils.hpp"

namespace {

using namespace hipacc;

struct Case {
  std::string label;
  frontend::KernelSource source;
  int n;
  runtime::BindingSet scalars;
  /// Whether the native tier emits the fused lane loop for this kernel
  /// (straight-line programs); non-fused kernels run the per-instruction
  /// trampoline and are excluded from --min-ratio.
  bool fused;
};

struct Timed {
  double ast_ms = 0.0;
  double bytecode_ms = 0.0;
  double native_ms = 0.0;
  double compile_ms = 0.0;  // first native launch incl. toolchain run
  long long jit_compiles = 0;
};

double TimeLaunches(const sim::Simulator& simulator,
                    const sim::Launch& launch, int repeats) {
  double best = 1e300;
  for (int r = 0; r < repeats; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    auto stats = simulator.Execute(launch);
    const auto t1 = std::chrono::steady_clock::now();
    HIPACC_CHECK(stats.ok());
    best = std::min(best,
                    std::chrono::duration<double, std::milli>(t1 - t0).count());
  }
  return best;
}

Result<Timed> MeasureCase(const Case& c, int repeats) {
  compiler::CompileOptions options;
  options.device = hw::TeslaC2050();
  options.image_width = c.n;
  options.image_height = c.n;
  Result<compiler::CompiledKernel> compiled =
      compiler::Compile(c.source, options);
  if (!compiled.ok()) return compiled.status();

  dsl::Image<float> in(c.n, c.n), out(c.n, c.n);
  in.CopyFrom(MakeNoiseImage(c.n, c.n, 7));
  runtime::BindingSet bindings = c.scalars;
  bindings.Input("Input", in).Output(out);
  Result<runtime::LaunchHolder> holder = runtime::BuildLaunch(
      compiled.value().device_ir, compiled.value().config.config, bindings);
  if (!holder.ok()) return holder.status();
  holder.value().launch.programs = compiled.value().bytecode.get();

  Timed timed;
  sim::SimulatorOptions so;
  so.jit_threshold = 1;
  for (const sim::ExecEngine engine :
       {sim::ExecEngine::kAst, sim::ExecEngine::kBytecode,
        sim::ExecEngine::kNative}) {
    so.engine = engine;
    sim::Simulator simulator(hw::TeslaC2050(), so);
    sim::TraceSink trace;
    simulator.set_trace(&trace);
    if (engine == sim::ExecEngine::kNative) {
      const auto t0 = std::chrono::steady_clock::now();
      auto warm = simulator.Execute(holder.value().launch);
      const auto t1 = std::chrono::steady_clock::now();
      if (!warm.ok()) return warm.status();
      timed.compile_ms =
          std::chrono::duration<double, std::milli>(t1 - t0).count();
      timed.jit_compiles = trace.counter("jit.compile");
    }
    const double ms = TimeLaunches(simulator, holder.value().launch, repeats);
    if (engine == sim::ExecEngine::kAst)
      timed.ast_ms = ms;
    else if (engine == sim::ExecEngine::kBytecode)
      timed.bytecode_ms = ms;
    else
      timed.native_ms = ms;
  }
  return timed;
}

}  // namespace

int main(int argc, char** argv) {
  int repeats = 5;
  double min_ratio = 0.0;
  std::string json_out = "BENCH_jit.json";
  support::CliParser cli = bench::MakeBenchCli(
      "jit_tiering", "native-tier vs bytecode-VM vs AST wall-clock");
  cli.Int("repeats", &repeats, "N", "timed launches per engine (default 5)");
  cli.Value("min-ratio", "R",
            "fail unless every fused kernel's native speedup >= R",
            [&min_ratio](const std::string& value) -> Status {
              char* end = nullptr;
              min_ratio = std::strtod(value.c_str(), &end);
              if (end == value.c_str() || *end != '\0')
                return Status::Invalid("expected a number, got '" + value +
                                       "'");
              return Status::Ok();
            });
  cli.String("json-out", &json_out, "FILE", "BENCH_*.json report path");
  if (const int code = cli.HandleArgs(argc, argv); code >= 0) return code;

  if (!sim::jit::ToolchainAvailable()) {
    std::fprintf(stderr,
                 "no host toolchain: the native tier would fall back to the "
                 "threaded VM, so the ratios would be meaningless\n");
    return min_ratio > 0.0 ? 1 : 0;
  }

  runtime::BindingSet bilateral;
  bilateral.Scalar("sigma_d", 2).Scalar("sigma_r", 5);
  runtime::BindingSet bilateral_fixed;
  bilateral_fixed.Scalar("sigma_r", 5);
  runtime::BindingSet tone;
  tone.Scalar("center", 0.35f).Scalar("weight", 0.6f);
  const std::vector<Case> cases = {
      {"gaussian5_512",
       ops::GaussianSource(5, 1.2f, ast::BoundaryMode::kMirror), 512, {},
       true},
      {"sobel3_512",
       ops::ConvolutionSource("sobel", 3, 3, ops::SobelMaskX(),
                              ast::BoundaryMode::kClamp),
       512,
       {},
       true},
      {"bilateral9_256", ops::BilateralMaskSource(2, ast::BoundaryMode::kClamp),
       256, bilateral, false},
      {"bilateral_fixed9_256",
       ops::BilateralFixedSource(2, ast::BoundaryMode::kClamp), 256,
       bilateral_fixed, true},
      {"tone_curve8_512", ops::ToneCurveSource(8), 512, tone, true},
  };

  bench::Table table(
      {"ast_ms", "bytecode_ms", "native_ms", "native_vs_bytecode", "fused"});
  support::Json kernels = support::Json::Array();
  bool ok = true;
  for (const Case& c : cases) {
    Result<Timed> timed = MeasureCase(c, repeats);
    if (!timed.ok()) {
      std::fprintf(stderr, "%s failed: %s\n", c.label.c_str(),
                   timed.status().ToString().c_str());
      return 1;
    }
    const double ratio = timed.value().native_ms > 0.0
                             ? timed.value().bytecode_ms /
                                   timed.value().native_ms
                             : 0.0;
    table.Row(c.label);
    table.Cell(timed.value().ast_ms);
    table.Cell(timed.value().bytecode_ms);
    table.Cell(timed.value().native_ms);
    table.Cell(StrFormat("%.2fx", ratio));
    table.Cell(c.fused ? "yes" : "no");
    support::Json k = support::Json::Object();
    k["kernel"] = c.label;
    k["fused"] = c.fused;
    k["ast_ms"] = timed.value().ast_ms;
    k["bytecode_ms"] = timed.value().bytecode_ms;
    k["native_ms"] = timed.value().native_ms;
    k["native_vs_bytecode"] = ratio;
    k["first_launch_ms"] = timed.value().compile_ms;
    k["jit_compiles"] = timed.value().jit_compiles;
    kernels.push_back(std::move(k));
    if (min_ratio > 0.0 && c.fused && ratio < min_ratio) {
      std::fprintf(stderr, "FAIL: %s native/bytecode %.2fx < %.2fx\n",
                   c.label.c_str(), ratio, min_ratio);
      ok = false;
    }
  }
  std::printf("%s\n",
              table.Render("Native tier vs bytecode VM vs AST (wall-clock, "
                           "best of repeats)")
                  .c_str());

  if (!json_out.empty()) {
    support::Json doc = support::Json::Object();
    doc["bench"] = "jit_tiering";
    doc["device"] = hw::TeslaC2050().name;
    doc["repeats"] = repeats;
    doc["kernels"] = std::move(kernels);
    doc["table"] = table.ToJson("jit_tiering");
    const Status written = support::WriteFile(json_out, doc.Dump(2) + "\n");
    if (!written.ok())
      std::fprintf(stderr, "warning: %s\n", written.ToString().c_str());
    else
      std::fprintf(stderr, "wrote %s\n", json_out.c_str());
  }
  return ok ? 0 : 1;
}
