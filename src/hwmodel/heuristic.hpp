// Algorithm 2: heuristic selection of the kernel configuration and 2D
// tiling based on resource usage, border-handling size, and target device.
//
//  * Without boundary handling: pick the highest-occupancy thread count
//    (ties: fewest threads) tiled 1D along x (128x1-style), the shape expert
//    programmers choose for coalesced row-major accesses.
//  * With boundary handling: tile with block_x = SIMD width ("prefer y over
//    x") and, within the highest-occupancy set, minimise the number of
//    threads executing boundary-handling conditionals; ties prefer fewer
//    threads (the paper's 32x3 < {32x4, 32x6} example).
#pragma once

#include <vector>

#include "hwmodel/occupancy.hpp"
#include "support/status.hpp"

namespace hipacc::hw {

/// Everything Algorithm 2 consumes.
struct HeuristicInput {
  DeviceSpec device;
  KernelResources resources;
  bool border_handling = false;
  ast::WindowExtent window;  ///< filter window (border bands), if any
  int image_width = 0;
  int image_height = 0;
};

/// The selected configuration plus the evidence behind the choice.
struct HeuristicChoice {
  KernelConfig config;
  OccupancyResult occupancy;
  long long border_threads = 0;  ///< approx. threads running BH conditionals
};

/// Approximate count of threads executing boundary-handling conditionals for
/// a tiling: symmetric bands of ceil(half/bdim) blocks per image side. This
/// is the metric Algorithm 2 minimises; the dispatch itself uses the exact
/// RegionGrid bands. `ppt` is the pixels-per-thread factor: a block then
/// covers block_y*ppt image rows, shrinking the grid and the y bands.
long long ApproxBorderThreads(const KernelConfig& config, int width,
                              int height, ast::WindowExtent window,
                              int ppt = 1);

/// Runs Algorithm 2. Returns an error iff no enumerated configuration is
/// valid on the device (resource exhaustion).
Result<HeuristicChoice> SelectConfig(const HeuristicInput& input);

/// All (config, occupancy) pairs the exploration mode (Figure 4) iterates:
/// valid configurations whose thread count is a SIMD-width multiple.
std::vector<HeuristicChoice> ExploreConfigs(const HeuristicInput& input);

}  // namespace hipacc::hw
