// Pass-pipeline skeleton for the source-to-source compiler. A
// CompilationContext threads the evolving artifact (KernelDecl -> DeviceKernel
// -> resource estimate -> launch configuration -> emitted source) through an
// ordered sequence of named Pass objects. Each pass reports structured
// diagnostics and wall-clock timing into the context; when a TraceSink is
// attached the manager additionally records one span per pass (category
// "compile"), so `--trace-out` timelines show where compile time goes.
//
// The driver (compiler/driver.cpp) assembles three pipelines from the seven
// concrete passes:
//   BuildCompilePipeline()  fuse -> parse -> lower -> estimate
//                                -> select_config -> emit -> bytecode
//   BuildDevicePipeline()          lower -> estimate -> select_config
//                                 -> emit -> bytecode
//   BuildTargetPipeline()                   select_config -> emit -> bytecode
// The shorter pipelines run when earlier products are already available —
// from Retarget provenance or from a compilation-cache hit. The bytecode
// pass compiles the device IR into the simulator's register-machine
// programs (sim/bytecode.hpp); it runs in every pipeline but reuses an
// already-attached program set, and a bytecode bail-out is a warning, not
// an error (the simulator falls back to the AST interpreter).
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "compiler/driver.hpp"

namespace hipacc::compiler {

/// Severity of a pass-reported diagnostic. Errors accompany a failing
/// Status; notes record what a pass decided (selected config, emitted
/// bytes) without affecting compilation.
enum class DiagSeverity { kNote, kWarning, kError };

const char* to_string(DiagSeverity severity) noexcept;

/// One structured message filed by a pass.
struct PassDiagnostic {
  std::string pass;
  DiagSeverity severity = DiagSeverity::kNote;
  std::string message;
};

/// Wall-clock duration of one executed pass, in pipeline order.
struct PassTiming {
  std::string pass;
  double ms = 0.0;
};

/// Mutable state threaded through the pipeline. Passes read the options,
/// refine the artifact, and append diagnostics; the manager appends
/// timings.
struct CompilationContext {
  /// Input of the parse pass; later passes ignore it. Null when the
  /// pipeline starts from an existing KernelDecl (Retarget, cache hits).
  const frontend::KernelSource* source = nullptr;
  /// Set by the fuse pass (or pre-seeded by the driver): the source with
  /// CompileOptions::fusion applied. When present, `source` points at it.
  std::optional<frontend::KernelSource> fused_source;
  CompileOptions options;
  CompiledKernel artifact;
  std::vector<PassDiagnostic> diagnostics;
  std::vector<PassTiming> timings;

  /// Best available kernel name for span labels and error messages.
  std::string KernelName() const;
  void Note(const std::string& pass, std::string message);
  void Warn(const std::string& pass, std::string message);
};

/// One named transformation step. Implementations must be stateless across
/// Run calls (the same pass object may serve many compilations).
class Pass {
 public:
  virtual ~Pass() = default;
  virtual const char* name() const = 0;
  /// Refines `ctx.artifact`. A non-ok Status aborts the pipeline; the
  /// manager records it as an error diagnostic.
  virtual Status Run(CompilationContext& ctx) const = 0;
};

/// Runs passes in registration order, recording per-pass timing (always)
/// and one TraceSink span per pass (when a sink is attached). An optional
/// dump hook fires after a named pass completes — the CLI's --dump-after.
class PassManager {
 public:
  using DumpHook =
      std::function<void(const Pass& pass, const CompilationContext& ctx)>;

  PassManager& Add(std::unique_ptr<Pass> pass);

  /// Invokes `hook` after the pass named `after` finishes successfully.
  void set_dump_hook(std::string after, DumpHook hook);

  /// Runs every pass in order; stops at the first failure.
  Status Run(CompilationContext& ctx) const;

  std::vector<std::string> names() const;
  std::size_t size() const { return passes_.size(); }

 private:
  std::vector<std::unique_ptr<Pass>> passes_;
  std::string dump_after_;
  DumpHook dump_hook_;
};

/// The concrete passes, exposed individually so callers can assemble
/// custom pipelines (tests, tools).
std::unique_ptr<Pass> MakeFusePass();
std::unique_ptr<Pass> MakeParsePass();
std::unique_ptr<Pass> MakeLowerPass();
std::unique_ptr<Pass> MakeEstimateResourcesPass();
std::unique_ptr<Pass> MakeSelectConfigPass();
std::unique_ptr<Pass> MakeEmitPass();
std::unique_ptr<Pass> MakeBytecodePass();

/// Standard pipelines (see file comment for their stage lists).
PassManager BuildCompilePipeline();
PassManager BuildDevicePipeline();
PassManager BuildTargetPipeline();

/// Names of the full pipeline's passes, in order ("fuse", "parse", "lower",
/// "estimate", "select_config", "emit", "bytecode") — the vocabulary
/// accepted by --dump-after.
const std::vector<std::string>& DefaultPassNames();

/// Standard dump hook: prints the pipeline state after `pass` to stderr
/// (what the CLI's --dump-after installs via CompileOptions::dump_after).
void DumpAfterPass(const Pass& pass, const CompilationContext& ctx);

}  // namespace hipacc::compiler
