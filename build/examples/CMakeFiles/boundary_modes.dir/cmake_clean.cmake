file(REMOVE_RECURSE
  "CMakeFiles/boundary_modes.dir/boundary_modes.cpp.o"
  "CMakeFiles/boundary_modes.dir/boundary_modes.cpp.o.d"
  "boundary_modes"
  "boundary_modes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/boundary_modes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
