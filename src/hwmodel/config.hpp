// Kernel launch configurations and the region tiling derived from them.
//
// A configuration is the number of threads mapped to one SIMD unit plus its
// 2D tiling (paper Section V-C). The RegionGrid maps thread blocks onto the
// nine boundary-handling regions of Figure 3 — used both by the generated
// kernel's dispatch and by the heuristic's border-thread count.
#pragma once

#include <vector>

#include "ast/metadata.hpp"
#include "hwmodel/device_spec.hpp"

namespace hipacc::hw {

/// A 2D thread-block configuration.
struct KernelConfig {
  int block_x = 1;
  int block_y = 1;

  int threads() const noexcept { return block_x * block_y; }
  bool operator==(const KernelConfig&) const = default;
};

/// Grid dimensions for an iteration space under a configuration.
struct GridDim {
  int blocks_x = 0;
  int blocks_y = 0;
  long long total() const noexcept {
    return static_cast<long long>(blocks_x) * blocks_y;
  }
};

/// `ppt` (pixels per thread, >= 1) shrinks the y extent of the thread space:
/// each thread covers `ppt` vertically-adjacent pixels, so one block row
/// spans block_y*ppt pixel rows.
GridDim ComputeGrid(const KernelConfig& config, int width, int height,
                    int ppt = 1);

/// Block-granular partition of the grid into the nine regions of Figure 3.
/// Band widths are in blocks, measured from each grid edge; bands are sized
/// so every pixel that can reach out of bounds through the window lies in a
/// guarded region (partial trailing blocks included).
struct RegionGrid {
  GridDim grid;
  KernelConfig config;
  int band_left = 0;    ///< block columns needing lo_x guards
  int band_right = 0;   ///< block columns needing hi_x guards
  int band_top = 0;     ///< block rows needing lo_y guards
  int band_bottom = 0;  ///< block rows needing hi_y guards

  /// Region of the block at grid position (bx_idx, by_idx).
  ast::Region RegionOf(int bx_idx, int by_idx) const noexcept;

  /// Threads launched in non-interior blocks — the quantity Algorithm 2
  /// minimises ("number of threads for border handling").
  long long BorderThreads() const noexcept;

  /// True when opposite bands overlap — a single block would need guards in
  /// both directions of one axis, which the nine region variants cannot
  /// express. Such launches are rejected (the image is too small for the
  /// window/config combination); callers fall back to uniform guards.
  bool degenerate() const noexcept {
    return band_left + band_right > grid.blocks_x ||
           band_top + band_bottom > grid.blocks_y || overlap_x || overlap_y;
  }

  bool overlap_x = false;  ///< a left-band block also reaches the right edge
  bool overlap_y = false;
};

/// Band math accounts for `ppt`: a block row covers block_y*ppt pixel rows,
/// so the y bands are computed in pixel space with that row pitch.
RegionGrid ComputeRegionGrid(const KernelConfig& config, int width, int height,
                             ast::WindowExtent window, int ppt = 1);

/// Enumerates candidate configurations for a device: thread counts that are
/// multiples of the SIMD width (coalesced accesses) within the block limit,
/// each with all power-of-two tilings (block_x in {simd/4 .. count}). The
/// heuristic and the Figure 4 exploration mode both draw from this set.
std::vector<KernelConfig> EnumerateConfigs(const DeviceSpec& device);

}  // namespace hipacc::hw
