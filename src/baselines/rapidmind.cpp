#include "baselines/rapidmind.hpp"

#include "compiler/executable.hpp"
#include "ops/kernel_sources.hpp"

namespace hipacc::baselines {

Result<RapidMindMeasurement> MeasureRapidMindBilateral(
    int sigma_d, int sigma_r, ast::BoundaryMode mode, bool texture,
    const hw::DeviceSpec& device, int width, int height,
    hw::KernelConfig config, runtime::BindingSet& bindings) {
  if (mode == ast::BoundaryMode::kMirror)
    return Status::Unimplemented(
        "RapidMind does not provide a mirror boundary mode");

  frontend::KernelSource source = ops::BilateralSource(sigma_d, mode);
  source.name = "rapidmind_bilateral";

  compiler::CompileOptions options;
  options.codegen.backend = ast::Backend::kCuda;  // RapidMind's GPU backend
  options.codegen.texture = texture ? codegen::TexturePolicy::kLinear
                                    : codegen::TexturePolicy::kNone;
  options.codegen.border = codegen::BorderPolicy::kUniform;
  options.codegen.masks_in_constant_memory = false;
  options.device = device;
  options.image_width = width;
  options.image_height = height;
  options.forced_config = config;

  Result<compiler::CompiledKernel> compiled = compiler::Compile(source, options);
  if (!compiled.ok()) return compiled.status();

  bindings.Scalar("sigma_d", sigma_d).Scalar("sigma_r", sigma_r);
  compiler::SimulatedExecutable exe(std::move(compiled).take(), device);
  Result<sim::LaunchStats> stats = exe.Measure(bindings);
  if (!stats.ok()) return stats.status();

  RapidMindMeasurement out;
  // The naive negative-modulo repeat faults on devices with memory
  // protection (Fermi); both plain and texture variants crashed in the
  // paper's measurements (Table II).
  if (mode == ast::BoundaryMode::kRepeat && device.compute_capability >= 20) {
    out.crashed = true;
    return out;
  }

  // Apply the generic-code overhead to the compute side of the model.
  sim::Metrics scaled = stats.value().metrics;
  scaled.alu_ops = static_cast<std::uint64_t>(
      static_cast<double>(scaled.alu_ops) * kRapidMindAluOverhead);
  if (mode == ast::BoundaryMode::kRepeat)
    scaled.alu_ops = static_cast<std::uint64_t>(
        static_cast<double>(scaled.alu_ops) * 3.0);  // replayed faulting loads
  const sim::TimingBreakdown timing =
      sim::ModelTime(scaled, device, stats.value().occupancy);
  out.ms = timing.total_ms;
  return out;
}

}  // namespace hipacc::baselines
