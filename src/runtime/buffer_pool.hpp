// Extent-keyed free-list pool of device images. The pipeline graph runtime
// allocates every intermediate (virtual) image here and returns it as soon
// as its last consumer has run, so a deep pipeline's footprint is bounded by
// the widest cut of the DAG, not by its total number of stages — multires
// pyramids re-run whole levels inside buffers freed by earlier levels.
//
// Thread-safe: the graph scheduler acquires and releases from worker
// threads. Buffers are only ever handed out with matching extent, never
// resized, and live until the pool is destroyed.
#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "dsl/image.hpp"

namespace hipacc::sim {
class TraceSink;
}  // namespace hipacc::sim

namespace hipacc::runtime {

class BufferPool {
 public:
  using ImagePtr = std::unique_ptr<dsl::Image<float>>;

  /// Returns a width x height image: recycled from the free list when one
  /// of that exact extent is available, freshly allocated otherwise. Pixel
  /// contents of recycled buffers are stale — callers overwrite them.
  /// When `trace` is set, bumps "bufpool.alloc" or "bufpool.reuse", and
  /// grows "bufpool.peak_bytes" on fresh allocations.
  ImagePtr Acquire(int width, int height, sim::TraceSink* trace = nullptr);

  /// Returns an image to the free list for later reuse.
  void Release(ImagePtr image);

  /// Buffers created / handed out from the free list since construction.
  long long alloc_count() const;
  long long reuse_count() const;
  /// High-water memory footprint in bytes. The pool never shrinks, so this
  /// equals the padded bytes of every image ever allocated — what a pool-less
  /// runtime would hold live simultaneously at its peak.
  long long peak_bytes() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::pair<int, int>, std::vector<ImagePtr>> free_;
  long long allocs_ = 0;
  long long reuses_ = 0;
  long long peak_bytes_ = 0;
};

}  // namespace hipacc::runtime
