#include "codegen/resource_estimator.hpp"

#include <algorithm>
#include <set>

#include "ast/visitor.hpp"

namespace hipacc::codegen {
namespace {

int ExprDepth(const ast::ExprPtr& expr) {
  if (!expr) return 0;
  int deepest = 0;
  for (const auto& arg : expr->args) deepest = std::max(deepest, ExprDepth(arg));
  return deepest + 1;
}

}  // namespace

hw::KernelResources EstimateResources(const ast::DeviceKernel& kernel) {
  hw::KernelResources res;
  res.ppt = kernel.ppt > 0 ? kernel.ppt : 1;

  // The widest variant decides (all variants ship in one kernel).
  int locals = 0;
  int max_depth = 0;
  int max_guards = 0;
  long long max_ops = 0;
  std::set<std::string> local_names;
  for (const auto& variant : kernel.variants) {
    ast::VisitStmts(variant.body, [&](const ast::Stmt& s) {
      if (s.kind == ast::StmtKind::kDecl || s.kind == ast::StmtKind::kFor)
        local_names.insert(s.name);
    });
    long long ops = 0;
    ast::VisitExprs(variant.body, [&](const ast::Expr& e) {
      if (e.kind == ast::ExprKind::kMemRead)
        max_guards = std::max(max_guards, e.checks.count());
      ++ops;
    });
    ast::VisitStmts(variant.body, [&](const ast::Stmt& s) {
      max_depth = std::max({max_depth, ExprDepth(s.value), ExprDepth(s.cond),
                            ExprDepth(s.lo), ExprDepth(s.hi)});
      ++ops;
    });
    max_ops = std::max(max_ops, ops);
  }
  locals = static_cast<int>(local_names.size());
  res.approx_ops = max_ops;

  // 5 registers of fixed overhead (gid_x/gid_y, stride, base pointers —
  // partially reused by ptxas), one per live local, roughly one temporary
  // per two levels of the deepest expression, and one predicate per active
  // guard direction.
  res.regs_per_thread = 5 + locals + (max_depth + 1) / 2 + max_guards;

  // Each extra sub-row of a pixels-per-thread kernel keeps its own row
  // index and write guard live alongside the shared prologue. The lexical
  // locals are re-scoped per sub-row, so only ~2 registers per replica
  // survive past the scheduler.
  if (res.ppt > 1) res.regs_per_thread += 2 * (res.ppt - 1);

  if (kernel.smem) {
    res.smem_tile = true;
    res.smem_halo_x = kernel.smem->window.half_x;
    res.smem_halo_y = kernel.smem->window.half_y;
    res.regs_per_thread += 3;  // staging indices
  }
  return res;
}

}  // namespace hipacc::codegen
