// Profile-guided configuration reselection: the pure DecideSelection policy
// (sample/freshness/challenge/ppt gates), the history codec and EWMA merge,
// disk-backed append-merge across store instances, and the end-to-end
// compile behaviour — a trustworthy measured winner overrides Algorithm 2,
// while challenge rounds, missing history, and a device change all fall
// back bit-identically to the heuristic compile.
#include <gtest/gtest.h>

#include <filesystem>
#include <string>

#include "compiler/driver.hpp"
#include "compiler/profile.hpp"
#include "hwmodel/device_db.hpp"
#include "ops/kernel_sources.hpp"
#include "support/disk_store.hpp"

namespace hipacc {
namespace {

namespace fs = std::filesystem;

frontend::KernelSource Source() {
  return ops::BilateralMaskSource(1, ast::BoundaryMode::kClamp);
}

compiler::CompileOptions Options(const hw::DeviceSpec& device) {
  compiler::CompileOptions options;
  options.device = device;
  options.image_width = 512;
  options.image_height = 512;
  return options;
}

compiler::CompiledKernel MustCompile(const compiler::CompileOptions& options) {
  Result<compiler::CompiledKernel> compiled =
      compiler::Compile(Source(), options);
  HIPACC_CHECK(compiled.ok());
  return std::move(compiled).take();
}

compiler::ProfileEntry Entry(hw::KernelConfig config, int ppt, double ms,
                             long long samples, long long last_seq) {
  compiler::ProfileEntry entry;
  entry.config = config;
  entry.ppt = ppt;
  entry.ms = ms;
  entry.samples = samples;
  entry.last_seq = last_seq;
  return entry;
}

TEST(DecideSelectionTest, EmptyOrUndersampledHistoryFallsBack) {
  compiler::ProfilePolicy policy;
  compiler::ProfileHistory history;
  EXPECT_EQ(compiler::DecideSelection(history, policy).mode,
            compiler::SelectionMode::kNoHistory);

  history.seq = 1;
  history.entries.push_back(Entry({32, 2}, 1, 5.0, /*samples=*/1, 1));
  EXPECT_EQ(compiler::DecideSelection(history, policy).mode,
            compiler::SelectionMode::kNoHistory);
}

TEST(DecideSelectionTest, WinnerIsTheFastestFreshEntry) {
  compiler::ProfilePolicy policy;
  compiler::ProfileHistory history;
  history.seq = 6;
  history.entries.push_back(Entry({32, 6}, 1, 9.0, 2, 5));
  history.entries.push_back(Entry({64, 2}, 1, 4.0, 2, 6));
  history.entries.push_back(Entry({16, 4}, 2, 7.0, 2, 4));

  const compiler::SelectionDecision decision =
      compiler::DecideSelection(history, policy);
  ASSERT_EQ(decision.mode, compiler::SelectionMode::kMeasured);
  EXPECT_EQ(decision.winner.config, (hw::KernelConfig{64, 2}));
  EXPECT_EQ(decision.winner.ppt, 1);
  EXPECT_EQ(compiler::ProfileSalt(decision), "m:64x2x1");
}

TEST(DecideSelectionTest, StaleEntriesStopCompeting) {
  compiler::ProfilePolicy policy;  // freshness_window = 64
  compiler::ProfileHistory history;
  history.seq = 100;
  // The fastest entry was last seen at seq 10 — 10 + 64 < 100, stale.
  history.entries.push_back(Entry({64, 2}, 1, 4.0, 2, 10));
  history.entries.push_back(Entry({32, 6}, 1, 9.0, 2, 99));

  compiler::SelectionDecision decision =
      compiler::DecideSelection(history, policy);
  ASSERT_EQ(decision.mode, compiler::SelectionMode::kMeasured);
  EXPECT_EQ(decision.winner.config, (hw::KernelConfig{32, 6}));

  // Window 0 disables the filter: the old winner competes again.
  policy.freshness_window = 0;
  decision = compiler::DecideSelection(history, policy);
  ASSERT_EQ(decision.mode, compiler::SelectionMode::kMeasured);
  EXPECT_EQ(decision.winner.config, (hw::KernelConfig{64, 2}));

  // If every entry is stale, the selection falls back entirely.
  policy.freshness_window = 64;
  history.entries[1].last_seq = 10;
  EXPECT_EQ(compiler::DecideSelection(history, policy).mode,
            compiler::SelectionMode::kNoHistory);
}

TEST(DecideSelectionTest, ChallengeRoundsReRunTheHeuristic) {
  compiler::ProfilePolicy policy;  // reexplore_period = 16
  compiler::ProfileHistory history;
  history.entries.push_back(Entry({64, 2}, 1, 4.0, 2, 16));

  history.seq = 16;
  EXPECT_EQ(compiler::DecideSelection(history, policy).mode,
            compiler::SelectionMode::kChallenge);
  history.seq = 17;
  EXPECT_EQ(compiler::DecideSelection(history, policy).mode,
            compiler::SelectionMode::kMeasured);

  // Period 0 disables challenges outright.
  policy.reexplore_period = 0;
  history.seq = 16;
  EXPECT_EQ(compiler::DecideSelection(history, policy).mode,
            compiler::SelectionMode::kMeasured);

  // Challenge and no-history decisions salt to "" — they must share cache
  // entries with profile-less compiles.
  compiler::SelectionDecision challenge;
  challenge.mode = compiler::SelectionMode::kChallenge;
  EXPECT_EQ(compiler::ProfileSalt(challenge), "");
  EXPECT_EQ(compiler::ProfileSalt(compiler::SelectionDecision{}), "");
}

TEST(DecideSelectionTest, RequirePptPinsTheAxis) {
  compiler::ProfilePolicy policy;
  policy.require_ppt = 2;
  compiler::ProfileHistory history;
  history.seq = 4;
  history.entries.push_back(Entry({64, 2}, 1, 4.0, 2, 4));   // faster, wrong ppt
  history.entries.push_back(Entry({32, 6}, 2, 9.0, 2, 4));

  const compiler::SelectionDecision decision =
      compiler::DecideSelection(history, policy);
  ASSERT_EQ(decision.mode, compiler::SelectionMode::kMeasured);
  EXPECT_EQ(decision.winner.config, (hw::KernelConfig{32, 6}));
  EXPECT_EQ(decision.winner.ppt, 2);
}

TEST(ProfileCodecTest, HistoryRoundTripsAndRejectsJunk) {
  compiler::ProfileHistory history;
  history.seq = 42;
  history.entries.push_back(Entry({32, 6}, 1, 9.25, 3, 40));
  history.entries.push_back(Entry({8, 28}, 4, 4.5, 2, 42));

  compiler::ProfileHistory decoded;
  ASSERT_TRUE(compiler::DecodeProfileHistory(
      compiler::EncodeProfileHistory(history), &decoded));
  EXPECT_EQ(decoded.seq, 42);
  ASSERT_EQ(decoded.entries.size(), 2u);
  EXPECT_EQ(decoded.entries[0].config, (hw::KernelConfig{32, 6}));
  EXPECT_EQ(decoded.entries[0].samples, 3);
  EXPECT_EQ(decoded.entries[0].last_seq, 40);
  EXPECT_DOUBLE_EQ(decoded.entries[1].ms, 4.5);
  EXPECT_EQ(decoded.entries[1].ppt, 4);

  compiler::ProfileHistory sink;
  EXPECT_FALSE(compiler::DecodeProfileHistory("", &sink));
  EXPECT_FALSE(compiler::DecodeProfileHistory("not json", &sink));
  EXPECT_FALSE(compiler::DecodeProfileHistory("{\"v\":999}", &sink));
}

TEST(ProfileKeyTest, KeyTracksContextButNotPpt) {
  const codegen::CodegenOptions defaults;
  const std::string base = compiler::MakeProfileKey(
      "fingerprint", defaults, hw::TeslaC2050(), 512, 512);
  EXPECT_EQ(base, compiler::MakeProfileKey("fingerprint", defaults,
                                           hw::TeslaC2050(), 512, 512));
  EXPECT_NE(base, compiler::MakeProfileKey("other", defaults,
                                           hw::TeslaC2050(), 512, 512));
  EXPECT_NE(base, compiler::MakeProfileKey("fingerprint", defaults,
                                           hw::RadeonHd5870(), 512, 512));
  EXPECT_NE(base, compiler::MakeProfileKey("fingerprint", defaults,
                                           hw::TeslaC2050(), 1024, 512));

  // pixels_per_thread is normalised out: a PPT sweep feeds one shared pool.
  codegen::CodegenOptions ppt8 = defaults;
  ppt8.pixels_per_thread = 8;
  EXPECT_EQ(base, compiler::MakeProfileKey("fingerprint", ppt8,
                                           hw::TeslaC2050(), 512, 512));
}

TEST(ProfileStoreTest, RecordMergesIntoAnEwma) {
  compiler::ProfileStore store;
  store.Record("key", {{32, 2}, 1, 10.0});
  store.Record("key", {{32, 2}, 1, 20.0});
  store.Record("key", {{64, 2}, 1, 30.0});

  const compiler::ProfileHistory history = store.Lookup("key");
  EXPECT_EQ(history.seq, 3);
  ASSERT_EQ(history.entries.size(), 2u);
  for (const compiler::ProfileEntry& entry : history.entries) {
    if (entry.config == (hw::KernelConfig{32, 2})) {
      EXPECT_DOUBLE_EQ(entry.ms, 15.0);  // alpha 0.5 over 10 then 20
      EXPECT_EQ(entry.samples, 2);
      EXPECT_EQ(entry.last_seq, 2);
    } else {
      EXPECT_EQ(entry.config, (hw::KernelConfig{64, 2}));
      EXPECT_EQ(entry.samples, 1);
      EXPECT_EQ(entry.last_seq, 3);
    }
  }
}

TEST(ProfileStoreTest, RecordBatchMatchesSequentialRecords) {
  // The batched feeding path must merge in batch order — replaying the same
  // observations through Record() yields the identical history.
  const std::vector<compiler::KeyedObservation> batch = {
      {"a", {{32, 2}, 1, 10.0}},
      {"a", {{32, 2}, 1, 20.0}},
      {"b", {{64, 2}, 1, 30.0}},
      {"a", {{64, 4}, 2, 40.0}},
  };
  compiler::ProfileStore batched;
  batched.RecordBatch(batch);
  compiler::ProfileStore sequential;
  for (const compiler::KeyedObservation& keyed : batch)
    sequential.Record(keyed.key, keyed.observation);

  for (const char* key : {"a", "b"}) {
    const compiler::ProfileHistory lhs = batched.Lookup(key);
    const compiler::ProfileHistory rhs = sequential.Lookup(key);
    EXPECT_EQ(compiler::EncodeProfileHistory(lhs),
              compiler::EncodeProfileHistory(rhs))
        << key;
  }
  // The whole batch cost one flush; the sequential replay cost one each.
  EXPECT_EQ(batched.flush_count(), 1);
  EXPECT_EQ(batched.observation_count(), 4);
  EXPECT_EQ(sequential.flush_count(), 4);
  EXPECT_EQ(sequential.observation_count(), 4);
  // Empty batches do not count as a flush.
  batched.RecordBatch({});
  EXPECT_EQ(batched.flush_count(), 1);
}

TEST(ProfileStoreTest, DiskBackedBatchFlushesOncePerDistinctKey) {
  const fs::path root = fs::path(::testing::TempDir()) / "profile_batch_disk";
  fs::remove_all(root);
  support::DiskStoreOptions options;
  options.root = root.string();
  support::DiskStore disk(options);

  {
    compiler::ProfileStore writer(&disk);
    writer.RecordBatch({{"key", {{32, 2}, 1, 10.0}},
                        {"key", {{32, 2}, 1, 20.0}},
                        {"other", {{64, 2}, 1, 5.0}}});
    EXPECT_EQ(writer.flush_count(), 1);
    EXPECT_EQ(writer.observation_count(), 3);
  }
  // The single flush persisted the merged histories.
  compiler::ProfileStore reader(&disk);
  const compiler::ProfileHistory merged = reader.Lookup("key");
  EXPECT_EQ(merged.seq, 2);
  ASSERT_EQ(merged.entries.size(), 1u);
  EXPECT_EQ(merged.entries[0].samples, 2);
  EXPECT_EQ(reader.Lookup("other").entries.size(), 1u);
}

TEST(ProfileStoreTest, DiskBackedStoresAppendMergeAcrossInstances) {
  const fs::path root =
      fs::path(::testing::TempDir()) / "profile_store_merge";
  fs::remove_all(root);
  support::DiskStoreOptions options;
  options.root = root.string();
  support::DiskStore disk(options);

  {
    compiler::ProfileStore writer(&disk);
    writer.Record("key", {{32, 2}, 1, 10.0});
    writer.Record("key", {{32, 2}, 1, 20.0});
  }
  // A second instance (second process) sees the persisted history and its
  // own observations merge on top instead of clobbering.
  {
    compiler::ProfileStore appender(&disk);
    const compiler::ProfileHistory seen = appender.Lookup("key");
    EXPECT_EQ(seen.seq, 2);
    ASSERT_EQ(seen.entries.size(), 1u);
    EXPECT_EQ(seen.entries[0].samples, 2);
    appender.Record("key", {{64, 2}, 1, 5.0});
  }
  compiler::ProfileStore reader(&disk);
  const compiler::ProfileHistory merged = reader.Lookup("key");
  EXPECT_EQ(merged.seq, 3);
  EXPECT_EQ(merged.entries.size(), 2u);
}

TEST(ProfileReselectionTest, MeasuredWinnerOverridesTheHeuristic) {
  const hw::DeviceSpec device = hw::TeslaC2050();
  const compiler::CompiledKernel baseline = MustCompile(Options(device));
  ASSERT_FALSE(baseline.source_fingerprint.empty());
  const hw::KernelConfig heuristic = baseline.config.config;

  // Prove the alternative configuration is valid for this kernel before
  // seeding it as the measured winner.
  const hw::KernelConfig alternative{64, 2};
  ASSERT_NE(alternative, heuristic);
  compiler::CompileOptions forced = Options(device);
  forced.forced_config = alternative;
  MustCompile(forced);

  const std::string key = compiler::MakeProfileKey(
      baseline.source_fingerprint, baseline.codegen, device, 512, 512);
  compiler::ProfileStore profiles;
  const int ppt = baseline.device_ir.ppt;
  for (int i = 0; i < 2; ++i) {
    profiles.Record(key, {alternative, ppt, 1.0});
    profiles.Record(key, {heuristic, ppt, 50.0});
  }

  compiler::CompileOptions learned_opts = Options(device);
  learned_opts.profiles = &profiles;
  const compiler::CompiledKernel learned = MustCompile(learned_opts);
  EXPECT_EQ(learned.config.config, alternative);
  EXPECT_EQ(learned.device_ir.ppt, ppt);

  // forced_config always wins over history.
  compiler::CompileOptions pinned = Options(device);
  pinned.profiles = &profiles;
  pinned.forced_config = heuristic;
  EXPECT_EQ(MustCompile(pinned).config.config, heuristic);
}

TEST(ProfileReselectionTest, NoHistoryAndChallengeAreBitIdenticalFallbacks) {
  const hw::DeviceSpec device = hw::TeslaC2050();
  const compiler::CompiledKernel baseline = MustCompile(Options(device));

  // Empty history: the profiled compile is the heuristic compile.
  compiler::ProfileStore empty;
  compiler::CompileOptions no_history = Options(device);
  no_history.profiles = &empty;
  const compiler::CompiledKernel fallback = MustCompile(no_history);
  EXPECT_EQ(fallback.source, baseline.source);
  EXPECT_EQ(fallback.config.config, baseline.config.config);

  // A challenge round with a seeded (faster) winner also falls back.
  const std::string key = compiler::MakeProfileKey(
      baseline.source_fingerprint, baseline.codegen, device, 512, 512);
  compiler::ProfileStore profiles;
  const int ppt = baseline.device_ir.ppt;
  for (int i = 0; i < 4; ++i) profiles.Record(key, {{64, 2}, ppt, 1.0});
  compiler::CompileOptions challenge_opts = Options(device);
  challenge_opts.profiles = &profiles;
  challenge_opts.profile_policy.reexplore_period = 4;  // seq == 4 challenges
  const compiler::CompiledKernel challenged = MustCompile(challenge_opts);
  EXPECT_EQ(challenged.source, baseline.source);
  EXPECT_EQ(challenged.config.config, baseline.config.config);
}

TEST(ProfileReselectionTest, DeviceChangeRecoversToTheHeuristic) {
  const hw::DeviceSpec tesla = hw::TeslaC2050();
  const hw::DeviceSpec radeon = hw::RadeonHd5870();
  const compiler::CompiledKernel baseline = MustCompile(Options(tesla));

  // Seed a dominant winner under the Tesla key.
  const std::string tesla_key = compiler::MakeProfileKey(
      baseline.source_fingerprint, baseline.codegen, tesla, 512, 512);
  compiler::ProfileStore profiles;
  const int ppt = baseline.device_ir.ppt;
  for (int i = 0; i < 2; ++i) profiles.Record(tesla_key, {{64, 2}, ppt, 1.0});

  // The device change moves the profile key, so the stale Tesla history
  // never leaks: the Radeon compile matches its profile-less twin exactly.
  compiler::CompileOptions radeon_opts = Options(radeon);
  radeon_opts.codegen.backend = ast::Backend::kOpenCL;
  const compiler::CompiledKernel radeon_baseline = MustCompile(radeon_opts);
  compiler::CompileOptions radeon_learned = radeon_opts;
  radeon_learned.profiles = &profiles;
  const compiler::CompiledKernel recovered = MustCompile(radeon_learned);
  EXPECT_EQ(recovered.source, radeon_baseline.source);
  EXPECT_EQ(recovered.config.config, radeon_baseline.config.config);

  // And new measurements immediately accumulate under the new key,
  // rebuilding trust for the new context.
  const std::string radeon_key =
      compiler::MakeProfileKey(recovered.source_fingerprint, recovered.codegen,
                               radeon, 512, 512);
  EXPECT_NE(radeon_key, tesla_key);
  profiles.Record(radeon_key,
                  {recovered.config.config, recovered.device_ir.ppt, 2.0});
  EXPECT_EQ(profiles.Lookup(radeon_key).seq, 1);
}

}  // namespace
}  // namespace hipacc
