// One options struct for the cached execute path and the pipeline graph
// runtime, consolidating what used to be spread over three overlapping
// structs: codegen::CodegenOptions (how kernels are compiled),
// sim::SimulatorOptions (which simulator engine runs them), and the
// retired KernelRunner options struct (device, forced configuration,
// trace, cache).
//
// The chainable with_* setters cover the common knobs:
//
//   runner.Run(...) with RunOptions()
//       .with_device(hw::TeslaC2050())
//       .with_texture(codegen::TexturePolicy::kLinear)
//       .with_trace(&sink);
#pragma once

#include <optional>
#include <utility>

#include "codegen/options.hpp"
#include "hwmodel/config.hpp"
#include "hwmodel/device_db.hpp"
#include "sim/options.hpp"

namespace hipacc::compiler {
class CompilationCache;
struct CompileOptions;
class ProfileStore;
}  // namespace hipacc::compiler

namespace hipacc::sim {
class TraceSink;
}  // namespace hipacc::sim

namespace hipacc::runtime {

struct RunOptions {
  codegen::CodegenOptions codegen;
  hw::DeviceSpec device = hw::TeslaC2050();
  /// Skip Algorithm 2 and force this launch configuration.
  std::optional<hw::KernelConfig> forced_config;
  sim::TraceSink* trace = nullptr;
  /// Compilation results are memoised here; null for the process-wide
  /// GlobalCompilationCache().
  compiler::CompilationCache* cache = nullptr;
  /// Simulator engine selection. Unset defers to the process-wide
  /// sim::DefaultSimulatorOptions() — what the --sim-engine flag steers —
  /// exactly as launches behaved before this struct existed.
  std::optional<sim::SimulatorOptions> sim;
  /// When set, compilation consults measured history for configuration
  /// reselection (compiler/profile.hpp) and every launch this runtime
  /// executes records its modelled time back into the store.
  compiler::ProfileStore* profiles = nullptr;

  /// Engine the simulator will actually use under these options.
  sim::SimulatorOptions sim_options() const {
    return sim ? *sim : sim::DefaultSimulatorOptions();
  }

  RunOptions& with_backend(ast::Backend backend) {
    codegen.backend = backend;
    return *this;
  }
  RunOptions& with_texture(codegen::TexturePolicy texture) {
    codegen.texture = texture;
    return *this;
  }
  RunOptions& with_border(codegen::BorderPolicy border) {
    codegen.border = border;
    return *this;
  }
  RunOptions& with_scratchpad(bool on = true) {
    codegen.use_scratchpad = on;
    return *this;
  }
  RunOptions& with_constant_masks(bool on = true) {
    codegen.masks_in_constant_memory = on;
    return *this;
  }
  RunOptions& with_device(hw::DeviceSpec spec) {
    device = std::move(spec);
    return *this;
  }
  RunOptions& with_forced_config(hw::KernelConfig config) {
    forced_config = config;
    return *this;
  }
  RunOptions& with_trace(sim::TraceSink* sink) {
    trace = sink;
    return *this;
  }
  RunOptions& with_cache(compiler::CompilationCache* c) {
    cache = c;
    return *this;
  }
  RunOptions& with_profiles(compiler::ProfileStore* p) {
    profiles = p;
    return *this;
  }
  RunOptions& with_sim_engine(sim::ExecEngine engine) {
    if (!sim) sim.emplace();
    sim->engine = engine;
    return *this;
  }
};

/// Expands RunOptions into driver CompileOptions for one target extent,
/// substituting the process-wide GlobalCompilationCache() when no cache is
/// set. Defined in run_options.cpp (hipacc_runtime_exec) — the compiler
/// layer is forward-declared here.
compiler::CompileOptions MakeCompileOptions(const RunOptions& options,
                                            int width, int height);

}  // namespace hipacc::runtime
