#include "sim/memory.hpp"

#include <algorithm>

namespace hipacc::sim {

namespace {

/// Sorts `v` and drops duplicates, leaving the distinct values in ascending
/// order — the same order a std::set would iterate them in. The inputs are
/// one warp's addresses (at most 64), so this is far cheaper than
/// tree-based deduplication. Only the unsorted slow path pays for this;
/// coalesced warps are handled by the one-pass CoalesceAscending.
void SortUnique(std::vector<std::uint64_t>* v) {
  if (!std::is_sorted(v->begin(), v->end())) std::sort(v->begin(), v->end());
  v->erase(std::unique(v->begin(), v->end()), v->end());
}

/// Upper bound on lanes handled by the stack fast path. A warp never
/// exceeds 64 lanes on any modelled device; longer spans (none today) fall
/// back to the heap scratch.
constexpr std::size_t kFastLanes = 64;

}  // namespace

void SegmentCache::InitTable() {
  // Fixed-size table, >= 2x capacity so the load factor stays below 0.5
  // and probe chains stay short. Sized once: the cache never rehashes.
  std::size_t size = 8;
  while (size < static_cast<std::size_t>(capacity_) * 2) size <<= 1;
  keys_.assign(size, kEmpty);
  slot_node_.assign(size, -1);
  mask_ = size - 1;
  shift_ = 64 - __builtin_ctzll(static_cast<std::uint64_t>(size));
  segments_.reserve(static_cast<std::size_t>(capacity_));
  prev_.reserve(static_cast<std::size_t>(capacity_));
  next_.reserve(static_cast<std::size_t>(capacity_));
}

void SegmentCache::Unlink(int i) {
  const int p = prev_[static_cast<std::size_t>(i)];
  const int nx = next_[static_cast<std::size_t>(i)];
  if (p >= 0) next_[static_cast<std::size_t>(p)] = nx;
  else head_ = nx;
  if (nx >= 0) prev_[static_cast<std::size_t>(nx)] = p;
  else tail_ = p;
}

void SegmentCache::PushFront(int i) {
  prev_[static_cast<std::size_t>(i)] = -1;
  next_[static_cast<std::size_t>(i)] = head_;
  if (head_ >= 0) prev_[static_cast<std::size_t>(head_)] = i;
  head_ = i;
  if (tail_ < 0) tail_ = i;
}

void SegmentCache::EraseKey(std::uint64_t segment) {
  std::size_t i = Hash(segment);
  while (keys_[i] != segment) i = (i + 1) & mask_;
  // Backshift deletion: walk the probe cluster after the hole and pull
  // back any entry whose home slot is outside the cyclic range (i, j], so
  // lookups never cross a spurious empty slot.
  std::size_t j = i;
  while (true) {
    keys_[i] = kEmpty;
    while (true) {
      j = (j + 1) & mask_;
      if (keys_[j] == kEmpty) return;
      const std::size_t home = Hash(keys_[j]);
      const bool in_gap = i <= j ? (home > i && home <= j)
                                 : (home > i || home <= j);
      if (!in_gap) break;
    }
    keys_[i] = keys_[j];
    slot_node_[i] = slot_node_[j];
    i = j;
  }
}

bool SegmentCache::Access(std::uint64_t segment) {
  std::size_t slot = Hash(segment);
  while (keys_[slot] != kEmpty) {
    if (keys_[slot] == segment) {
      const int i = slot_node_[slot];
      if (head_ != i) {
        Unlink(i);
        PushFront(i);
      }
      return true;
    }
    slot = (slot + 1) & mask_;
  }
  int node;
  if (static_cast<int>(segments_.size()) >= capacity_) {
    // Evict the least recently used entry, reusing its node.
    node = tail_;
    EraseKey(segments_[static_cast<std::size_t>(node)]);
    segments_[static_cast<std::size_t>(node)] = segment;
    Unlink(node);
  } else {
    node = static_cast<int>(segments_.size());
    segments_.push_back(segment);
    prev_.push_back(-1);
    next_.push_back(-1);
  }
  // Re-probe: the eviction's backshift may have moved entries into the
  // slot the initial probe ended on.
  slot = Hash(segment);
  while (keys_[slot] != kEmpty) slot = (slot + 1) & mask_;
  keys_[slot] = segment;
  slot_node_[slot] = node;
  PushFront(node);
  return false;
}

MemoryModel::MemoryModel(const hw::DeviceSpec& device)
    : device_(device),
      tex_cache_(device.tex_cache_bytes / device.mem_transaction_bytes),
      l1_cache_(device.tex_cache_bytes / device.mem_transaction_bytes) {
  const unsigned t = static_cast<unsigned>(device.mem_transaction_bytes);
  if (t != 0 && (t & (t - 1)) == 0) seg_shift_ = __builtin_ctz(t);
}

bool MemoryModel::CoalesceAscending(const std::uint64_t* addrs,
                                    std::size_t count, std::uint64_t* out,
                                    std::size_t* out_count) const {
  if (count > kFastLanes) return false;
  std::size_t k = 0;
  for (std::size_t i = 0; i < count; ++i) {
    const std::uint64_t seg = Segment(addrs[i]);
    if (k != 0) {
      if (seg == out[k - 1]) continue;
      if (seg < out[k - 1]) return false;
    }
    out[k++] = seg;
  }
  *out_count = k;
  return true;
}

void MemoryModel::GlobalAccess(const std::uint64_t* addrs, std::size_t count,
                               bool is_write, Metrics* metrics) {
  if (count == 0) return;
  if (is_write)
    ++metrics->global_write_instrs;
  else
    ++metrics->global_read_instrs;

  // Coalescing: one transaction per distinct segment touched by the warp.
  std::uint64_t fast[kFastLanes];
  const std::uint64_t* uniq = fast;
  std::size_t n;
  if (!CoalesceAscending(addrs, count, fast, &n)) {
    scratch_.clear();
    for (std::size_t i = 0; i < count; ++i)
      scratch_.push_back(Segment(addrs[i]));
    SortUnique(&scratch_);
    uniq = scratch_.data();
    n = scratch_.size();
  }

  if (!is_write && device_.has_global_l1) {
    for (std::size_t i = 0; i < n; ++i) {
      if (l1_cache_.Access(uniq[i]))
        ++metrics->l1_hits;
      else
        ++metrics->global_transactions;
    }
  } else {
    metrics->global_transactions += n;
  }
}

void MemoryModel::TextureAccess(const std::uint64_t* addrs, std::size_t count,
                                Metrics* metrics) {
  if (count == 0) return;
  ++metrics->tex_read_instrs;
  std::uint64_t fast[kFastLanes];
  const std::uint64_t* uniq = fast;
  std::size_t n;
  if (!CoalesceAscending(addrs, count, fast, &n)) {
    scratch_.clear();
    for (std::size_t i = 0; i < count; ++i)
      scratch_.push_back(Segment(addrs[i]));
    SortUnique(&scratch_);
    uniq = scratch_.data();
    n = scratch_.size();
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (tex_cache_.Access(uniq[i]))
      ++metrics->tex_hits;
    else
      ++metrics->tex_transactions;
  }
}

void MemoryModel::ConstantAccess(const std::uint64_t* addrs, std::size_t count,
                                 Metrics* metrics) {
  if (count == 0) return;
  // The overwhelmingly common case is a warp-uniform mask lookup: every
  // lane reads the same entry. Detect it without sorting.
  bool all_same = true;
  for (std::size_t i = 1; i < count; ++i) {
    if (addrs[i] != addrs[0]) {
      all_same = false;
      break;
    }
  }
  if (all_same) {
    ++metrics->const_broadcasts;
    return;
  }
  scratch_.assign(addrs, addrs + count);
  SortUnique(&scratch_);
  if (scratch_.size() == 1)
    ++metrics->const_broadcasts;
  else
    metrics->const_serialized += scratch_.size();
}

void MemoryModel::SharedAccess(const std::uint64_t* addrs, std::size_t count,
                               Metrics* metrics) {
  if (count == 0) return;
  ++metrics->smem_accesses;
  // Bank conflict degree: lanes with the same address broadcast; distinct
  // addresses mapping to one bank serialize. Deduplication and bank
  // counting run in one pass when the addresses are ascending (the usual
  // coalesced pattern); the generation stamp makes stale bank counts read
  // as zero, so the 64-entry array is never cleared per call.
  const std::uint64_t banks = std::min<std::uint64_t>(
      static_cast<std::uint64_t>(device_.smem_banks), bank_count_.size());
  std::uint64_t degree = 1;
  NextBankGen();
  bool sorted = true;
  for (std::size_t i = 0; i < count; ++i) {
    const std::uint64_t addr = addrs[i];
    if (i != 0) {
      if (addr < addrs[i - 1]) {
        sorted = false;
        break;
      }
      if (addr == addrs[i - 1]) continue;
    }
    const std::size_t b = static_cast<std::size_t>(addr % banks);
    if (bank_stamp_[b] != bank_gen_) {
      bank_stamp_[b] = bank_gen_;
      bank_count_[b] = 0;
    }
    degree = std::max<std::uint64_t>(degree, ++bank_count_[b]);
  }
  if (!sorted) {
    scratch_.assign(addrs, addrs + count);
    SortUnique(&scratch_);
    NextBankGen();
    degree = 1;
    for (const std::uint64_t addr : scratch_) {
      const std::size_t b = static_cast<std::size_t>(addr % banks);
      if (bank_stamp_[b] != bank_gen_) {
        bank_stamp_[b] = bank_gen_;
        bank_count_[b] = 0;
      }
      degree = std::max<std::uint64_t>(degree, ++bank_count_[b]);
    }
  }
  metrics->smem_conflict_cycles += degree - 1;
}

}  // namespace hipacc::sim
