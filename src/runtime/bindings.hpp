// Host-side runtime: binds DSL objects (Image, Mask, scalar params) to a
// simulated-device kernel launch — the role of the generated host code and
// run-time library in the paper (memory allocation, argument setup, texture
// binding, kernel invocation).
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "dsl/image.hpp"
#include "sim/launch.hpp"

namespace hipacc::runtime {

/// Named arguments for one kernel launch.
///
/// Kernels bind a handful of arguments (one or two images, a mask, a few
/// scalars), so the members are small insertion-ordered flat vectors rather
/// than node-based maps: lookups are linear scans over contiguous memory,
/// copies (the exploration engine clones one BindingSet per lane) are a few
/// allocations instead of a tree rebuild. Re-binding an existing name
/// replaces its value in place.
class BindingSet {
 public:
  template <typename V>
  using NamedVec = std::vector<std::pair<std::string, V>>;

  /// Binds an input image under the accessor's name.
  BindingSet& Input(const std::string& name, dsl::Image<float>& image) {
    Assign(inputs_, name, &image);
    return *this;
  }
  /// Binds the output image (the iteration-space image).
  BindingSet& Output(dsl::Image<float>& image) {
    output_ = &image;
    return *this;
  }
  /// Binds one of a multi-output kernel's extra outputs (the image written
  /// by `output(name) = ...`, lowered to buffer `_out_<name>`).
  BindingSet& Output(const std::string& name, dsl::Image<float>& image) {
    Assign(extra_outputs_, name, &image);
    return *this;
  }
  /// Binds mask coefficients (constant-memory or global-memory masks alike).
  BindingSet& MaskValues(const std::string& name, std::vector<float> values) {
    Assign(masks_, name, std::move(values));
    return *this;
  }
  /// Binds a scalar kernel parameter.
  BindingSet& Scalar(const std::string& name, double value) {
    Assign(scalars_, name, value);
    return *this;
  }

  const NamedVec<dsl::Image<float>*>& inputs() const { return inputs_; }
  dsl::Image<float>* output() const { return output_; }
  const NamedVec<dsl::Image<float>*>& extra_outputs() const {
    return extra_outputs_;
  }
  const NamedVec<std::vector<float>>& masks() const { return masks_; }
  const NamedVec<double>& scalars() const { return scalars_; }

  /// Bound image / coefficients for `name`; null when not bound.
  dsl::Image<float>* FindInput(const std::string& name) const {
    const auto* entry = Find(inputs_, name);
    return entry ? *entry : nullptr;
  }
  const std::vector<float>* FindMask(const std::string& name) const {
    return Find(masks_, name);
  }
  const double* FindScalar(const std::string& name) const {
    return Find(scalars_, name);
  }
  dsl::Image<float>* FindExtraOutput(const std::string& name) const {
    const auto* entry = Find(extra_outputs_, name);
    return entry ? *entry : nullptr;
  }

 private:
  template <typename V>
  static void Assign(NamedVec<V>& vec, const std::string& name, V value) {
    for (auto& [key, existing] : vec) {
      if (key == name) {
        existing = std::move(value);
        return;
      }
    }
    vec.emplace_back(name, std::move(value));
  }
  template <typename V>
  static const V* Find(const NamedVec<V>& vec, const std::string& name) {
    for (const auto& [key, value] : vec)
      if (key == name) return &value;
    return nullptr;
  }

  NamedVec<dsl::Image<float>*> inputs_;
  dsl::Image<float>* output_ = nullptr;
  NamedVec<dsl::Image<float>*> extra_outputs_;
  NamedVec<std::vector<float>> masks_;
  NamedVec<double> scalars_;
};

/// Assembles a sim::Launch for `kernel` from `bindings`: images become
/// BufferBindings (inputs under their accessor names, output as "_out"),
/// constant masks go to the launch's constant-memory table, global masks
/// get a buffer view over their coefficients (storage stays alive inside
/// the returned holder).
struct LaunchHolder {
  sim::Launch launch;
  /// Backing storage for global-mask buffers referenced by the launch.
  std::vector<std::vector<float>> owned;
};

Result<LaunchHolder> BuildLaunch(const ast::DeviceKernel& kernel,
                                 const hw::KernelConfig& config,
                                 const BindingSet& bindings);

}  // namespace hipacc::runtime
