// Blocking parallel loop over an index range, chunked across a fixed set of
// worker threads. Used by the DSL's host executor (per image row) and by the
// simulator (per thread block). Deliberately simple: fork/join per call —
// call granularity here is whole kernel launches, so thread start-up cost is
// negligible against the work.
#pragma once

#include <algorithm>
#include <functional>
#include <thread>
#include <vector>

namespace hipacc {

/// Invokes `body(i)` for every i in [begin, end) using up to `max_threads`
/// workers (0 = hardware concurrency). `body` must be safe to call
/// concurrently for distinct indices.
inline void ParallelFor(int begin, int end,
                        const std::function<void(int)>& body,
                        unsigned max_threads = 0) {
  const int count = end - begin;
  if (count <= 0) return;
  unsigned workers = max_threads ? max_threads
                                 : std::max(1u, std::thread::hardware_concurrency());
  workers = std::min<unsigned>(workers, static_cast<unsigned>(count));
  if (workers <= 1) {
    for (int i = begin; i < end; ++i) body(i);
    return;
  }
  std::vector<std::thread> threads;
  threads.reserve(workers);
  const int chunk = (count + static_cast<int>(workers) - 1) / static_cast<int>(workers);
  for (unsigned w = 0; w < workers; ++w) {
    const int lo = begin + static_cast<int>(w) * chunk;
    const int hi = std::min(end, lo + chunk);
    if (lo >= hi) break;
    threads.emplace_back([lo, hi, &body] {
      for (int i = lo; i < hi; ++i) body(i);
    });
  }
  for (auto& t : threads) t.join();
}

}  // namespace hipacc
