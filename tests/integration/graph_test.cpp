// Pipeline graph runtime: DAG validation, scheduling, buffer pooling,
// fusion, and graph-vs-eager bit-identity of the multiresolution filter.
#include "runtime/graph.hpp"

#include <gtest/gtest.h>

#include "compiler/driver.hpp"
#include "image/metrics.hpp"
#include "image/synthetic.hpp"
#include "ops/kernel_sources.hpp"
#include "ops/masks.hpp"
#include "ops/pyramid.hpp"
#include "sim/trace.hpp"

namespace hipacc {
namespace {

using ast::BoundaryMode;
using runtime::GraphOptions;
using runtime::PipelineGraph;

frontend::KernelSource Conv3(BoundaryMode mode = BoundaryMode::kClamp) {
  return ops::GaussianSource(3, 1.0f, mode);
}

TEST(PipelineGraphTest, RejectsCycleWithStageNames) {
  PipelineGraph graph;
  graph.Kernel("a", ops::ScaleOffsetSource(), {{"Input", "b"}},
               {{"scale", 1.0}, {"offset", 0.0}});
  graph.Kernel("b", ops::ScaleOffsetSource(), {{"Input", "a"}},
               {{"scale", 1.0}, {"offset", 0.0}});
  graph.Output("b");
  HostImage<float> out(8, 8);
  const Status status = graph.Run({}, {{"b", &out}});
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("cycle"), std::string::npos)
      << status.message();
  EXPECT_NE(status.message().find("a"), std::string::npos);
  EXPECT_NE(status.message().find("b"), std::string::npos);
}

TEST(PipelineGraphTest, RejectsUndeclaredImage) {
  PipelineGraph graph;
  graph.Source("in", 16, 16);
  graph.Kernel("blur", Conv3(), {{"Input", "nowhere"}});
  graph.Output("blur");
  HostImage<float> in = MakeNoiseImage(16, 16, 1), out(16, 16);
  const Status status = graph.Run({{"in", &in}}, {{"blur", &out}});
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("nowhere"), std::string::npos);
  EXPECT_NE(status.message().find("blur"), std::string::npos);
}

TEST(PipelineGraphTest, RejectsDuplicateProducer) {
  PipelineGraph graph;
  graph.Source("in", 16, 16);
  graph.Kernel("x", Conv3(), {{"Input", "in"}});
  graph.Kernel("x", Conv3(), {{"Input", "in"}});  // same virtual image
  graph.Output("x");
  HostImage<float> in = MakeNoiseImage(16, 16, 1), out(16, 16);
  const Status status = graph.Run({{"in", &in}}, {{"x", &out}});
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("more than one"), std::string::npos);
}

TEST(PipelineGraphTest, RejectsUnboundSourceAndUndeclaredOutput) {
  PipelineGraph graph;
  graph.Source("in", 16, 16);
  graph.Kernel("blur", Conv3(), {{"Input", "in"}});
  graph.Output("blur");
  HostImage<float> in = MakeNoiseImage(16, 16, 1), out(16, 16);
  EXPECT_FALSE(graph.Run({}, {{"blur", &out}}).ok());  // source unbound
  // Binding an image that is not a declared output is an error too.
  EXPECT_FALSE(graph.Run({{"in", &in}}, {{"in", &out}}).ok());
  // Extent mismatch between declaration and binding.
  HostImage<float> small = MakeNoiseImage(8, 8, 2);
  EXPECT_FALSE(graph.Run({{"small", &small}, {"in", &small}}, {{"blur", &out}})
                   .ok());
}

TEST(PipelineGraphTest, DiamondExecutesEachProducerOnce) {
  // in -> left, in -> right, (left, right) -> merge. Point-wise merge over
  // two blurred branches; fusion disabled so the stage count is exact.
  PipelineGraph graph;
  graph.Source("in", 32, 32)
      .Kernel("left", Conv3(), {{"Input", "in"}})
      .Kernel("right", Conv3(BoundaryMode::kMirror), {{"Input", "in"}})
      .Kernel("merge", ops::PyramidDetailSource(),
              {{"U", "left"}, {"Fine", "right"}})
      .Output("merge");
  sim::TraceSink trace;
  GraphOptions options;
  options.fuse = compiler::FusionMode::kOff;
  options.run.trace = &trace;
  HostImage<float> in = MakeNoiseImage(32, 32, 3), out(32, 32);
  ASSERT_TRUE(graph.Run({{"in", &in}}, {{"merge", &out}}, options).ok());
  // Four declared stages, each run exactly once.
  EXPECT_EQ(trace.counter("graph.stages"), 4);
  EXPECT_EQ(graph.stage_count(), 4u);

  // A second run executes them again (stages double), reusing pooled
  // buffers instead of allocating.
  const long long allocs = trace.counter("bufpool.alloc");
  ASSERT_TRUE(graph.Run({{"in", &in}}, {{"merge", &out}}, options).ok());
  EXPECT_EQ(trace.counter("graph.stages"), 8);
  EXPECT_EQ(trace.counter("bufpool.alloc"), allocs);
  EXPECT_GT(trace.counter("bufpool.reuse"), 0);
  EXPECT_GT(graph.pool().reuse_count(), 0);
}

TEST(PipelineGraphTest, FusesPointwiseConsumerAndStaysBitIdentical) {
  // conv -> scale: with fusion the scale stage disappears into the conv
  // launch; the pixels must not change.
  const HostImage<float> in = MakeNoiseImage(48, 40, 11);
  HostImage<float> fused_out(48, 40), eager_out(48, 40);
  for (const bool fuse : {true, false}) {
    PipelineGraph graph;
    graph.Source("in", 48, 40)
        .Kernel("blur", Conv3(), {{"Input", "in"}})
        .Kernel("scaled", ops::ScaleOffsetSource(), {{"Input", "blur"}},
                {{"scale", 2.0}, {"offset", 0.25}})
        .Output("scaled");
    sim::TraceSink trace;
    GraphOptions options;
    options.fuse =
        fuse ? compiler::FusionMode::kAll : compiler::FusionMode::kOff;
    options.run.trace = &trace;
    HostImage<float>& out = fuse ? fused_out : eager_out;
    ASSERT_TRUE(graph.Run({{"in", &in}}, {{"scaled", &out}}, options).ok());
    if (fuse)
      EXPECT_EQ(trace.counter("graph.fused_edges"), 1);
    else
      EXPECT_EQ(trace.counter("graph.fused_edges"), 0);
  }
  EXPECT_EQ(MaxAbsDiff(fused_out, eager_out), 0.0);
}

TEST(PipelineGraphTest, FusesSiblingSobelsHorizontally) {
  // Two Sobel stages read the same input: one multi-output launch must
  // produce both gradients, bit-identical to the unfused graph.
  const HostImage<float> in = MakeNoiseImage(64, 48, 13);
  HostImage<float> gx[2] = {{64, 48}, {64, 48}}, gy[2] = {{64, 48}, {64, 48}};
  for (const bool fuse : {true, false}) {
    PipelineGraph graph;
    graph.Source("in", 64, 48)
        .Kernel("gx", ops::ConvolutionSource("sobel_x", 3, 3,
                                             ops::SobelMaskX(),
                                             BoundaryMode::kClamp),
                {{"Input", "in"}})
        .Kernel("gy", ops::ConvolutionSource("sobel_y", 3, 3,
                                             ops::SobelMaskY(),
                                             BoundaryMode::kClamp),
                {{"Input", "in"}})
        .Output("gx")
        .Output("gy");
    sim::TraceSink trace;
    std::vector<compiler::CandidateDecision> decisions;
    GraphOptions options;
    options.fuse =
        fuse ? compiler::FusionMode::kHorizontal : compiler::FusionMode::kOff;
    options.explain = &decisions;
    options.run.trace = &trace;
    ASSERT_TRUE(graph
                    .Run({{"in", &in}},
                         {{"gx", &gx[fuse]}, {"gy", &gy[fuse]}}, options)
                    .ok());
    if (fuse) {
      EXPECT_EQ(trace.counter("graph.fused.horizontal"), 1);
      EXPECT_EQ(trace.counter("graph.fused_edges"), 1);
      EXPECT_EQ(trace.counter("graph.stages"), 2);  // source + fused pair
      // The accepted decision is visible through the explain sink.
      bool accepted = false;
      for (const compiler::CandidateDecision& d : decisions)
        accepted |= d.accepted && d.kind == compiler::FuseKind::kHorizontal;
      EXPECT_TRUE(accepted);
    } else {
      EXPECT_EQ(trace.counter("graph.fused_edges"), 0);
    }
  }
  EXPECT_EQ(MaxAbsDiff(gx[0], gx[1]), 0.0);
  EXPECT_EQ(MaxAbsDiff(gy[0], gy[1]), 0.0);
}

TEST(PipelineGraphTest, FusesHaloProducerIntoLocalOperator) {
  // gaussian -> laplacian: the point/halo planner inlines the producer into
  // the consuming convolution with halo recompute; pixels must not change.
  const HostImage<float> in = MakeAngiogramPhantom(64, 64, 0.02f, 4);
  HostImage<float> out[2] = {{64, 64}, {64, 64}};
  for (const bool fuse : {true, false}) {
    PipelineGraph graph;
    graph.Source("in", 64, 64)
        .Kernel("smooth",
                ops::GaussianConvolveSource(3, 1.0f, BoundaryMode::kMirror),
                {{"Input", "in"}})
        .Kernel("edges",
                ops::ConvolutionSource("laplacian", 3, 3,
                                       ops::LaplacianMask3(),
                                       BoundaryMode::kMirror),
                {{"Input", "smooth"}})
        .Output("edges");
    sim::TraceSink trace;
    GraphOptions options;
    options.fuse =
        fuse ? compiler::FusionMode::kHalo : compiler::FusionMode::kOff;
    options.run.trace = &trace;
    ASSERT_TRUE(graph.Run({{"in", &in}}, {{"edges", &out[fuse]}}, options).ok());
    if (fuse) {
      EXPECT_EQ(trace.counter("graph.fused.halo"), 1);
      EXPECT_EQ(trace.counter("graph.stages"), 2);  // source + fused kernel
    } else {
      EXPECT_EQ(trace.counter("graph.fused_edges"), 0);
    }
  }
  EXPECT_EQ(MaxAbsDiff(out[0], out[1]), 0.0);
}

TEST(PipelineGraphTest, DoesNotFuseMultiConsumerOrOutputImages) {
  // "blur" feeds two consumers and is itself an output — neither edge may
  // fuse it away.
  PipelineGraph graph;
  graph.Source("in", 32, 32)
      .Kernel("blur", Conv3(), {{"Input", "in"}})
      .Kernel("a", ops::ScaleOffsetSource(), {{"Input", "blur"}},
              {{"scale", 2.0}, {"offset", 0.0}})
      .Kernel("b", ops::ScaleOffsetSource(), {{"Input", "blur"}},
              {{"scale", 3.0}, {"offset", 0.0}})
      .Output("a")
      .Output("b")
      .Output("blur");
  sim::TraceSink trace;
  GraphOptions options;
  options.run.trace = &trace;
  HostImage<float> in = MakeNoiseImage(32, 32, 5);
  HostImage<float> a(32, 32), b(32, 32), blur(32, 32);
  ASSERT_TRUE(graph
                  .Run({{"in", &in}},
                       {{"a", &a}, {"b", &b}, {"blur", &blur}}, options)
                  .ok());
  EXPECT_EQ(trace.counter("graph.fused_edges"), 0);
  // Sanity: a = 2*blur, b = 3*blur at every pixel.
  for (int y = 0; y < 32; ++y)
    for (int x = 0; x < 32; ++x) {
      EXPECT_EQ(a(x, y), 2.0f * blur(x, y));
      EXPECT_EQ(b(x, y), 3.0f * blur(x, y));
    }
}

TEST(PipelineGraphTest, MultiresBitIdenticalToEagerAcrossAllBoundaryModes) {
  const HostImage<float> in = MakeAngiogramPhantom(64, 64, 0.02f, 2);
  const std::vector<float> gains = {2.0f, 1.5f};
  for (const BoundaryMode mode :
       {BoundaryMode::kUndefined, BoundaryMode::kClamp, BoundaryMode::kRepeat,
        BoundaryMode::kMirror, BoundaryMode::kConstant}) {
    const HostImage<float> eager =
        ops::MultiresolutionFilterEager(in, 2, gains, mode);
    sim::TraceSink trace;
    GraphOptions options;
    options.run.trace = &trace;
    const Result<HostImage<float>> graph =
        ops::MultiresolutionFilterGraph(in, 2, gains, mode, options);
    ASSERT_TRUE(graph.ok()) << graph.status().ToString();
    EXPECT_EQ(MaxAbsDiff(eager, graph.value()), 0.0)
        << "mode " << static_cast<int>(mode);
    EXPECT_GT(trace.counter("graph.fused_edges"), 0);
    EXPECT_GT(trace.counter("bufpool.reuse"), 0);
  }
}

TEST(PipelineGraphTest, SimulatorExecutorMatchesHostExecutor) {
  const HostImage<float> in = MakeNoiseImage(64, 64, 9);
  HostImage<float> host_out(64, 64), sim_out(64, 64);
  for (const auto executor :
       {GraphOptions::Executor::kHost, GraphOptions::Executor::kSimulator}) {
    PipelineGraph graph;
    graph.Source("in", 64, 64)
        .Kernel("blur", Conv3(), {{"Input", "in"}})
        .Output("blur");
    GraphOptions options;
    options.executor = executor;
    HostImage<float>& out =
        executor == GraphOptions::Executor::kHost ? host_out : sim_out;
    const Status run = graph.Run({{"in", &in}}, {{"blur", &out}}, options);
    ASSERT_TRUE(run.ok()) << run.ToString();
  }
  EXPECT_EQ(MaxAbsDiff(host_out, sim_out), 0.0);
}

TEST(RunOptionsTest, ChainableSettersCompose) {
  sim::TraceSink trace;
  const runtime::RunOptions options =
      runtime::RunOptions()
          .with_backend(ast::Backend::kOpenCL)
          .with_scratchpad()
          .with_device(hw::TeslaC2050())
          .with_trace(&trace)
          .with_sim_engine(sim::ExecEngine::kAst);
  EXPECT_EQ(options.codegen.backend, ast::Backend::kOpenCL);
  EXPECT_TRUE(options.codegen.use_scratchpad);
  EXPECT_EQ(options.trace, &trace);
  ASSERT_TRUE(options.sim.has_value());
  EXPECT_EQ(options.sim_options().engine, sim::ExecEngine::kAst);
  // Unset sim defers to the process-wide default.
  EXPECT_EQ(runtime::RunOptions().sim_options().engine,
            sim::DefaultSimulatorOptions().engine);
}

TEST(RunOptionsTest, MakeCompileOptionsMapsFields) {
  sim::TraceSink trace;
  runtime::RunOptions options;
  options.forced_config = hw::KernelConfig{32, 4};
  options.trace = &trace;
  const compiler::CompileOptions copts =
      runtime::MakeCompileOptions(options, 640, 480);
  EXPECT_EQ(copts.image_width, 640);
  EXPECT_EQ(copts.image_height, 480);
  ASSERT_TRUE(copts.forced_config.has_value());
  EXPECT_EQ(copts.forced_config->block_x, 32);
  EXPECT_EQ(copts.trace, &trace);
  EXPECT_NE(copts.cache, nullptr);  // defaults to the global cache
}

}  // namespace
}  // namespace hipacc
