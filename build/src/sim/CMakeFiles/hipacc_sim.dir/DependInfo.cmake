
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/interpreter.cpp" "src/sim/CMakeFiles/hipacc_sim.dir/interpreter.cpp.o" "gcc" "src/sim/CMakeFiles/hipacc_sim.dir/interpreter.cpp.o.d"
  "/root/repo/src/sim/memory.cpp" "src/sim/CMakeFiles/hipacc_sim.dir/memory.cpp.o" "gcc" "src/sim/CMakeFiles/hipacc_sim.dir/memory.cpp.o.d"
  "/root/repo/src/sim/simulator.cpp" "src/sim/CMakeFiles/hipacc_sim.dir/simulator.cpp.o" "gcc" "src/sim/CMakeFiles/hipacc_sim.dir/simulator.cpp.o.d"
  "/root/repo/src/sim/timing.cpp" "src/sim/CMakeFiles/hipacc_sim.dir/timing.cpp.o" "gcc" "src/sim/CMakeFiles/hipacc_sim.dir/timing.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/hipacc_support.dir/DependInfo.cmake"
  "/root/repo/build/src/ast/CMakeFiles/hipacc_ast.dir/DependInfo.cmake"
  "/root/repo/build/src/hwmodel/CMakeFiles/hipacc_hwmodel.dir/DependInfo.cmake"
  "/root/repo/build/src/codegen/CMakeFiles/hipacc_codegen.dir/DependInfo.cmake"
  "/root/repo/build/src/dsl/CMakeFiles/hipacc_dsl.dir/DependInfo.cmake"
  "/root/repo/build/src/image/CMakeFiles/hipacc_image.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
