// Point-wise fusion: source-level legality checks plus end-to-end
// equivalence — a fused producer→consumer chain must compute bit-identical
// pixels to running the two kernels separately.
#include "compiler/fusion.hpp"

#include <gtest/gtest.h>

#include "compiler/driver.hpp"
#include "compiler/executable.hpp"
#include "image/metrics.hpp"
#include "image/synthetic.hpp"
#include "ops/kernel_sources.hpp"

namespace hipacc {
namespace {

using compiler::ApplyFusion;
using compiler::FusePointwise;

frontend::KernelSource Producer() {
  return ops::GaussianSource(3, 1.0f, ast::BoundaryMode::kClamp);
}

TEST(FusePointwiseTest, InlinesConsumerIntoProducer) {
  const frontend::KernelSource producer = Producer();
  const frontend::KernelSource consumer = ops::ScaleOffsetSource();
  Result<frontend::KernelSource> fused =
      FusePointwise(producer, consumer, "Input");
  ASSERT_TRUE(fused.ok()) << fused.status().ToString();
  EXPECT_EQ(fused.value().name, producer.name + "_" + consumer.name);
  // The consumer's read was substituted: no Input(...) read remains from
  // the consumer body, and the producer's output write became a local.
  EXPECT_EQ(fused.value().accessors.size(), producer.accessors.size());
  EXPECT_NE(fused.value().body.find("float fused_Input"), std::string::npos);
  // Consumer params ride along.
  ASSERT_EQ(fused.value().params.size(), 2u);
  EXPECT_EQ(fused.value().params[0].name, "scale");
  EXPECT_EQ(fused.value().params[1].name, "offset");
}

TEST(FusePointwiseTest, RejectsWindowedConsumer) {
  // A consumer with a real window needs producer values at neighbouring
  // points; inlining cannot provide them.
  const Result<frontend::KernelSource> fused = FusePointwise(
      Producer(), ops::GaussianSource(3, 1.0f, ast::BoundaryMode::kClamp),
      "Input");
  ASSERT_FALSE(fused.ok());
  EXPECT_NE(fused.status().message().find("point operators"),
            std::string::npos);
}

TEST(FusePointwiseTest, RejectsUnknownAccessor) {
  const Result<frontend::KernelSource> fused =
      FusePointwise(Producer(), ops::ScaleOffsetSource(), "NoSuch");
  ASSERT_FALSE(fused.ok());
  EXPECT_NE(fused.status().message().find("NoSuch"), std::string::npos);
}

TEST(FusePointwiseTest, RejectsNameCollision) {
  frontend::KernelSource consumer = ops::ScaleOffsetSource();
  consumer.params[0].name = "sum";  // collides with the producer's local
  const Result<frontend::KernelSource> fused =
      FusePointwise(Producer(), consumer, "Input");
  ASSERT_FALSE(fused.ok());
  EXPECT_NE(fused.status().message().find("sum"), std::string::npos);
}

/// Runs `kernel` over `input` through the full compile + simulate path.
HostImage<float> RunKernel(const frontend::KernelSource& kernel,
                           const HostImage<float>& input,
                           const std::vector<std::pair<std::string, double>>&
                               scalars,
                           const std::vector<compiler::FusionRequest>& chain =
                               {}) {
  compiler::CompileOptions copts;
  copts.image_width = input.width();
  copts.image_height = input.height();
  copts.fusion = chain;
  Result<compiler::CompiledKernel> compiled = compiler::Compile(kernel, copts);
  EXPECT_TRUE(compiled.ok()) << compiled.status().ToString();
  dsl::Image<float> in(input.width(), input.height());
  dsl::Image<float> out(input.width(), input.height());
  in.CopyFrom(input);
  runtime::BindingSet bindings;
  bindings.Input(compiled.value().decl.accessors.front().name, in);
  bindings.Output(out);
  for (const auto& [name, value] : scalars) bindings.Scalar(name, value);
  compiler::SimulatedExecutable exe(std::move(compiled).take(),
                                    hw::TeslaC2050());
  const Result<sim::LaunchStats> stats = exe.Run(bindings);
  EXPECT_TRUE(stats.ok()) << stats.status().ToString();
  return out.getData();
}

TEST(FusionEquivalenceTest, FusedChainMatchesSeparateLaunchesBitExact) {
  const HostImage<float> input = MakeNoiseImage(64, 48, 7);
  const frontend::KernelSource conv = Producer();
  const frontend::KernelSource scale = ops::ScaleOffsetSource();

  // Separate: conv, then scale over the conv output.
  const HostImage<float> blurred = RunKernel(conv, input, {});
  const HostImage<float> separate =
      RunKernel(scale, blurred, {{"scale", 2.0}, {"offset", 0.25}});

  // Fused through CompileOptions::fusion (the pass-manager route the graph
  // runtime uses).
  const HostImage<float> fused =
      RunKernel(conv, input, {{"scale", 2.0}, {"offset", 0.25}},
                {compiler::FusionRequest{compiler::FuseKind::kPoint, scale, "Input"}});

  EXPECT_EQ(MaxAbsDiff(separate, fused), 0.0);
}

TEST(ApplyFusionTest, ChainsStepsInOrder) {
  const frontend::KernelSource threshold = ops::ThresholdSource();
  const frontend::KernelSource scale = ops::ScaleOffsetSource();

  const Result<frontend::KernelSource> fused = ApplyFusion(
      Producer(), {compiler::FusionRequest{compiler::FuseKind::kPoint, scale, "Input"}});
  ASSERT_TRUE(fused.ok()) << fused.status().ToString();
  // One more level: threshold reads "Input", but the fused kernel's
  // remaining accessor is still the producer's "Input" window — a second
  // ApplyFusion step would need a matching accessor; verify the error is
  // clean rather than silent.
  const Result<frontend::KernelSource> again = FusePointwise(
      fused.value(), threshold, "Missing");
  EXPECT_FALSE(again.ok());
}

}  // namespace
}  // namespace hipacc
