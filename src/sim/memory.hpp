// Simulated device memory system: buffer bindings plus the models for
// coalescing, the texture / L1 caches, constant broadcast, and shared-memory
// bank conflicts. The functional side is trivial (host memory); the value of
// this module is the per-warp transaction accounting feeding the timing
// model.
#pragma once

#include <string>
#include <vector>

#include "hwmodel/device_spec.hpp"
#include "sim/metrics.hpp"
#include "support/status.hpp"

namespace hipacc::sim {

/// A device buffer bound to a kernel launch (input image, output image, or
/// a dynamic mask in global memory).
struct BufferBinding {
  std::string name;
  float* data = nullptr;
  int width = 0;
  int height = 0;
  int stride = 0;  ///< padded row stride in elements
  bool writable = false;
};

/// Small LRU cache over memory segments, used for both the texture cache and
/// Fermi's L1 for global loads. Capacity is in segments. Stored as parallel
/// flat arrays (tens of entries): a linear scan beats a tree for lookups of
/// this size, and eviction scanned linearly for the oldest stamp anyway.
class SegmentCache {
 public:
  SegmentCache() = default;
  explicit SegmentCache(int capacity_segments)
      : capacity_(capacity_segments > 0 ? capacity_segments : 1) {}

  /// Touches a segment; returns true on hit.
  bool Access(std::uint64_t segment);

  void Clear() {
    segments_.clear();
    stamps_.clear();
    stamp_ = 0;
  }

 private:
  int capacity_ = 64;
  std::vector<std::uint64_t> segments_;
  std::vector<std::uint64_t> stamps_;  // last use, parallel to segments_
  std::uint64_t stamp_ = 0;
};

/// Per-warp memory-access accounting against one device model. A fresh
/// instance is used per thread block (caches are treated as block-private —
/// a coarse but adequate approximation for sampled simulation).
class MemoryModel {
 public:
  explicit MemoryModel(const hw::DeviceSpec& device);

  /// One warp-level global read/write: `addrs` holds the element addresses
  /// (linear element index into the buffer) of the active lanes.
  void GlobalAccess(const std::vector<std::uint64_t>& addrs, bool is_write,
                    Metrics* metrics);

  /// One warp-level read through the texture path.
  void TextureAccess(const std::vector<std::uint64_t>& addrs, Metrics* metrics);

  /// One warp-level constant-memory read.
  void ConstantAccess(const std::vector<std::uint64_t>& addrs, Metrics* metrics);

  /// One warp-level scratchpad access; addresses are element offsets within
  /// the tile. Conflict degree = max lanes hitting one bank with distinct
  /// addresses (same-address lanes broadcast).
  void SharedAccess(const std::vector<std::uint64_t>& addrs, Metrics* metrics);

 private:
  std::uint64_t Segment(std::uint64_t element_addr) const {
    // Transaction sizes are powers of two on every modelled device, so the
    // division folds to a shift; the divide remains as a fallback for
    // hypothetical non-power-of-two specs.
    const std::uint64_t bytes = element_addr * sizeof(float);
    return seg_shift_ >= 0
               ? bytes >> seg_shift_
               : bytes / static_cast<std::uint64_t>(device_.mem_transaction_bytes);
  }

  const hw::DeviceSpec& device_;
  int seg_shift_ = -1;
  SegmentCache tex_cache_;
  SegmentCache l1_cache_;
  // Reused per-call scratch for the sort+unique coalescing pass. The warp's
  // distinct segments are produced in ascending order, matching the
  // iteration order of the std::set this replaces, so the LRU caches see
  // the exact same access sequence.
  std::vector<std::uint64_t> scratch_;
};

}  // namespace hipacc::sim
