file(REMOVE_RECURSE
  "CMakeFiles/hipacc-compile.dir/hipacc_compile.cpp.o"
  "CMakeFiles/hipacc-compile.dir/hipacc_compile.cpp.o.d"
  "hipacc-compile"
  "hipacc-compile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hipacc-compile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
