#include "hwmodel/config.hpp"

#include <algorithm>

#include "support/status.hpp"

namespace hipacc::hw {
namespace {
int CeilDiv(int a, int b) { return (a + b - 1) / b; }
}  // namespace

GridDim ComputeGrid(const KernelConfig& config, int width, int height,
                    int ppt) {
  HIPACC_CHECK(config.block_x > 0 && config.block_y > 0 && width > 0 &&
               height > 0 && ppt > 0);
  return {CeilDiv(width, config.block_x),
          CeilDiv(height, config.block_y * ppt)};
}

ast::Region RegionGrid::RegionOf(int bx_idx, int by_idx) const noexcept {
  const bool left = bx_idx < band_left;
  const bool right = bx_idx >= grid.blocks_x - band_right;
  const bool top = by_idx < band_top;
  const bool bottom = by_idx >= grid.blocks_y - band_bottom;
  // Listing 8 checks corner regions first, so a block in both bands gets the
  // corner variant (which carries both guard sets).
  if (top && left) return ast::Region::kTopLeft;
  if (top && right) return ast::Region::kTopRight;
  if (bottom && left) return ast::Region::kBottomLeft;
  if (bottom && right) return ast::Region::kBottomRight;
  if (top) return ast::Region::kTop;
  if (bottom) return ast::Region::kBottom;
  if (left) return ast::Region::kLeft;
  if (right) return ast::Region::kRight;
  return ast::Region::kInterior;
}

long long RegionGrid::BorderThreads() const noexcept {
  const long long interior_x =
      std::max(0, grid.blocks_x - band_left - band_right);
  const long long interior_y =
      std::max(0, grid.blocks_y - band_top - band_bottom);
  const long long border_blocks = grid.total() - interior_x * interior_y;
  return border_blocks * config.threads();
}

RegionGrid ComputeRegionGrid(const KernelConfig& config, int width, int height,
                             ast::WindowExtent window, int ppt) {
  RegionGrid rg;
  rg.config = config;
  rg.grid = ComputeGrid(config, width, height, ppt);
  // Pixel rows covered by one block row: with PPT each thread produces ppt
  // vertically-adjacent outputs.
  const int rows_per_block = config.block_y * ppt;

  // A block column needs lo_x guards if any of its pixels lies within
  // window.half_x of the left edge; the right band additionally absorbs the
  // partial trailing block (its threads past the image width must not read
  // unguarded either — the generated kernel bounds them, but grouping them
  // with the guarded band keeps the dispatch constants simple, mirroring the
  // generated code's use of gridDim-based constants).
  if (window.half_x > 0) {
    rg.band_left = std::min(rg.grid.blocks_x, CeilDiv(window.half_x, config.block_x));
    // First block column i whose pixels reach x >= width - half_x, i.e. the
    // first i with (i+1)*block_x >= width - half_x + 1.
    const int first_right =
        std::max(0, CeilDiv(width - window.half_x + 1, config.block_x) - 1);
    rg.band_right = std::min(rg.grid.blocks_x, rg.grid.blocks_x - first_right);
  }
  if (window.half_y > 0) {
    rg.band_top = std::min(rg.grid.blocks_y, CeilDiv(window.half_y, rows_per_block));
    const int first_bottom =
        std::max(0, CeilDiv(height - window.half_y + 1, rows_per_block) - 1);
    rg.band_bottom = std::min(rg.grid.blocks_y, rg.grid.blocks_y - first_bottom);
  }
  // A block inside the left band whose pixels also reach within half_x of
  // the right edge would need lo_x AND hi_x guards at once (ditto for y).
  rg.overlap_x = window.half_x > 0 &&
                 rg.band_left * config.block_x + window.half_x > width;
  rg.overlap_y = window.half_y > 0 &&
                 rg.band_top * rows_per_block + window.half_y > height;
  return rg;
}

std::vector<KernelConfig> EnumerateConfigs(const DeviceSpec& device) {
  std::vector<KernelConfig> configs;
  for (int threads = device.simd_width; threads <= device.max_threads_per_block;
       threads += device.simd_width) {
    for (int bx = std::max(1, device.simd_width / 4); bx <= threads; bx *= 2) {
      if (threads % bx != 0) continue;
      configs.push_back({bx, threads / bx});
    }
  }
  return configs;
}

}  // namespace hipacc::hw
