// Configuration exploration (Section V-D) and retargeting: the exploration
// must cover all valid configurations, agree with the heuristic's pick, and
// Retarget must re-select per device.
#include <gtest/gtest.h>

#include "compiler/explore.hpp"
#include "ops/kernel_sources.hpp"

namespace hipacc {
namespace {

compiler::CompiledKernel CompileBilateral(const hw::DeviceSpec& device,
                                          int n) {
  frontend::KernelSource source =
      ops::BilateralMaskSource(1, ast::BoundaryMode::kClamp);
  compiler::CompileOptions options;
  options.device = device;
  options.image_width = n;
  options.image_height = n;
  auto compiled = compiler::Compile(source, options);
  EXPECT_TRUE(compiled.ok()) << compiled.status().ToString();
  return std::move(compiled).take();
}

TEST(ExploreTest, CoversConfigurationSpace) {
  const int n = 512;
  const hw::DeviceSpec device = hw::TeslaC2050();
  const compiler::CompiledKernel kernel = CompileBilateral(device, n);
  dsl::Image<float> in(n, n), out(n, n);
  runtime::BindingSet bindings;
  bindings.Input("Input", in).Output(out).Scalar("sigma_d", 1).Scalar(
      "sigma_r", 4);
  auto points = compiler::ExploreConfigurations(kernel, device, bindings);
  ASSERT_TRUE(points.ok()) << points.status().ToString();
  EXPECT_GT(points.value().size(), 50u);
  // Sorted by thread count, then block_x; all times positive; multiple
  // tilings per thread count (Figure 4's "multiple points").
  int tilings_of_256 = 0;
  for (size_t i = 0; i < points.value().size(); ++i) {
    const auto& p = points.value()[i];
    EXPECT_GT(p.ms, 0.0);
    EXPECT_GT(p.occupancy, 0.0);
    if (p.config.threads() == 256) ++tilings_of_256;
    if (i > 0) {
      const auto& prev = points.value()[i - 1];
      EXPECT_LE(prev.config.threads(), p.config.threads());
    }
  }
  EXPECT_GE(tilings_of_256, 3);
}

TEST(ExploreTest, HeuristicPickNearOptimum) {
  const int n = 512;
  const hw::DeviceSpec device = hw::TeslaC2050();
  const compiler::CompiledKernel kernel = CompileBilateral(device, n);
  dsl::Image<float> in(n, n), out(n, n);
  runtime::BindingSet bindings;
  bindings.Input("Input", in).Output(out).Scalar("sigma_d", 1).Scalar(
      "sigma_r", 4);
  auto points = compiler::ExploreConfigurations(kernel, device, bindings);
  ASSERT_TRUE(points.ok());
  double best = 1e30, picked = -1.0;
  for (const auto& p : points.value()) {
    best = std::min(best, p.ms);
    if (p.config == kernel.config.config) picked = p.ms;
  }
  ASSERT_GT(picked, 0.0) << "heuristic pick missing from the exploration";
  // "the configurations selected by our heuristic are typically within 10%
  // of the best configuration" (Section VI-B).
  EXPECT_LE(picked / best, 1.10);
}

TEST(RetargetTest, ReSelectsPerDevice) {
  const int n = 1024;
  const compiler::CompiledKernel on_tesla =
      CompileBilateral(hw::TeslaC2050(), n);

  compiler::CompileOptions amd_options;
  amd_options.device = hw::RadeonHd5870();
  amd_options.image_width = n;
  amd_options.image_height = n;
  auto on_amd = compiler::Retarget(on_tesla, amd_options);
  ASSERT_TRUE(on_amd.ok()) << on_amd.status().ToString();
  // AMD wavefronts are 64 wide; the border tiling uses the SIMD width in x.
  EXPECT_EQ(on_amd.value().config.config.block_x, 64);
  EXPECT_LE(on_amd.value().config.config.threads(), 256);
}

TEST(RetargetTest, BackendSwitchChangesEmittedSource) {
  const compiler::CompiledKernel cuda = CompileBilateral(hw::TeslaC2050(), 256);
  EXPECT_NE(cuda.source.find("__global__"), std::string::npos);

  compiler::CompileOptions opencl_options;
  opencl_options.codegen.backend = ast::Backend::kOpenCL;
  opencl_options.device = hw::TeslaC2050();
  opencl_options.image_width = 256;
  opencl_options.image_height = 256;
  auto opencl = compiler::Retarget(cuda, opencl_options);
  ASSERT_TRUE(opencl.ok());
  EXPECT_NE(opencl.value().source.find("__kernel"), std::string::npos);
  EXPECT_EQ(opencl.value().source.find("__global__"), std::string::npos);
}

TEST(CompileTest, ForcedInvalidConfigIsLaunchError) {
  frontend::KernelSource source =
      ops::BilateralMaskSource(1, ast::BoundaryMode::kClamp);
  compiler::CompileOptions options;
  options.device = hw::RadeonHd5870();  // 256-thread block limit
  options.image_width = options.image_height = 512;
  options.forced_config = hw::KernelConfig{512, 1};
  const auto compiled = compiler::Compile(source, options);
  ASSERT_FALSE(compiled.ok());
  EXPECT_EQ(compiled.status().code(), StatusCode::kResourceExhausted);
}

}  // namespace
}  // namespace hipacc
