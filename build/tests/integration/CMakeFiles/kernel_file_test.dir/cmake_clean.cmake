file(REMOVE_RECURSE
  "CMakeFiles/kernel_file_test.dir/kernel_file_test.cpp.o"
  "CMakeFiles/kernel_file_test.dir/kernel_file_test.cpp.o.d"
  "kernel_file_test"
  "kernel_file_test.pdb"
  "kernel_file_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kernel_file_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
