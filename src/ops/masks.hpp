// Filter-mask coefficient builders for the built-in operators.
#pragma once

#include <vector>

namespace hipacc::ops {

/// Normalised 2D Gaussian of odd `size` with standard deviation `sigma`
/// (size*size row-major coefficients summing to 1).
std::vector<float> GaussianMask2D(int size, float sigma);

/// Normalised 1D Gaussian (for separable implementations).
std::vector<float> GaussianMask1D(int size, float sigma);

/// Bilateral closeness mask: exp(-(x^2+y^2) / (2 sigma_d^2)) over the
/// (4*sigma_d+1)^2 window — the paper's CMask (Listing 4), unnormalised.
std::vector<float> BilateralClosenessMask(int sigma_d);

/// 3x3 Sobel derivative masks.
std::vector<float> SobelMaskX();
std::vector<float> SobelMaskY();

/// 3x3 Laplacian (4-neighbour).
std::vector<float> LaplacianMask3();

/// size x size box (mean) filter, coefficients 1/size^2.
std::vector<float> BoxMask(int size);

}  // namespace hipacc::ops
