// Expression nodes of the kernel IR. The IR has two layers that share one
// node hierarchy:
//
//  * DSL level — what the frontend parses / the builder constructs from a
//    Kernel description: accessor reads `Input(dx, dy)`, mask reads
//    `CMask(xf, yf)`, `output()` writes, iteration-space coordinates.
//  * Device level — what the lowering passes produce: explicit thread/block
//    indices, memory reads tagged with a MemSpace and boundary-guard set.
//
// Nodes are immutable after construction by convention; passes rebuild.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "ast/metadata.hpp"
#include "ast/type.hpp"

namespace hipacc::ast {

enum class ExprKind {
  kIntLit,
  kFloatLit,
  kBoolLit,
  kVarRef,
  kUnary,
  kBinary,
  kConditional,  // c ? a : b
  kCall,         // math builtin call
  kCast,
  // --- DSL level ---
  kAccessorRead,  // Input(dx, dy) or Input()
  kMaskRead,      // CMask(xf, yf)
  kIterIndex,     // x() / y(): coordinate within the iteration space
  // --- device level ---
  kThreadIndex,   // threadIdx / blockIdx / blockDim / gridDim .x/.y
  kMemRead,       // lowered image read from a concrete memory space
};

enum class UnaryOp { kNeg, kNot };

enum class BinaryOp {
  kAdd, kSub, kMul, kDiv, kMod,
  kLt, kLe, kGt, kGe, kEq, kNe,
  kAnd, kOr,
};

/// C spelling of the operator ("+", "<=", "&&", ...).
const char* to_string(BinaryOp op) noexcept;
const char* to_string(UnaryOp op) noexcept;
/// True for <, <=, >, >=, ==, !=, &&, || (result type bool).
bool IsComparison(BinaryOp op) noexcept;

struct Expr;
using ExprPtr = std::shared_ptr<const Expr>;

/// Which special index a ThreadIndex node denotes.
enum class ThreadIndexKind {
  kThreadIdxX, kThreadIdxY,
  kBlockIdxX, kBlockIdxY,
  kBlockDimX, kBlockDimY,
  kGridDimX, kGridDimY,
  kGlobalIdX, kGlobalIdY,  // gid = blockIdx*blockDim + threadIdx
  kImageW, kImageH,        // launch image extent (PPT write guards)
};

const char* to_string(ThreadIndexKind kind) noexcept;

/// A single IR expression node. Fields are populated per `kind`; unused
/// fields stay default. A tagged struct keeps the interpreter's dispatch
/// simple and cache-friendly compared with a virtual hierarchy.
struct Expr {
  ExprKind kind;
  ScalarType type = ScalarType::kFloat;

  // Literals.
  long long int_value = 0;
  double float_value = 0.0;
  bool bool_value = false;

  // kVarRef: variable / parameter name. kCall: callee. kAccessorRead /
  // kMaskRead / kMemRead: accessor, mask, or buffer name.
  std::string name;

  UnaryOp unary_op = UnaryOp::kNeg;
  BinaryOp binary_op = BinaryOp::kAdd;

  // Operands: unary/cast use args[0]; binary uses args[0..1]; conditional
  // uses args[0..2] (cond, then, else); calls use all; accessor/mask/mem
  // reads use args[0..1] as (x, y) offsets or absolute coordinates.
  std::vector<ExprPtr> args;

  ThreadIndexKind thread_index = ThreadIndexKind::kThreadIdxX;
  bool is_y = false;  // for kIterIndex: false = x(), true = y()

  // kMemRead only: target memory space and the boundary guards this read
  // must perform in the current region (lowered per-region).
  MemSpace space = MemSpace::kGlobal;
  BoundaryMode boundary = BoundaryMode::kUndefined;
  RegionChecks checks;
  float constant_value = 0.0f;  // returned by kConstant boundary handling
};

// ---- Factory helpers ------------------------------------------------------

ExprPtr IntLit(long long value);
ExprPtr FloatLit(double value);
ExprPtr BoolLit(bool value);
ExprPtr VarRef(std::string name, ScalarType type);
ExprPtr Unary(UnaryOp op, ExprPtr operand);
ExprPtr Binary(BinaryOp op, ExprPtr lhs, ExprPtr rhs);
ExprPtr Conditional(ExprPtr cond, ExprPtr then_expr, ExprPtr else_expr);
ExprPtr Call(std::string callee, std::vector<ExprPtr> args, ScalarType type);
ExprPtr Cast(ScalarType type, ExprPtr operand);
/// Accessor read with offsets; pass IntLit(0) twice for the center pixel.
ExprPtr AccessorRead(std::string accessor, ExprPtr dx, ExprPtr dy);
ExprPtr MaskRead(std::string mask, ExprPtr x, ExprPtr y);
ExprPtr IterIndex(bool is_y);
ExprPtr ThreadIndex(ThreadIndexKind kind);
/// Device-level memory read at absolute coordinates (x, y).
ExprPtr MemRead(MemSpace space, std::string buffer, ExprPtr x, ExprPtr y,
                BoundaryMode boundary, RegionChecks checks,
                float constant_value = 0.0f);

// ---- Convenience for building arithmetic ---------------------------------

inline ExprPtr operator+(ExprPtr a, ExprPtr b) { return Binary(BinaryOp::kAdd, std::move(a), std::move(b)); }
inline ExprPtr operator-(ExprPtr a, ExprPtr b) { return Binary(BinaryOp::kSub, std::move(a), std::move(b)); }
inline ExprPtr operator*(ExprPtr a, ExprPtr b) { return Binary(BinaryOp::kMul, std::move(a), std::move(b)); }
inline ExprPtr operator/(ExprPtr a, ExprPtr b) { return Binary(BinaryOp::kDiv, std::move(a), std::move(b)); }

}  // namespace hipacc::ast
