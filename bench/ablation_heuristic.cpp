// Ablation: Algorithm 2's configuration choice vs the exploration optimum
// across kernels and devices — quantifying the paper's "typically within
// 10% of the best configuration" claim (Section VI-B).
#include <cstdio>

#include "compiler/explore.hpp"
#include "common/table.hpp"
#include "hwmodel/device_db.hpp"
#include "ops/kernel_sources.hpp"
#include "ops/masks.hpp"


using namespace hipacc;

namespace {

void Evaluate(const char* label, const frontend::KernelSource& source,
              const hw::DeviceSpec& device, int n,
              const runtime::BindingSet& base_bindings) {
  compiler::CompileOptions copts;
  copts.device = device;
  copts.image_width = n;
  copts.image_height = n;
  Result<compiler::CompiledKernel> compiled = compiler::Compile(source, copts);
  if (!compiled.ok()) {
    std::printf("%-24s %-16s compile error: %s\n", label, device.name.c_str(),
                compiled.status().ToString().c_str());
    return;
  }
  const compiler::CompiledKernel& kernel = compiled.value();
  Result<std::vector<compiler::ExplorePoint>> points =
      compiler::ExploreConfigurations(kernel, device, base_bindings);
  if (!points.ok() || points.value().empty()) {
    std::printf("%-24s %-16s exploration failed\n", label, device.name.c_str());
    return;
  }
  const compiler::ExplorePoint* best = nullptr;
  const compiler::ExplorePoint* picked = nullptr;
  for (const auto& p : points.value()) {
    if (!best || p.ms < best->ms) best = &p;
    if (p.config == kernel.config.config) picked = &p;
  }
  std::printf("%-24s %-16s pick %4dx%-3d %8.2f ms  best %4dx%-3d %8.2f ms  "
              "gap %5.1f%%\n",
              label, device.name.c_str(), kernel.config.config.block_x,
              kernel.config.config.block_y, picked ? picked->ms : -1.0,
              best->config.block_x, best->config.block_y, best->ms,
              picked ? 100.0 * (picked->ms / best->ms - 1.0) : -1.0);
}

}  // namespace

int main(int argc, char** argv) {
  hipacc::support::CliParser cli =
      hipacc::bench::MakeBenchCli("ablation_heuristic", "Ablation: Algorithm 2 heuristic vs exhaustive search");
  if (const int code = cli.HandleArgs(argc, argv); code >= 0) return code;

  const int n = 2048;
  std::printf("Ablation: Algorithm 2 vs exploration optimum (%dx%d images, "
              "modelled times).\n\n", n, n);
  dsl::Image<float> in(n, n), out(n, n);

  for (const hw::DeviceSpec& device :
       {hw::TeslaC2050(), hw::QuadroFx5800(), hw::RadeonHd5870()}) {
    {
      runtime::BindingSet bindings;
      bindings.Input("Input", in).Output(out).Scalar("sigma_d", 3).Scalar("sigma_r", 5);
      Evaluate("bilateral 13x13", ops::BilateralMaskSource(3, ast::BoundaryMode::kClamp),
               device, n, bindings);
    }
    {
      runtime::BindingSet bindings;
      bindings.Input("Input", in).Output(out);
      Evaluate("gaussian 5x5",
               ops::GaussianSource(5, 2.0f, ast::BoundaryMode::kMirror), device,
               n, bindings);
    }
    {
      runtime::BindingSet bindings;
      bindings.Input("Input", in).Output(out);
      Evaluate("sobel 3x3",
               ops::ConvolutionSource("sobel_x", 3, 3, ops::SobelMaskX(),
                                      ast::BoundaryMode::kClamp),
               device, n, bindings);
    }
    {
      runtime::BindingSet bindings;
      bindings.Input("Input", in).Output(out).Scalar("scale", 2.0).Scalar("offset", 0.1);
      Evaluate("point op (no border)", ops::ScaleOffsetSource(), device, n,
               bindings);
    }
  }
  return 0;
}
