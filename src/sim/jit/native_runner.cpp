#include "sim/jit/native_runner.hpp"

#include <array>
#include <cstring>
#include <vector>

#include "sim/block_state.hpp"
#include "sim/jit/abi.hpp"
#include "sim/vm.hpp"

namespace hipacc::sim::jit {
namespace {

using ast::ScalarType;

/// Per-thread scratch reused across blocks, like the VM's VmScratch: the
/// register/mask/type files persist so the generated code sees the same
/// write-before-read discipline the VM's thread-local register file has.
struct NativeScratch {
  std::vector<double> regs;
  std::vector<unsigned char> reg_types;
  std::vector<unsigned char> masks;
  std::vector<JitBuffer> buffers;
  std::vector<JitMaskTable> mask_tables;
};

NativeScratch& ThreadScratch() {
  static thread_local NativeScratch scratch;
  return scratch;
}

struct HostCtx {
  BlockState* st = nullptr;
  Metrics* metrics = nullptr;
};

/// Memory-model trampoline: hands the generated code's address span
/// straight to the same MemoryModel entry points the VM calls, in the same
/// order — no intermediate copy.
void MemAccessThunk(void* host, int kind, const unsigned long long* addrs,
                    int count) {
  auto* h = static_cast<HostCtx*>(host);
  static_assert(sizeof(unsigned long long) == sizeof(std::uint64_t));
  const auto* a = reinterpret_cast<const std::uint64_t*>(addrs);
  const auto n = static_cast<std::size_t>(count);
  switch (kind) {
    case kJitMemGlobalRead:
      h->st->memory.GlobalAccess(a, n, /*is_write=*/false, h->metrics);
      break;
    case kJitMemGlobalWrite:
      h->st->memory.GlobalAccess(a, n, /*is_write=*/true, h->metrics);
      break;
    case kJitMemShared:
      h->st->memory.SharedAccess(a, n, h->metrics);
      break;
    case kJitMemConstant:
      h->st->memory.ConstantAccess(a, n, h->metrics);
      break;
    case kJitMemTexture:
      h->st->memory.TextureAccess(a, n, h->metrics);
      break;
  }
}

Status MapError(const ProgramSet& ps, int rc) {
  const int code = rc >> 16;
  const std::size_t index = static_cast<std::size_t>(rc & 0xffff);
  switch (code) {
    case kJitErrLoadUnbound:
      return Status::Invalid("unbound buffer " + ps.buffer_names[index]);
    case kJitErrStoreUnbound:
      return Status::Invalid("write to unbound or read-only buffer " +
                             ps.buffer_names[index]);
    case kJitErrMaskUnbound:
      return Status::Invalid("unbound constant mask " +
                             ps.const_masks[index].name);
  }
  return Status::Internal("native tier returned unknown error code");
}

/// Fused functions hoist every binding check ahead of all side effects, so
/// a launch that would fail mid-program on the VM (partial metrics and
/// model calls, then an error) must never reach them. Bindings are
/// launch-level constants: either every block passes or the very first one
/// falls back, so the conservative walk over all fused programs costs
/// nothing on the happy path.
bool FusedPreconditionsHold(const ProgramSet& ps, const NativeProgram& native,
                            const Launch& launch) {
  std::vector<std::uint8_t> buf_bound, buf_writable, mask_bound;
  buf_bound.reserve(ps.buffer_names.size());
  buf_writable.reserve(ps.buffer_names.size());
  for (const auto& name : ps.buffer_names) {
    const BufferBinding* b = launch.FindBuffer(name);
    buf_bound.push_back(b != nullptr);
    buf_writable.push_back(b && b->writable);
  }
  mask_bound.reserve(ps.const_masks.size());
  for (const auto& ref : ps.const_masks)
    mask_bound.push_back(launch.const_masks.count(ref.name) != 0);

  for (const NativeProgram::Entry& e : native.fns) {
    if (!e.fused) continue;
    const Program* prog = ps.Find(e.region);
    if (!prog) continue;
    for (const Insn& I : prog->code) {
      const std::size_t b = static_cast<std::size_t>(I.buffer);
      switch (I.op) {
        case Op::kLoadImage:
          if (!buf_bound[b]) return false;
          break;
        case Op::kStore:
          if (!buf_bound[b] || !buf_writable[b]) return false;
          break;
        case Op::kLoadConst:
          if (!mask_bound[b]) return false;
          break;
        default:
          break;
      }
    }
  }
  return true;
}

}  // namespace

Status RunBlockNative(const Launch& launch, const ProgramSet& ps,
                      const NativeProgram& native,
                      const hw::DeviceSpec& device, int block_x_idx,
                      int block_y_idx, Metrics* metrics,
                      std::uint64_t* executed_insns) {
  HIPACC_CHECK(launch.kernel != nullptr && metrics != nullptr);
  if (!FusedPreconditionsHold(ps, native, launch))
    return RunBlockBytecode(launch, ps, device, block_x_idx, block_y_idx,
                            metrics, executed_insns, VmDispatch::kThreaded);
  BlockState st(launch, device, block_x_idx, block_y_idx, metrics);
  Result<BlockState::Plan> begun = st.Begin();
  if (!begun.ok()) return begun.status();
  const BlockState::Plan plan = begun.value();
  const Program* prog = ps.Find(plan.region);
  const JitWarpFn fn = native.Find(plan.region);
  if (!prog || !fn)
    return Status::Internal("no native program for region of kernel " +
                            ps.kernel_name);

  NativeScratch& scratch = ThreadScratch();
  scratch.buffers.clear();
  scratch.buffers.reserve(ps.buffer_names.size());
  for (const auto& name : ps.buffer_names) {
    JitBuffer jb;
    if (const BufferBinding* bound = launch.FindBuffer(name)) {
      jb.data = bound->data;
      jb.width = bound->width;
      jb.height = bound->height;
      jb.stride = bound->stride;
      jb.writable = bound->writable ? 1 : 0;
      jb.bound = 1;
    }
    scratch.buffers.push_back(jb);
  }
  scratch.mask_tables.clear();
  scratch.mask_tables.reserve(ps.const_masks.size());
  for (const auto& ref : ps.const_masks) {
    JitMaskTable mt;
    const auto it = launch.const_masks.find(ref.name);
    if (it != launch.const_masks.end()) {
      mt.data = it->second.data();
      mt.size = it->second.size();
      mt.bound = 1;
    }
    scratch.mask_tables.push_back(mt);
  }

  struct ParamFill {
    std::uint16_t reg = 0;
    ScalarType type = ScalarType::kFloat;
    double value = 0.0;
  };
  std::vector<ParamFill> seeds;
  seeds.reserve(prog->params.size());
  for (const auto& p : prog->params) {
    const auto it = launch.scalar_args.find(p.name);
    const double v = it != launch.scalar_args.end() ? it->second : 0.0;
    seeds.push_back(ParamFill{
        p.reg, p.type,
        p.type == ScalarType::kFloat
            ? static_cast<double>(static_cast<float>(v))
            : v});
  }

  const hw::GridDim grid = hw::ComputeGrid(launch.config, launch.width,
                                           launch.height, launch.kernel->ppt);
  const std::size_t reg_slots = static_cast<std::size_t>(prog->num_regs);
  scratch.regs.resize(reg_slots * kJitMaxWarp);
  // Fresh slots default to the VM's WarpVal type tag (kFloat); existing
  // tags persist across warps/blocks exactly like the VM's register file.
  scratch.reg_types.resize(reg_slots, static_cast<unsigned char>(4));
  scratch.masks.resize(static_cast<std::size_t>(prog->num_masks) *
                       kJitMaxWarp);

  std::array<int, kMaxWarpWidth> tid_xi{}, tid_yi{}, gid_xi{}, gid_yi{};

  HostCtx host{&st, metrics};
  JitWarpCtx ctx;
  ctx.warp_size = st.warp_size;
  ctx.tid_x = st.tid_x.data();
  ctx.tid_y = st.tid_y.data();
  ctx.gid_x = st.gid_x.data();
  ctx.gid_y = st.gid_y.data();
  ctx.tid_xi = tid_xi.data();
  ctx.tid_yi = tid_yi.data();
  ctx.gid_xi = gid_xi.data();
  ctx.gid_yi = gid_yi.data();
  ctx.bix = st.bix;
  ctx.biy = st.biy;
  ctx.block_dim_x = launch.config.block_x;
  ctx.block_dim_y = launch.config.block_y;
  ctx.grid_dim_x = grid.blocks_x;
  ctx.grid_dim_y = grid.blocks_y;
  ctx.image_w = launch.width;
  ctx.image_h = launch.height;
  ctx.regs = scratch.regs.data();
  ctx.reg_types = scratch.reg_types.data();
  ctx.masks = scratch.masks.data();
  ctx.tile = st.tile.data();
  ctx.tile_w = st.tile_w;
  ctx.tile_h = st.tile_h;
  ctx.buffers = scratch.buffers.data();
  ctx.mask_tables = scratch.mask_tables.data();
  // The ABI counters are unsigned long long (self-contained header);
  // Metrics uses std::uint64_t. Accumulate locally and flush on every exit
  // path — including error returns — like the VM's CostCounters.
  struct Counters {
    Metrics* m;
    std::uint64_t* out_insns;
    unsigned long long alu = 0, sfu = 0, oob = 0, insns = 0;
    ~Counters() {
      m->alu_ops += alu;
      m->sfu_calls += sfu;
      m->oob_violations += oob;
      if (out_insns) *out_insns += insns;
    }
  } c{metrics, executed_insns};
  ctx.alu = &c.alu;
  ctx.sfu = &c.sfu;
  ctx.oob = &c.oob;
  ctx.insns = &c.insns;
  ctx.mem_access = &MemAccessThunk;
  ctx.host = &host;

  for (int w = 0; w < plan.warps; ++w) {
    st.BuildWarpContext(w, plan.threads);
    if (!AnyActive(st.active)) continue;
    for (int l = 0; l < st.warp_size; ++l) {
      const std::size_t i = static_cast<std::size_t>(l);
      tid_xi[i] = static_cast<int>(st.tid_x[i]);
      tid_yi[i] = static_cast<int>(st.tid_y[i]);
      gid_xi[i] = static_cast<int>(st.gid_x[i]);
      gid_yi[i] = static_cast<int>(st.gid_y[i]);
    }
    static_assert(sizeof(LaneMask) == kJitMaxWarp);
    std::memcpy(scratch.masks.data(), st.active.data(), kJitMaxWarp);
    for (const ParamFill& seed : seeds) {
      double* r = scratch.regs.data() +
                  static_cast<std::size_t>(seed.reg) * kJitMaxWarp;
      scratch.reg_types[seed.reg] =
          static_cast<unsigned char>(static_cast<int>(seed.type));
      for (int l = 0; l < kJitMaxWarp; ++l) r[l] = seed.value;
    }
    const int rc = fn(&ctx);
    if (rc != 0) return MapError(ps, rc);
  }
  return Status::Ok();
}

}  // namespace hipacc::sim::jit
