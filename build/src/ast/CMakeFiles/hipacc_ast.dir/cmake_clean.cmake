file(REMOVE_RECURSE
  "CMakeFiles/hipacc_ast.dir/builtins.cpp.o"
  "CMakeFiles/hipacc_ast.dir/builtins.cpp.o.d"
  "CMakeFiles/hipacc_ast.dir/cfg.cpp.o"
  "CMakeFiles/hipacc_ast.dir/cfg.cpp.o.d"
  "CMakeFiles/hipacc_ast.dir/const_fold.cpp.o"
  "CMakeFiles/hipacc_ast.dir/const_fold.cpp.o.d"
  "CMakeFiles/hipacc_ast.dir/expr.cpp.o"
  "CMakeFiles/hipacc_ast.dir/expr.cpp.o.d"
  "CMakeFiles/hipacc_ast.dir/kernel_ir.cpp.o"
  "CMakeFiles/hipacc_ast.dir/kernel_ir.cpp.o.d"
  "CMakeFiles/hipacc_ast.dir/metadata.cpp.o"
  "CMakeFiles/hipacc_ast.dir/metadata.cpp.o.d"
  "CMakeFiles/hipacc_ast.dir/printer.cpp.o"
  "CMakeFiles/hipacc_ast.dir/printer.cpp.o.d"
  "CMakeFiles/hipacc_ast.dir/stmt.cpp.o"
  "CMakeFiles/hipacc_ast.dir/stmt.cpp.o.d"
  "CMakeFiles/hipacc_ast.dir/type.cpp.o"
  "CMakeFiles/hipacc_ast.dir/type.cpp.o.d"
  "CMakeFiles/hipacc_ast.dir/visitor.cpp.o"
  "CMakeFiles/hipacc_ast.dir/visitor.cpp.o.d"
  "libhipacc_ast.a"
  "libhipacc_ast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hipacc_ast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
