#include "sim/memory.hpp"

#include <algorithm>
#include <set>

namespace hipacc::sim {

bool SegmentCache::Access(std::uint64_t segment) {
  ++stamp_;
  const auto it = entries_.find(segment);
  if (it != entries_.end()) {
    it->second = stamp_;
    return true;
  }
  if (static_cast<int>(entries_.size()) >= capacity_) {
    // Evict the least recently used entry.
    auto lru = entries_.begin();
    for (auto e = entries_.begin(); e != entries_.end(); ++e)
      if (e->second < lru->second) lru = e;
    entries_.erase(lru);
  }
  entries_[segment] = stamp_;
  return false;
}

MemoryModel::MemoryModel(const hw::DeviceSpec& device)
    : device_(device),
      tex_cache_(device.tex_cache_bytes / device.mem_transaction_bytes),
      l1_cache_(device.tex_cache_bytes / device.mem_transaction_bytes) {}

void MemoryModel::GlobalAccess(const std::vector<std::uint64_t>& addrs,
                               bool is_write, Metrics* metrics) {
  if (addrs.empty()) return;
  if (is_write)
    ++metrics->global_write_instrs;
  else
    ++metrics->global_read_instrs;

  // Coalescing: one transaction per distinct segment touched by the warp.
  std::set<std::uint64_t> segments;
  for (const std::uint64_t addr : addrs) segments.insert(Segment(addr));

  if (!is_write && device_.has_global_l1) {
    for (const std::uint64_t seg : segments) {
      if (l1_cache_.Access(seg))
        ++metrics->l1_hits;
      else
        ++metrics->global_transactions;
    }
  } else {
    metrics->global_transactions += segments.size();
  }
}

void MemoryModel::TextureAccess(const std::vector<std::uint64_t>& addrs,
                                Metrics* metrics) {
  if (addrs.empty()) return;
  ++metrics->tex_read_instrs;
  std::set<std::uint64_t> segments;
  for (const std::uint64_t addr : addrs) segments.insert(Segment(addr));
  for (const std::uint64_t seg : segments) {
    if (tex_cache_.Access(seg))
      ++metrics->tex_hits;
    else
      ++metrics->tex_transactions;
  }
}

void MemoryModel::ConstantAccess(const std::vector<std::uint64_t>& addrs,
                                 Metrics* metrics) {
  if (addrs.empty()) return;
  std::set<std::uint64_t> distinct(addrs.begin(), addrs.end());
  if (distinct.size() == 1)
    ++metrics->const_broadcasts;
  else
    metrics->const_serialized += distinct.size();
}

void MemoryModel::SharedAccess(const std::vector<std::uint64_t>& addrs,
                               Metrics* metrics) {
  if (addrs.empty()) return;
  ++metrics->smem_accesses;
  // Bank conflict degree: lanes with the same address broadcast; distinct
  // addresses mapping to one bank serialize.
  std::map<int, std::set<std::uint64_t>> per_bank;
  for (const std::uint64_t addr : addrs)
    per_bank[static_cast<int>(addr % static_cast<std::uint64_t>(device_.smem_banks))]
        .insert(addr);
  std::uint64_t degree = 1;
  for (const auto& [bank, uniq] : per_bank)
    degree = std::max<std::uint64_t>(degree, uniq.size());
  metrics->smem_conflict_cycles += degree - 1;
}

}  // namespace hipacc::sim
