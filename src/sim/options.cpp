#include "sim/options.hpp"

namespace hipacc::sim {

const char* to_string(ExecEngine engine) noexcept {
  switch (engine) {
    case ExecEngine::kBytecode: return "bytecode";
    case ExecEngine::kAst: return "ast";
    case ExecEngine::kNative: return "native";
  }
  return "?";
}

Result<ExecEngine> ParseExecEngine(const std::string& text) {
  if (text == "bytecode") return ExecEngine::kBytecode;
  if (text == "ast") return ExecEngine::kAst;
  if (text == "native") return ExecEngine::kNative;
  return Status::Invalid("unknown simulator engine '" + text +
                         "' (expected 'bytecode', 'ast', or 'native')");
}

SimulatorOptions& DefaultSimulatorOptions() {
  static SimulatorOptions options;
  return options;
}

}  // namespace hipacc::sim
