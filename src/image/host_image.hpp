// Owning host-side image buffer. This is the plain-C-array side of the DSL
// (what the paper calls `host_in` / `host_out`); the DSL's `Image<T>` wraps
// simulated device memory and copies from/to a HostImage.
#pragma once

#include <algorithm>
#include <vector>

#include "support/span2d.hpp"
#include "support/status.hpp"

namespace hipacc {

/// Row-major, densely packed 2D image owning its pixels.
template <typename T>
class HostImage {
 public:
  HostImage() = default;
  HostImage(int width, int height, T fill = T{})
      : width_(width), height_(height),
        pixels_(static_cast<size_t>(width) * height, fill) {
    HIPACC_CHECK(width >= 0 && height >= 0);
  }

  /// Builds an image from an initializer-style row-major vector.
  static HostImage FromData(int width, int height, std::vector<T> data) {
    HIPACC_CHECK(static_cast<size_t>(width) * height == data.size());
    HostImage img;
    img.width_ = width;
    img.height_ = height;
    img.pixels_ = std::move(data);
    return img;
  }

  int width() const noexcept { return width_; }
  int height() const noexcept { return height_; }
  size_t size() const noexcept { return pixels_.size(); }
  bool empty() const noexcept { return pixels_.empty(); }

  T* data() noexcept { return pixels_.data(); }
  const T* data() const noexcept { return pixels_.data(); }

  T& operator()(int x, int y) { return pixels_[static_cast<size_t>(y) * width_ + x]; }
  const T& operator()(int x, int y) const {
    return pixels_[static_cast<size_t>(y) * width_ + x];
  }

  T& at(int x, int y) {
    HIPACC_CHECK_MSG(x >= 0 && x < width_ && y >= 0 && y < height_,
                     "HostImage::at out of range");
    return (*this)(x, y);
  }
  const T& at(int x, int y) const {
    return const_cast<HostImage*>(this)->at(x, y);
  }

  Span2D<T> span() { return Span2D<T>(pixels_.data(), width_, height_); }
  Span2D<const T> span() const {
    return Span2D<const T>(pixels_.data(), width_, height_);
  }

  void Fill(T value) { std::fill(pixels_.begin(), pixels_.end(), value); }

  bool operator==(const HostImage& other) const {
    return width_ == other.width_ && height_ == other.height_ &&
           pixels_ == other.pixels_;
  }

 private:
  int width_ = 0;
  int height_ = 0;
  std::vector<T> pixels_;
};

}  // namespace hipacc
