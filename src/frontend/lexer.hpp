// Hand-written lexer for the DSL kernel subset: identifiers, numeric
// literals (with f suffix), C operators, and // and /* */ comments.
#pragma once

#include <vector>

#include "frontend/token.hpp"
#include "support/status.hpp"

namespace hipacc::frontend {

/// Tokenises `source`; the terminating kEnd token is appended on success.
Result<std::vector<Token>> Lex(const std::string& source);

}  // namespace hipacc::frontend
