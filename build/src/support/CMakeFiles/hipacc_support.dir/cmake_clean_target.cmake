file(REMOVE_RECURSE
  "libhipacc_support.a"
)
