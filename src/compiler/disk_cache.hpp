// Persistent tier of the compilation cache: binary (de)serialisation of the
// two artifact levels (FrontendArtifacts, CompiledKernel) and the glue that
// lets CompilationCache fall through to a support::DiskStore on in-memory
// misses.
//
// The interpreter bytecode (CompiledKernel::bytecode) is deliberately NOT
// serialised: it is a pure function of the device IR and recompiles in
// microseconds, so a disk hit re-attaches it via sim::CompileToBytecode.
// What the disk tier actually saves is the expensive part — parse, lower,
// estimate, Algorithm-2 selection, emission (and, in the JIT's store, the
// toolchain's .so build).
//
// Decoders are total: any truncated or tampered payload decodes to nullopt
// (treated as a miss by the caller), never to a malformed artifact. The
// payload layout is covered by support::kDiskStoreSchemaVersion — changing
// any Encode function requires bumping that version.
#pragma once

#include <optional>
#include <string>

#include "compiler/cache.hpp"

namespace hipacc::compiler {

std::string EncodeFrontendArtifacts(const FrontendArtifacts& artifacts);
std::optional<FrontendArtifacts> DecodeFrontendArtifacts(
    const std::string& payload);

/// `bytecode` is dropped on encode; DecodeCompiledKernel re-attaches it by
/// recompiling the device IR (null only if that fallback-compiles to null,
/// matching the in-memory pipeline's behaviour).
std::string EncodeCompiledKernel(const CompiledKernel& kernel);
std::optional<CompiledKernel> DecodeCompiledKernel(const std::string& payload);

}  // namespace hipacc::compiler
