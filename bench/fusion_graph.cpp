// Fusion planner benchmark: modelled (simulated-device) time of fused vs
// unfused pipeline graphs for the three candidate kinds the planner knows.
//
//   sobel_pair     horizontal — two Sobel stages sharing one input merge
//                  into a single multi-output launch
//   gauss_laplace  halo — a 3x3 Gaussian producer is inlined into the
//                  consuming Laplacian with halo recompute
//   multires       end-to-end — the paper's multiresolution filter with the
//                  full planner vs fusion off
//
// The gate compares *modelled* device time (the graph.modelled_us counter,
// summed over simulated launches), not host wall-clock: the simulator
// executes halo recompute on the host at full cost, but the device model is
// what the planner's profitability decision is about. Outputs must stay
// bit-identical between the fused and unfused runs, or the bench fails.
// --check enforces the CI floors (sobel_pair >= 1.3x, gauss_laplace >=
// 1.2x); --fuse / --explain-fusion work as in every graph bench.
#include <cstdio>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/table.hpp"
#include "compiler/executable.hpp"
#include "compiler/explore.hpp"
#include "compiler/fusion.hpp"
#include "hwmodel/device_db.hpp"
#include "image/metrics.hpp"
#include "image/synthetic.hpp"
#include "ops/kernel_sources.hpp"
#include "ops/masks.hpp"
#include "ops/pyramid.hpp"
#include "sim/trace.hpp"
#include "support/string_utils.hpp"

using namespace hipacc;

namespace {

struct Scenario {
  std::string name;
  /// Fusion kinds the fused run enables (the unfused run uses kOff).
  compiler::FusionMode mode = compiler::FusionMode::kAll;
  /// CI floor for modelled speedup; 0 = report only.
  double gate = 0.0;
  /// Extent multiplier over --size. Halo fusion trades recompute against
  /// launch overhead and saved traffic, so its modelled win lives at
  /// smaller extents than the launch-bound horizontal/point scenarios.
  double scale = 1.0;
  /// Border policy both runs compile under. Small extents cannot form
  /// regioned border blocks, so the halo scenario uses uniform guards.
  codegen::BorderPolicy border = codegen::BorderPolicy::kRegions;
  std::function<void(runtime::PipelineGraph&, int)> build;
  std::vector<std::string> outputs;
};

struct RunResult {
  double modelled_us = 0.0;
  long long fused_edges = 0;
  std::map<std::string, HostImage<float>> outputs;
};

Result<RunResult> RunScenario(const Scenario& scenario, int size,
                              const HostImage<float>& input,
                              compiler::FusionMode fuse,
                              std::vector<compiler::CandidateDecision>*
                                  decisions) {
  runtime::PipelineGraph graph;
  scenario.build(graph, size);
  RunResult result;
  runtime::PipelineGraph::OutputBindings bindings;
  for (const std::string& name : scenario.outputs)
    result.outputs.emplace(name, HostImage<float>(size, size));
  for (auto& [name, image] : result.outputs)
    bindings.emplace_back(name, &image);
  sim::TraceSink trace;
  runtime::GraphOptions gopts;
  gopts.fuse = fuse;
  gopts.run.codegen.border = scenario.border;
  gopts.executor = runtime::GraphOptions::Executor::kSimulator;
  gopts.run.trace = &trace;
  gopts.explain = decisions;
  HIPACC_RETURN_IF_ERROR(
      graph.Run({{scenario.outputs.front() == "r0" ? "g0" : "in", &input}},
                bindings, gopts));
  result.modelled_us = static_cast<double>(trace.counter("graph.modelled_us"));
  result.fused_edges = trace.counter("graph.fused_edges");
  return result;
}

Result<compiler::CompiledKernel> CompileAt(
    const frontend::KernelSource& source, int n,
    codegen::BorderPolicy border) {
  compiler::CompileOptions copts;
  copts.codegen.backend = ast::Backend::kCuda;
  copts.codegen.border = border;
  copts.device = hw::TeslaC2050();
  copts.image_width = n;
  copts.image_height = n;
  return compiler::Compile(source, copts);
}

/// Full Figure 4 sweeps for the two merging candidates: the fused kernel's
/// best configuration against the replaced stages at theirs. Backs the
/// planner's closed-form verdicts with measured-at-optimum numbers.
Result<support::Json> ExploreCandidates(int sobel_n, int gauss_n) {
  support::Json doc = support::Json::Object();

  {
    const frontend::KernelSource a = ops::ConvolutionSource(
        "sobel_x", 3, 3, ops::SobelMaskX(), ast::BoundaryMode::kClamp);
    const frontend::KernelSource b = ops::ConvolutionSource(
        "sobel_y", 3, 3, ops::SobelMaskY(), ast::BoundaryMode::kClamp);
    Result<frontend::KernelSource> fused_src =
        compiler::FuseHorizontal(a, "Input", b, "Input", "gy");
    HIPACC_RETURN_IF_ERROR(fused_src.status());
    Result<compiler::CompiledKernel> ka =
        CompileAt(a, sobel_n, codegen::BorderPolicy::kRegions);
    Result<compiler::CompiledKernel> kb =
        CompileAt(b, sobel_n, codegen::BorderPolicy::kRegions);
    Result<compiler::CompiledKernel> kf =
        CompileAt(fused_src.value(), sobel_n, codegen::BorderPolicy::kRegions);
    HIPACC_RETURN_IF_ERROR(ka.status());
    HIPACC_RETURN_IF_ERROR(kb.status());
    HIPACC_RETURN_IF_ERROR(kf.status());
    dsl::Image<float> in(sobel_n, sobel_n), gx(sobel_n, sobel_n),
        gy(sobel_n, sobel_n);
    runtime::BindingSet ba, bb, bf;
    ba.Input("Input", in).Output(gx);
    bb.Input("Input", in).Output(gy);
    bf.Input("Input", in).Output(gx).Output("gy", gy);
    Result<compiler::FusionSweep> sweep = compiler::ExploreFusionCandidate(
        {&kf.value(), &bf},
        {{&ka.value(), &ba}, {&kb.value(), &bb}}, hw::TeslaC2050());
    HIPACC_RETURN_IF_ERROR(sweep.status());
    std::printf(
        "sobel_pair sweep: best unfused %.3f ms, best fused %.3f ms "
        "(%.2fx, %zu fused points)\n",
        sweep.value().best_unfused_ms, sweep.value().best_fused_ms,
        sweep.value().speedup, sweep.value().fused.size());
    doc["sobel_pair"] = compiler::FusionSweepJson(sweep.value());
  }

  {
    const frontend::KernelSource smooth =
        ops::GaussianConvolveSource(3, 1.0f, ast::BoundaryMode::kClamp);
    const frontend::KernelSource edges = ops::ConvolutionSource(
        "laplacian", 3, 3, ops::LaplacianMask3(), ast::BoundaryMode::kClamp);
    Result<frontend::KernelSource> fused_src =
        compiler::FuseHalo(smooth, edges, "Input", gauss_n, gauss_n);
    HIPACC_RETURN_IF_ERROR(fused_src.status());
    Result<compiler::CompiledKernel> kp =
        CompileAt(smooth, gauss_n, codegen::BorderPolicy::kUniform);
    Result<compiler::CompiledKernel> kc =
        CompileAt(edges, gauss_n, codegen::BorderPolicy::kUniform);
    Result<compiler::CompiledKernel> kf =
        CompileAt(fused_src.value(), gauss_n, codegen::BorderPolicy::kUniform);
    HIPACC_RETURN_IF_ERROR(kp.status());
    HIPACC_RETURN_IF_ERROR(kc.status());
    HIPACC_RETURN_IF_ERROR(kf.status());
    dsl::Image<float> in(gauss_n, gauss_n), tmp(gauss_n, gauss_n),
        out(gauss_n, gauss_n);
    runtime::BindingSet bp, bc, bf;
    bp.Input("Input", in).Output(tmp);
    bc.Input("Input", tmp).Output(out);
    bf.Input("Input", in).Output(out);
    Result<compiler::FusionSweep> sweep = compiler::ExploreFusionCandidate(
        {&kf.value(), &bf},
        {{&kp.value(), &bp}, {&kc.value(), &bc}}, hw::TeslaC2050());
    HIPACC_RETURN_IF_ERROR(sweep.status());
    std::printf(
        "gauss_laplace sweep: best unfused %.3f ms, best fused %.3f ms "
        "(%.2fx, %zu fused points)\n",
        sweep.value().best_unfused_ms, sweep.value().best_fused_ms,
        sweep.value().speedup, sweep.value().fused.size());
    doc["gauss_laplace"] = compiler::FusionSweepJson(sweep.value());
  }
  return doc;
}

}  // namespace

int main(int argc, char** argv) {
  // Launch overhead is a real term of the profitability model; the default
  // extent sits in the regime where the planner accepts all three candidate
  // kinds (at large extents it correctly declines halo recompute).
  int size = 128;
  bool check = false;
  std::string json_out = "BENCH_fusion.json";

  support::CliParser cli = bench::MakeBenchCli(
      "fusion_graph",
      "fusion planner: modelled time of fused vs unfused pipeline graphs");
  cli.Int("size", &size, "N", "square image extent (default 128)");
  cli.Switch("check", "enforce the CI speedup floors", [&check]() -> Status {
    check = true;
    return Status::Ok();
  });
  bool explore = false;
  cli.Switch("explore",
             "Figure 4 sweep of each merging candidate: best fused vs best "
             "unfused configuration",
             [&explore]() -> Status {
               explore = true;
               return Status::Ok();
             });
  cli.String("json-out", &json_out, "FILE",
             "BENCH_*.json report path (default BENCH_fusion.json)");
  if (const int code = cli.HandleArgs(argc, argv); code >= 0) return code;

  std::vector<Scenario> scenarios;
  {
    Scenario s;
    s.name = "sobel_pair";
    s.mode = compiler::FusionMode::kHorizontal;
    s.gate = 1.3;
    s.outputs = {"gx", "gy"};
    s.build = [](runtime::PipelineGraph& graph, int n) {
      graph.Source("in", n, n)
          .Kernel("gx",
                  ops::ConvolutionSource("sobel_x", 3, 3, ops::SobelMaskX(),
                                         ast::BoundaryMode::kClamp),
                  {{"Input", "in"}})
          .Kernel("gy",
                  ops::ConvolutionSource("sobel_y", 3, 3, ops::SobelMaskY(),
                                         ast::BoundaryMode::kClamp),
                  {{"Input", "in"}})
          .Output("gx")
          .Output("gy");
    };
    scenarios.push_back(std::move(s));
  }
  {
    Scenario s;
    s.name = "gauss_laplace";
    s.mode = compiler::FusionMode::kHalo;
    s.gate = 1.2;
    s.scale = 0.25;
    s.border = codegen::BorderPolicy::kUniform;
    s.outputs = {"edges"};
    s.build = [](runtime::PipelineGraph& graph, int n) {
      graph.Source("in", n, n)
          .Kernel("smooth",
                  ops::GaussianConvolveSource(3, 1.0f,
                                              ast::BoundaryMode::kClamp),
                  {{"Input", "in"}})
          .Kernel("edges",
                  ops::ConvolutionSource("laplacian", 3, 3,
                                         ops::LaplacianMask3(),
                                         ast::BoundaryMode::kClamp),
                  {{"Input", "smooth"}})
          .Output("edges");
    };
    scenarios.push_back(std::move(s));
  }
  {
    Scenario s;
    s.name = "multires";
    s.mode = compiler::FusionMode::kAll;
    s.outputs = {"r0"};
    s.build = [](runtime::PipelineGraph& graph, int n) {
      ops::BuildMultiresolutionGraph(graph, n, n, 2, {2.5f, 1.8f},
                                     ast::BoundaryMode::kMirror);
    };
    scenarios.push_back(std::move(s));
  }

  bench::Table table(
      {"unfused_us", "fused_us", "speedup", "fused_edges", "max_diff"});
  support::Json details = support::Json::Object();
  bool failed = false;

  for (const Scenario& scenario : scenarios) {
    const int extent = static_cast<int>(size * scenario.scale);
    const HostImage<float> input =
        MakeAngiogramPhantom(extent, extent, 0.02f, 3);
    // Requested kinds, intersected with the --fuse flag so the bench can be
    // narrowed from the command line.
    const compiler::FusionMode fused_mode =
        bench::Tuning().fuse == compiler::FusionMode::kAll
            ? scenario.mode
            : bench::Tuning().fuse;
    std::vector<compiler::CandidateDecision> decisions;
    Result<RunResult> unfused = RunScenario(
        scenario, extent, input, compiler::FusionMode::kOff, nullptr);
    Result<RunResult> fused = RunScenario(
        scenario, extent, input, fused_mode,
        bench::Tuning().explain_fusion ? &decisions : nullptr);
    if (!unfused.ok() || !fused.ok()) {
      std::fprintf(stderr, "error: %s: %s\n", scenario.name.c_str(),
                   (!unfused.ok() ? unfused.status() : fused.status())
                       .ToString()
                       .c_str());
      return 1;
    }
    if (bench::Tuning().explain_fusion) {
      std::printf("%s:\n", scenario.name.c_str());
      bench::PrintFusionDecisions(decisions);
    }

    double max_diff = 0.0;
    for (const std::string& name : scenario.outputs)
      max_diff = std::max(max_diff,
                          MaxAbsDiff(unfused.value().outputs.at(name),
                                     fused.value().outputs.at(name)));
    if (max_diff != 0.0) {
      std::fprintf(stderr,
                   "error: %s: fused output differs from unfused (max |d| = "
                   "%g)\n",
                   scenario.name.c_str(), max_diff);
      return 1;
    }

    const double speedup =
        fused.value().modelled_us > 0.0
            ? unfused.value().modelled_us / fused.value().modelled_us
            : 0.0;
    table.Row(scenario.name);
    table.Cell(unfused.value().modelled_us);
    table.Cell(fused.value().modelled_us);
    table.Cell(StrFormat("%.2fx", speedup));
    table.Cell(StrFormat("%lld", fused.value().fused_edges));
    table.Cell(max_diff);

    support::Json row = support::Json::Object();
    row["unfused_us"] = unfused.value().modelled_us;
    row["fused_us"] = fused.value().modelled_us;
    row["speedup"] = speedup;
    row["fused_edges"] = static_cast<double>(fused.value().fused_edges);
    row["gate"] = scenario.gate;
    details[scenario.name] = std::move(row);

    if (fused.value().fused_edges <= 0 &&
        fused_mode != compiler::FusionMode::kOff) {
      std::fprintf(stderr, "%s: %s: planner applied no fusion\n",
                   check ? "error" : "warning", scenario.name.c_str());
      if (check) failed = true;
    }
    if (check && scenario.gate > 0.0 && speedup < scenario.gate) {
      std::fprintf(stderr,
                   "error: %s: modelled speedup %.2fx below the %.2fx "
                   "floor\n",
                   scenario.name.c_str(), speedup, scenario.gate);
      failed = true;
    }
  }

  const std::string title = StrFormat(
      "Fusion planner, %dx%d: modelled device time, fused vs unfused", size,
      size);
  std::printf("%s\n", table.Render(title).c_str());

  support::Json exploration;
  if (explore) {
    Result<support::Json> swept = ExploreCandidates(
        size, std::max(8, static_cast<int>(size * 0.25)));
    if (!swept.ok()) {
      std::fprintf(stderr, "error: exploration: %s\n",
                   swept.status().ToString().c_str());
      return 1;
    }
    exploration = std::move(swept).take();
  }

  if (!json_out.empty()) {
    support::Json doc = table.ToJson(title);
    doc["scenarios"] = std::move(details);
    if (explore) doc["exploration"] = std::move(exploration);
    const Status written = support::WriteFile(json_out, doc.Dump(2) + "\n");
    if (!written.ok()) {
      std::fprintf(stderr, "error: %s\n", written.ToString().c_str());
      return 1;
    }
  }
  return failed ? 1 : 0;
}
