#include "runtime/buffer_pool.hpp"

#include "sim/trace.hpp"

namespace hipacc::runtime {

BufferPool::ImagePtr BufferPool::Acquire(int width, int height,
                                         sim::TraceSink* trace) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = free_.find({width, height});
    if (it != free_.end() && !it->second.empty()) {
      ImagePtr image = std::move(it->second.back());
      it->second.pop_back();
      ++reuses_;
      if (trace != nullptr) trace->IncrementCounter("bufpool.reuse");
      return image;
    }
  }
  auto image = std::make_unique<dsl::Image<float>>(width, height);
  const long long bytes = static_cast<long long>(image->stride()) * height *
                          static_cast<long long>(sizeof(float));
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++allocs_;
    peak_bytes_ += bytes;
  }
  if (trace != nullptr) {
    trace->IncrementCounter("bufpool.alloc");
    trace->IncrementCounter("bufpool.peak_bytes", bytes);
  }
  return image;
}

void BufferPool::Release(ImagePtr image) {
  if (!image) return;
  const std::pair<int, int> key{image->width(), image->height()};
  std::lock_guard<std::mutex> lock(mutex_);
  free_[key].push_back(std::move(image));
}

long long BufferPool::alloc_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return allocs_;
}

long long BufferPool::reuse_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return reuses_;
}

long long BufferPool::peak_bytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return peak_bytes_;
}

}  // namespace hipacc::runtime
