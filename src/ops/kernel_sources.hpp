// KernelSource factories for the built-in operators — the DSL text the
// source-to-source compiler consumes. Each factory bakes the window size
// into the metadata (and loop bounds) and declares the accessor's boundary
// mode, mirroring the BoundaryCondition/Accessor setup of Listing 3.
#pragma once

#include "ast/metadata.hpp"
#include "frontend/parser.hpp"

namespace hipacc::ops {

using ast::BoundaryMode;

/// Bilateral filter without masks (Listing 1): both the closeness and the
/// similarity weights are recomputed per tap with exp(). Window is
/// (4*sigma_d+1)^2; scalar params sigma_d, sigma_r are ints as in the paper.
frontend::KernelSource BilateralSource(int sigma_d, BoundaryMode mode,
                                       float constant_value = 0.0f);

/// Bilateral filter with the closeness weights precalculated into a Mask
/// (Listing 5). `static_mask` selects statically vs dynamically initialised
/// constant memory.
frontend::KernelSource BilateralMaskSource(int sigma_d, BoundaryMode mode,
                                           bool static_mask = true,
                                           float constant_value = 0.0f);

/// Bilateral filter with the window size baked into the kernel body at
/// code-generation time (device-specific specialisation in the spirit of
/// the paper): loop bounds are literals, so the whole iteration space is
/// static; only the range sigma remains a launch parameter.
frontend::KernelSource BilateralFixedSource(int sigma_d, BoundaryMode mode,
                                            float constant_value = 0.0f);

/// size x size convolution with a static Mask (Gaussian coefficients).
frontend::KernelSource GaussianSource(int size, float sigma, BoundaryMode mode,
                                      float constant_value = 0.0f);

/// Gaussian written with the convolve() syntax of Listing 9 (Section VIII):
/// the compiler unrolls the taps and constant-propagates the coefficients —
/// no loops, no constant-memory reads in the generated kernel.
frontend::KernelSource GaussianConvolveSource(int size, float sigma,
                                              BoundaryMode mode,
                                              float constant_value = 0.0f);

/// Generic static-mask convolution (Sobel, Laplacian, box, ...).
frontend::KernelSource ConvolutionSource(const std::string& name, int size_x,
                                         int size_y, std::vector<float> mask,
                                         BoundaryMode mode,
                                         float constant_value = 0.0f);

/// 3x3 median via a min/max exchange network (a non-convolution local op).
frontend::KernelSource Median3x3Source(BoundaryMode mode);

/// size x size grayscale erosion (minimum) / dilation (maximum).
frontend::KernelSource ErodeSource(int size, BoundaryMode mode);
frontend::KernelSource DilateSource(int size, BoundaryMode mode);

/// Point operator: output() = scale * Input() + offset (no window).
frontend::KernelSource ScaleOffsetSource();

/// Point operator: binary threshold at `threshold` param.
frontend::KernelSource ThresholdSource();

/// Cascaded-sigmoid display-windowing tone curve (point operator). The
/// stage count is baked in at code-generation time, unrolling into a long
/// straight-line arithmetic chain with one load and one store — the
/// dispatch-bound shape that isolates per-instruction engine overhead.
frontend::KernelSource ToneCurveSource(int stages);

/// Point operator for Laplacian-pyramid decomposition:
/// output() = Fine() - 4.0f * U(), where U is the (unscaled) smoothed
/// zero-upsampled coarser level and Fine the current Gaussian level. The
/// pyramid's expand factor of 4 is folded in so the stage stays point-wise
/// (fusable with the expand convolution feeding U).
frontend::KernelSource PyramidDetailSource();

/// Point operator for Laplacian-pyramid reconstruction:
/// output() = 4.0f * U() + gain * B() — expand-scale plus gain-weighted
/// detail band.
frontend::KernelSource PyramidCollectSource();

}  // namespace hipacc::ops
