// Multiresolution filtering (paper Section III-A, ref [7]): the reason
// Mirror boundary handling matters in medical imaging. The image is
// decomposed into a Laplacian pyramid, detail bands are amplified, and the
// image is reconstructed. With Clamp/Repeat boundary handling, repeated
// upsampling produces visible artifacts along the borders; Mirror keeps them
// natural. This example quantifies the border artifact under each mode.
#include <cmath>
#include <cstdio>

#include "hipacc.hpp"

using namespace hipacc;

namespace {

/// Mean absolute difference within `margin` pixels of the border between the
/// filtered image and the identity-gain reconstruction (which would be the
/// original image under perfect boundary handling).
double BorderArtifact(const HostImage<float>& filtered,
                      const HostImage<float>& reference, int margin) {
  double acc = 0.0;
  long count = 0;
  for (int y = 0; y < filtered.height(); ++y) {
    for (int x = 0; x < filtered.width(); ++x) {
      const bool near_border =
          x < margin || y < margin || x >= filtered.width() - margin ||
          y >= filtered.height() - margin;
      if (!near_border) continue;
      acc += std::abs(static_cast<double>(filtered(x, y)) - reference(x, y));
      ++count;
    }
  }
  return count ? acc / static_cast<double>(count) : 0.0;
}

}  // namespace

int main() {
  const int n = 512;
  const int pad = 64;  // context available to the oracle but not the crop
  const int levels = 4;
  const std::vector<float> gains = {2.5f, 1.8f, 1.2f, 1.0f};

  // Oracle: enhance a larger image and crop its centre — the result the
  // filter would produce if pixel data continued beyond the border.
  HostImage<float> wide = MakeAngiogramPhantom(n + 2 * pad, n + 2 * pad, 0.02f, 3);
  // Illumination tilt (typical of fluoroscopy): breaks the phantom's radial
  // symmetry so opposite image edges genuinely differ.
  for (int y = 0; y < wide.height(); ++y)
    for (int x = 0; x < wide.width(); ++x)
      wide(x, y) = 0.8f * wide(x, y) +
                   0.25f * static_cast<float>(x) / wide.width();
  const HostImage<float> wide_enhanced = ops::MultiresolutionFilter(
      wide, levels, gains, ast::BoundaryMode::kMirror);
  HostImage<float> oracle(n, n), input(n, n);
  for (int y = 0; y < n; ++y)
    for (int x = 0; x < n; ++x) {
      oracle(x, y) = wide_enhanced(x + pad, y + pad);
      input(x, y) = wide(x + pad, y + pad);
    }

  std::printf("Multiresolution enhancement, %d pyramid levels, %dx%d "
              "angiogram, detail gains 2.5/1.8/1.2/1.0.\n", levels, n, n);
  std::printf("Artifact = mean |enhanced - oracle| where the oracle saw %d "
              "extra border pixels.\n\n", pad);
  std::printf("%-10s  %18s  %18s\n", "boundary", "border artifact",
              "interior artifact");

  for (const ast::BoundaryMode mode :
       {ast::BoundaryMode::kClamp, ast::BoundaryMode::kRepeat,
        ast::BoundaryMode::kMirror}) {
    // Declare the whole pyramid as a pipeline graph: the runtime schedules
    // the stages, pools the intermediate buffers, and fuses the point-wise
    // detail/collect stages into their expand convolutions.
    runtime::PipelineGraph graph;
    ops::BuildMultiresolutionGraph(graph, n, n, levels, gains, mode);
    HostImage<float> enhanced(n, n);
    const Status run = graph.Run({{"g0", &input}}, {{"r0", &enhanced}});
    if (!run.ok()) {
      std::fprintf(stderr, "graph run failed: %s\n", run.ToString().c_str());
      return 1;
    }
    const int margin = 16;
    const double border = BorderArtifact(enhanced, oracle, margin);
    double interior = 0.0;
    long count = 0;
    for (int y = margin; y < n - margin; ++y)
      for (int x = margin; x < n - margin; ++x) {
        interior += std::abs(static_cast<double>(enhanced(x, y)) - oracle(x, y));
        ++count;
      }
    interior /= static_cast<double>(count);
    std::printf("%-10s  %18.6f  %18.6f\n", to_string(mode), border, interior);
  }


  // The actual enhancement: amplify fine detail (vessel edges). Attach a
  // trace sink to see what the graph runtime did with the pipeline.
  sim::TraceSink trace;
  runtime::GraphOptions gopts;
  gopts.run.trace = &trace;
  Result<HostImage<float>> enhanced = ops::MultiresolutionFilterGraph(
      input, levels, {2.5f, 1.8f, 1.2f, 1.0f}, ast::BoundaryMode::kMirror,
      gopts);
  if (!enhanced.ok()) {
    std::fprintf(stderr, "graph run failed: %s\n",
                 enhanced.status().ToString().c_str());
    return 1;
  }
  std::printf(
      "\ngraph runtime: %lld stages, %lld edges fused, %lld buffers "
      "allocated, %lld reused from the pool\n",
      static_cast<long long>(trace.counter("graph.stages")),
      static_cast<long long>(trace.counter("graph.fused_edges")),
      static_cast<long long>(trace.counter("bufpool.alloc")),
      static_cast<long long>(trace.counter("bufpool.reuse")));
  (void)WritePgm(input, ExampleOutputPath("multires_in.pgm"));
  (void)WritePgm(enhanced.value(), ExampleOutputPath("multires_enhanced.pgm"));
  std::printf("wrote %s / %s "
              "(detail gains 2.5/1.8/1.2/1.0, mirror boundaries)\n",
              ExampleOutputPath("multires_in.pgm").c_str(),
              ExampleOutputPath("multires_enhanced.pgm").c_str());
  return 0;
}
