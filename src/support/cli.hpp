// Unified command-line parser for every binary in the repository (tools,
// benchmarks, examples). Flags are registered with a typed target (or a
// custom setter), the parser matches `--name` / `--name=value` arguments
// against the registry, fills positionals in declaration order, and
// generates the `--help` text from the registrations — so a binary's usage
// string can never drift from what it actually accepts. Unknown flags and
// malformed values produce a Status error naming the offending argument
// instead of a silent fallthrough.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "support/status.hpp"

namespace hipacc::support {

/// Declarative flag registry + parser. Registration order is help order.
///
///   CliParser cli("hipacc-compile", "source-to-source compiler CLI");
///   cli.String("device", &device_name, "NAME", "target GPU");
///   cli.Bool("smem", &use_smem, "stage tiles through scratchpad");
///   cli.Positional("kernel", &input_path, "kernel.hipacc file", true);
///   Status s = cli.Parse(argc, argv);
///   if (cli.help_requested()) { fputs(cli.Help().c_str(), stdout); return 0; }
///   if (!s.ok()) { fprintf(stderr, "%s\n%s", ...); return 2; }
class CliParser {
 public:
  /// `program` appears in the usage line; `summary` below it.
  explicit CliParser(std::string program, std::string summary = "");

  /// Value-less switch: `--name` sets *value to true.
  CliParser& Bool(const std::string& name, bool* value,
                  const std::string& help);
  /// `--name=N` parsed as int; a non-numeric value is a parse error.
  CliParser& Int(const std::string& name, int* value,
                 const std::string& value_name, const std::string& help);
  /// `--name=TEXT` stored verbatim.
  CliParser& String(const std::string& name, std::string* value,
                    const std::string& value_name, const std::string& help);
  /// `--name=VALUE` routed through `setter`; the returned Status surfaces
  /// from Parse (for enum vocabularies, device lookups, WxH geometries).
  CliParser& Value(const std::string& name, const std::string& value_name,
                   const std::string& help,
                   std::function<Status(const std::string&)> setter);
  /// Value-less switch routed through `setter` (e.g. --list-devices).
  CliParser& Switch(const std::string& name, const std::string& help,
                    std::function<Status()> setter);

  /// Non-flag argument, filled in declaration order. Required positionals
  /// missing after a parse (without --help) are an error.
  CliParser& Positional(const std::string& name, std::string* value,
                        const std::string& help, bool required = true);

  /// Matches argv[1..) against the registry. `--help` short-circuits: the
  /// rest of the line is not validated and help_requested() turns true.
  /// Errors name the argument: unknown flag, missing/forbidden value,
  /// unparsable int, missing required positional, surplus positional.
  Status Parse(int argc, const char* const* argv);

  bool help_requested() const noexcept { return help_requested_; }

  /// Generated from the registrations: usage line, summary, one aligned row
  /// per flag (`--name=VALUE  help`) and positional.
  std::string Help() const;

  /// Convenience front door shared by the binaries: parses, prints Help()
  /// to stdout on --help (returns 0), prints the error to stderr on failure
  /// (returns 2), and returns -1 when the program should continue.
  int HandleArgs(int argc, const char* const* argv);

 private:
  struct Flag {
    std::string name;        // without the leading "--"
    std::string value_name;  // empty for value-less switches
    std::string help;
    bool takes_value = false;
    std::function<Status(const std::string&)> setter;  // value flags
    std::function<Status()> action;                    // switches
  };
  struct PositionalArg {
    std::string name;
    std::string help;
    bool required = true;
    std::string* value = nullptr;
  };

  const Flag* FindFlag(const std::string& name) const;

  std::string program_;
  std::string summary_;
  std::vector<Flag> flags_;
  std::vector<PositionalArg> positionals_;
  bool help_requested_ = false;
};

}  // namespace hipacc::support
