# Empty compiler generated dependencies file for table9_gaussian_quadro.
# This may be replaced when dependencies are built.
