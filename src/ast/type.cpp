#include "ast/type.hpp"

namespace hipacc::ast {

const char* to_string(ScalarType type) noexcept {
  switch (type) {
    case ScalarType::kVoid: return "void";
    case ScalarType::kBool: return "bool";
    case ScalarType::kInt: return "int";
    case ScalarType::kUInt: return "unsigned int";
    case ScalarType::kFloat: return "float";
  }
  return "?";
}

ScalarType Promote(ScalarType a, ScalarType b) noexcept {
  if (a == ScalarType::kFloat || b == ScalarType::kFloat)
    return ScalarType::kFloat;
  if (a == ScalarType::kUInt || b == ScalarType::kUInt)
    return ScalarType::kUInt;
  if (a == ScalarType::kInt || b == ScalarType::kInt) return ScalarType::kInt;
  return ScalarType::kInt;  // bool op bool promotes to int, as in C
}

bool IsArithmetic(ScalarType type) noexcept {
  return type == ScalarType::kInt || type == ScalarType::kUInt ||
         type == ScalarType::kFloat;
}

int SizeOf(ScalarType type) noexcept {
  switch (type) {
    case ScalarType::kVoid: return 0;
    case ScalarType::kBool: return 1;
    default: return 4;
  }
}

}  // namespace hipacc::ast
