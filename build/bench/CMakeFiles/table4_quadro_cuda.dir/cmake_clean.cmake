file(REMOVE_RECURSE
  "CMakeFiles/table4_quadro_cuda.dir/table4_quadro_cuda.cpp.o"
  "CMakeFiles/table4_quadro_cuda.dir/table4_quadro_cuda.cpp.o.d"
  "table4_quadro_cuda"
  "table4_quadro_cuda.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_quadro_cuda.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
