// Table of math builtins the DSL supports, with the CUDA and OpenCL
// spellings (paper Section V-A: CUDA keeps type suffixes — expf — while
// OpenCL overloads the unsuffixed names) and a cost class used by the
// performance model (special-function-unit ops are far more expensive than
// plain ALU ops — the reason constant-memory masks pay off).
#pragma once

#include <optional>
#include <string>

#include "ast/type.hpp"

namespace hipacc::ast {

/// Execution cost class of a builtin on the modelled GPUs.
enum class OpCost {
  kAlu,    ///< single ALU issue (fabs, fmin, floor, ...)
  kSfu,    ///< special-function unit (exp, log, sqrt, sin, cos, rsqrt)
  kMulti,  ///< expanded into a multi-instruction sequence (pow, fmod)
};

struct BuiltinFn {
  std::string name;         ///< canonical (IR) name, the unsuffixed base
  int arity = 1;
  ScalarType result = ScalarType::kFloat;
  std::string cuda_name;    ///< suffixed CUDA spelling
  std::string opencl_name;  ///< OpenCL spelling
  /// Hardware-accelerated CUDA intrinsic (e.g. __expf), empty if none. The
  /// compiler supports mapping to these but the evaluation does not use it.
  std::string cuda_intrinsic;
  OpCost cost = OpCost::kAlu;
};

/// Looks up a builtin by canonical, CUDA, or OpenCL spelling; the IR always
/// stores the canonical name. Returns nullopt for unsupported functions
/// (the compiler reports an error to the user in that case).
std::optional<BuiltinFn> FindBuiltin(const std::string& name);

}  // namespace hipacc::ast
