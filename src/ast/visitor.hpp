// Traversal and rewriting utilities over the IR. Passes are written either
// as read-only visits (analyses) or as bottom-up rewrites (lowerings): the
// rewriter rebuilds nodes whose children changed, sharing untouched subtrees.
#pragma once

#include <functional>

#include "ast/stmt.hpp"

namespace hipacc::ast {

/// Invokes `fn` for every expression node in pre-order.
void VisitExprs(const ExprPtr& expr, const std::function<void(const Expr&)>& fn);

/// Invokes `fn` for every expression reachable from a statement tree
/// (initialisers, conditions, loop bounds, coordinates, values).
void VisitExprs(const StmtPtr& stmt, const std::function<void(const Expr&)>& fn);

/// Invokes `fn` for every statement node in pre-order.
void VisitStmts(const StmtPtr& stmt, const std::function<void(const Stmt&)>& fn);

/// Bottom-up expression rewriter. Children are rewritten first; then `fn` is
/// offered the node (with fresh children). Returning nullptr keeps the node.
using ExprRewriteFn = std::function<ExprPtr(const Expr&)>;

ExprPtr RewriteExpr(const ExprPtr& expr, const ExprRewriteFn& fn);

/// Applies RewriteExpr to every expression inside a statement tree,
/// rebuilding statements whose expressions or children changed.
StmtPtr RewriteStmtExprs(const StmtPtr& stmt, const ExprRewriteFn& fn);

/// Deep-copies an expression with new argument list (all other fields kept).
ExprPtr WithArgs(const Expr& node, std::vector<ExprPtr> args);

}  // namespace hipacc::ast
