#include "runtime/kernel_runner.hpp"

namespace hipacc::runtime {

KernelRunner::KernelRunner(frontend::KernelSource source)
    : KernelRunner(std::move(source), RunOptions{}) {}

KernelRunner::KernelRunner(frontend::KernelSource source, RunOptions options)
    : source_(std::move(source)), options_(std::move(options)) {}

void KernelRunner::set_device(hw::DeviceSpec device) {
  options_.device = std::move(device);
  // Invalidate the current executable; the next launch recompiles (a cache
  // hit when this device/extent pair was compiled before).
  executable_.reset();
  width_ = height_ = -1;
}

Status KernelRunner::EnsureCompiled(int width, int height) {
  if (executable_ && width == width_ && height == height_)
    return Status::Ok();

  compiler::CompileOptions copts = MakeCompileOptions(options_, width, height);
  Result<compiler::CompiledKernel> compiled = compiler::Compile(source_, copts);
  if (!compiled.ok()) return compiled.status();

  executable_.emplace(std::move(compiled).take(), options_.device,
                      options_.sim_options());
  if (options_.trace != nullptr) executable_->set_trace(options_.trace);
  width_ = width;
  height_ = height;
  return Status::Ok();
}

Status KernelRunner::EnsureCompiledFor(const BindingSet& bindings) {
  if (bindings.output() == nullptr)
    return Status::Invalid("no output image bound");
  return EnsureCompiled(bindings.output()->width(),
                        bindings.output()->height());
}

Result<sim::LaunchStats> KernelRunner::Run(const BindingSet& bindings) {
  HIPACC_RETURN_IF_ERROR(EnsureCompiledFor(bindings));
  return executable_->Run(bindings);
}

Result<sim::LaunchStats> KernelRunner::Measure(const BindingSet& bindings,
                                               int samples_per_region) {
  HIPACC_RETURN_IF_ERROR(EnsureCompiledFor(bindings));
  return executable_->Measure(bindings, std::nullopt, samples_per_region);
}

}  // namespace hipacc::runtime
