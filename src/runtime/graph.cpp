#include "runtime/graph.hpp"

#include <algorithm>
#include <map>
#include <mutex>

#include "compiler/cache.hpp"
#include "compiler/driver.hpp"
#include "compiler/separate.hpp"
#include "runtime/bindings.hpp"
#include "runtime/host_exec.hpp"
#include "runtime/scheduler.hpp"
#include "sim/simulator.hpp"
#include "sim/trace.hpp"
#include "support/parallel_for.hpp"
#include "support/string_utils.hpp"

namespace hipacc::runtime {

PipelineGraph& PipelineGraph::AddNode(Node node) {
  for (const Node& existing : nodes_) {
    if (existing.name == node.name) {
      if (deferred_error_.ok())
        deferred_error_ = Status::Invalid("image '" + node.name +
                                          "' is produced by more than one "
                                          "stage");
      return *this;
    }
  }
  nodes_.push_back(std::move(node));
  return *this;
}

PipelineGraph& PipelineGraph::Source(std::string name, int width, int height) {
  if (width <= 0 || height <= 0) {
    if (deferred_error_.ok())
      deferred_error_ =
          Status::Invalid("source '" + name + "' needs a positive extent");
    return *this;
  }
  Node node;
  node.kind = Node::Kind::kSource;
  node.name = std::move(name);
  node.width = width;
  node.height = height;
  return AddNode(std::move(node));
}

PipelineGraph& PipelineGraph::Kernel(
    std::string name, frontend::KernelSource kernel,
    std::vector<std::pair<std::string, std::string>> inputs,
    std::vector<std::pair<std::string, double>> scalars) {
  if (inputs.empty()) {
    if (deferred_error_.ok())
      deferred_error_ = Status::Invalid(
          "kernel stage '" + name +
          "' needs at least one input (its extent is inferred from the "
          "first)");
    return *this;
  }
  Node node;
  node.kind = Node::Kind::kKernel;
  node.name = std::move(name);
  node.kernel = std::move(kernel);
  node.inputs = std::move(inputs);
  node.scalars = std::move(scalars);
  return AddNode(std::move(node));
}

PipelineGraph& PipelineGraph::Decimate2(std::string name, std::string input) {
  Node node;
  node.kind = Node::Kind::kDecimate;
  node.name = std::move(name);
  node.inputs.emplace_back(std::string(), std::move(input));
  return AddNode(std::move(node));
}

PipelineGraph& PipelineGraph::ZeroUpsample(std::string name, std::string input,
                                           int width, int height) {
  if (width <= 0 || height <= 0) {
    if (deferred_error_.ok())
      deferred_error_ = Status::Invalid("upsample stage '" + name +
                                        "' needs a positive target extent");
    return *this;
  }
  Node node;
  node.kind = Node::Kind::kUpsample;
  node.name = std::move(name);
  node.inputs.emplace_back(std::string(), std::move(input));
  node.width = width;
  node.height = height;
  return AddNode(std::move(node));
}

PipelineGraph& PipelineGraph::Output(std::string name) {
  if (std::find(outputs_.begin(), outputs_.end(), name) == outputs_.end())
    outputs_.push_back(std::move(name));
  return *this;
}

/// All state of one Run(): the fused stage list, compiled artifacts, live
/// buffers, and reference counts. A fresh GraphRun per call keeps
/// PipelineGraph itself reusable and Run() re-entrant over the same graph.
struct GraphRun {
  using Node = PipelineGraph::Node;

  /// One schedulable stage after fusion. `source` + `chain` reproduce the
  /// compiled kernel through the driver's fuse pass; `effective` is the
  /// materialised fused source used for further legality checks.
  struct Stage {
    Node::Kind kind = Node::Kind::kSource;
    std::string name;
    frontend::KernelSource source;
    std::vector<compiler::FusionRequest> chain;
    frontend::KernelSource effective;
    std::vector<std::pair<std::string, std::string>> inputs;
    /// extra-output name -> virtual image: further images this stage
    /// produces after horizontal fusion (the absorbed siblings' outputs).
    std::vector<std::pair<std::string, std::string>> extra_images;
    std::vector<std::pair<std::string, double>> scalars;
    int width = 0;
    int height = 0;
    compiler::CompiledKernel compiled;
  };

  PipelineGraph& graph;
  const GraphOptions& options;
  sim::TraceSink* trace;
  std::vector<Stage> stages;
  std::map<std::string, int> producer;  ///< image name -> stage index

  // Execution state.
  std::mutex mutex;
  std::map<std::string, BufferPool::ImagePtr> buffers;
  std::map<std::string, int> refcount;
  const PipelineGraph::InputBindings* inputs = nullptr;

  GraphRun(PipelineGraph& g, const GraphOptions& o)
      : graph(g), options(o), trace(o.run.trace) {}

  Status Validate(const PipelineGraph::InputBindings& in,
                  const PipelineGraph::OutputBindings& out);
  Result<std::vector<int>> OrderAndExtents();
  void PlanSeparation();
  void PlanFusion();
  Status CompileStages();
  DagSpec BuildDag() const;
  Status ExecStage(int index);
  Status RunKernelStage(Stage& stage);
  void ReleaseConsumed(const Stage& stage);
};

Status GraphRun::Validate(const PipelineGraph::InputBindings& in,
                          const PipelineGraph::OutputBindings& out) {
  for (std::size_t i = 0; i < graph.nodes_.size(); ++i)
    producer[graph.nodes_[i].name] = static_cast<int>(i);
  for (const Node& node : graph.nodes_) {
    for (const auto& [accessor, image] : node.inputs) {
      if (producer.find(image) == producer.end())
        return Status::Invalid("stage '" + node.name +
                               "' consumes undeclared image '" + image + "'");
      if (image == node.name)
        return Status::Invalid("pipeline graph has a cycle: " + node.name +
                               " -> " + node.name);
    }
  }
  for (const std::string& name : graph.outputs_) {
    if (producer.find(name) == producer.end())
      return Status::Invalid("output '" + name +
                             "' is not produced by any stage");
  }
  for (const auto& [name, image] : out) {
    if (image == nullptr)
      return Status::Invalid("output '" + name + "' bound to null");
    if (std::find(graph.outputs_.begin(), graph.outputs_.end(), name) ==
        graph.outputs_.end())
      return Status::Invalid("'" + name +
                             "' is not declared as a graph output");
  }
  for (const Node& node : graph.nodes_) {
    if (node.kind != Node::Kind::kSource) continue;
    const HostImage<float>* bound = nullptr;
    for (const auto& [name, image] : in)
      if (name == node.name) bound = image;
    if (bound == nullptr)
      return Status::Invalid("source '" + node.name + "' is not bound");
    if (bound->width() != node.width || bound->height() != node.height)
      return Status::Invalid(StrFormat(
          "source '%s' declared %dx%d but bound %dx%d", node.name.c_str(),
          node.width, node.height, bound->width(), bound->height()));
  }
  return Status::Ok();
}

Result<std::vector<int>> GraphRun::OrderAndExtents() {
  // Cycle check runs on the *declared* graph so the diagnostic speaks the
  // user's stage names; fusion afterwards preserves acyclicity.
  DagSpec dag;
  dag.dependencies.assign(graph.nodes_.size(), 0);
  dag.consumers.assign(graph.nodes_.size(), {});
  for (std::size_t i = 0; i < graph.nodes_.size(); ++i) {
    for (const auto& [accessor, image] : graph.nodes_[i].inputs) {
      dag.dependencies[i] += 1;
      dag.consumers[static_cast<std::size_t>(producer.at(image))].push_back(
          static_cast<int>(i));
    }
  }
  Result<std::vector<int>> order = TopologicalOrder(
      dag, [this](int i) { return graph.nodes_[static_cast<std::size_t>(i)].name; });
  if (!order.ok()) return order.status();

  stages.resize(graph.nodes_.size());
  for (std::size_t i = 0; i < graph.nodes_.size(); ++i) {
    const Node& node = graph.nodes_[i];
    Stage& stage = stages[i];
    stage.kind = node.kind;
    stage.name = node.name;
    stage.source = node.kernel;
    stage.effective = node.kernel;
    stage.inputs = node.inputs;
    stage.scalars = node.scalars;
    stage.width = node.width;
    stage.height = node.height;
  }
  for (int index : order.value()) {
    Stage& stage = stages[static_cast<std::size_t>(index)];
    if (stage.kind == Node::Kind::kSource) continue;
    const Stage& first =
        stages[static_cast<std::size_t>(producer.at(stage.inputs.front().second))];
    switch (stage.kind) {
      case Node::Kind::kKernel:
        stage.width = first.width;
        stage.height = first.height;
        break;
      case Node::Kind::kDecimate:
        stage.width = (first.width + 1) / 2;
        stage.height = (first.height + 1) / 2;
        break;
      case Node::Kind::kUpsample:
        if (stage.width < first.width || stage.height < first.height)
          return Status::Invalid(StrFormat(
              "upsample stage '%s' target %dx%d is smaller than its input "
              "%dx%d",
              stage.name.c_str(), stage.width, stage.height, first.width,
              first.height));
        break;
      case Node::Kind::kSource:
        break;
    }
  }
  return order;
}

void GraphRun::PlanSeparation() {
  if (!options.separate) return;
  // Runs before fusion: a fused convolution body no longer matches the
  // canonical form, while a separated column pass is still a convolution
  // a point-wise consumer can fuse into afterwards.
  const std::size_t count = stages.size();
  for (std::size_t s = 0; s < count; ++s) {
    if (stages[s].kind != Node::Kind::kKernel) continue;
    if (stages[s].inputs.size() != 1) continue;
    std::optional<compiler::SeparatedStages> sep =
        compiler::SeparateConvolution(stages[s].effective);
    if (!sep) continue;
    const std::string intermediate = stages[s].name + ".sep_row";
    if (producer.find(intermediate) != producer.end()) continue;

    // The appended row stage consumes the original input edge and produces
    // the intermediate virtual image; the original slot becomes the column
    // pass so the stage keeps producing its externally visible name.
    Stage row;
    row.kind = Node::Kind::kKernel;
    row.name = intermediate;
    row.source = sep->row;
    row.effective = std::move(sep->row);
    row.inputs = stages[s].inputs;
    row.width = stages[s].width;
    row.height = stages[s].height;
    const std::string accessor = row.inputs.front().first;
    stages.push_back(std::move(row));  // may reallocate: re-index below

    Stage& col = stages[s];
    col.source = sep->col;
    col.effective = std::move(sep->col);
    col.inputs = {{accessor, intermediate}};
    producer[intermediate] = static_cast<int>(stages.size() - 1);
    if (trace != nullptr) trace->IncrementCounter("separate.edges");
  }
}

void GraphRun::PlanFusion() {
  if (options.fuse == compiler::FusionMode::kOff) return;
  compiler::FusionPlannerOptions popts;
  popts.mode = options.fuse;
  popts.compile = MakeCompileOptions(options.run, 0, 0);
  std::vector<compiler::CandidateDecision> decisions;
  popts.decisions = &decisions;

  while (true) {
    // The planner sees the current (post-separation, partially fused) stage
    // list; one accepted step is applied per round until none remains.
    std::vector<compiler::PlannerStage> view(stages.size());
    for (std::size_t i = 0; i < stages.size(); ++i) {
      const Stage& stage = stages[i];
      view[i].fusable =
          stage.kind == Node::Kind::kKernel && !stage.name.empty();
      view[i].name = stage.name;
      view[i].source = &stage.effective;
      view[i].inputs = stage.inputs;
      for (const auto& [output_name, image] : stage.extra_images)
        view[i].extra_images.push_back(image);
      view[i].width = stage.width;
      view[i].height = stage.height;
      view[i].external =
          std::find(graph.outputs_.begin(), graph.outputs_.end(),
                    stage.name) != graph.outputs_.end();
    }
    std::optional<compiler::PlannedFusion> plan =
        compiler::PlanNextFusion(view, popts);
    if (!plan) break;

    Stage& into = stages[static_cast<std::size_t>(plan->into)];
    Stage& retired = stages[static_cast<std::size_t>(plan->retired)];
    if (plan->request.kind == compiler::FuseKind::kHorizontal) {
      // Sibling merge: `into` absorbs `retired`, whose image it keeps
      // producing as a named extra output. The sibling's shared-input edge
      // collapsed into `into`'s accessor; its other inputs carry over.
      into.chain.push_back(plan->request);
      into.effective = std::move(plan->fused);
      for (const auto& [accessor, image] : retired.inputs)
        if (accessor != plan->request.peer_accessor)
          into.inputs.emplace_back(accessor, image);
      into.scalars.insert(into.scalars.end(), retired.scalars.begin(),
                          retired.scalars.end());
      into.extra_images.emplace_back(plan->request.output_name, retired.name);
      producer[retired.name] = plan->into;
    } else {
      // Producer→consumer merge (point or halo): the consumer's slot now
      // compiles the producer's source with the consumer appended to the
      // fusion chain, consumes the producer's inputs plus its own remaining
      // ones, and still produces the consumer's image. The intermediate
      // image disappears.
      for (std::size_t e = 0; e < into.inputs.size(); ++e) {
        if (into.inputs[e].first == plan->request.accessor &&
            into.inputs[e].second == retired.name) {
          into.inputs.erase(into.inputs.begin() +
                            static_cast<std::ptrdiff_t>(e));
          break;
        }
      }
      into.chain = std::move(retired.chain);
      into.chain.push_back(plan->request);
      into.source = retired.source;
      into.effective = std::move(plan->fused);
      into.inputs.insert(into.inputs.begin(), retired.inputs.begin(),
                         retired.inputs.end());
      into.scalars.insert(into.scalars.end(), retired.scalars.begin(),
                          retired.scalars.end());
      producer[into.name] = plan->into;
      producer.erase(retired.name);
    }
    // Retire the absorbed stage in place (erasing would invalidate the
    // `producer` index map); BuildDag skips retired stages.
    retired.kind = Node::Kind::kSource;
    retired.inputs.clear();
    retired.name.clear();
    if (trace != nullptr) {
      trace->IncrementCounter("graph.fused_edges");
      trace->IncrementCounter(std::string("graph.fused.") +
                              compiler::to_string(plan->request.kind));
    }
  }

  // One decision per candidate (the planner re-examines surviving rejects
  // every round): rejected candidates feed the fuse.rejected.* counters and
  // the --explain-fusion sink.
  compiler::DedupeDecisions(&decisions);
  if (trace != nullptr) {
    for (const compiler::CandidateDecision& d : decisions) {
      if (d.accepted) continue;
      trace->IncrementCounter(d.legal ? "fuse.rejected.profitability"
                                      : "fuse.rejected.legality");
    }
  }
  if (options.explain != nullptr)
    options.explain->insert(options.explain->end(), decisions.begin(),
                            decisions.end());
}

Status GraphRun::CompileStages() {
  sim::TraceSpan span(trace, "graph compile", "graph");
  std::vector<Status> statuses(stages.size());
  // Concurrent compilation through the (thread-safe) compilation cache;
  // repeated extents and repeated Run() calls hit instead of recompiling.
  ParallelFor(0, static_cast<int>(stages.size()), [&](int i) {
    Stage& stage = stages[static_cast<std::size_t>(i)];
    if (stage.kind != Node::Kind::kKernel) return;
    compiler::CompileOptions copts =
        MakeCompileOptions(options.run, stage.width, stage.height);
    copts.fusion = stage.chain;
    Result<compiler::CompiledKernel> compiled =
        compiler::Compile(stage.source, copts);
    if (!compiled.ok()) {
      statuses[static_cast<std::size_t>(i)] =
          Status::Invalid("stage '" + stage.name +
                          "': " + compiled.status().message());
      return;
    }
    stage.compiled = std::move(compiled).take();
  });
  for (const Status& status : statuses) HIPACC_RETURN_IF_ERROR(status);
  return Status::Ok();
}

DagSpec GraphRun::BuildDag() const {
  DagSpec dag;
  dag.dependencies.assign(stages.size(), 0);
  dag.consumers.assign(stages.size(), {});
  for (std::size_t i = 0; i < stages.size(); ++i) {
    // Retired fusion producers keep their slot but have no inputs and no
    // name; they run as zero-cost no-ops.
    for (const auto& [accessor, image] : stages[i].inputs) {
      dag.dependencies[i] += 1;
      dag.consumers[static_cast<std::size_t>(producer.at(image))].push_back(
          static_cast<int>(i));
    }
  }
  return dag;
}

Status GraphRun::RunKernelStage(Stage& stage) {
  BindingSet bindings;
  for (const auto& [accessor, image] : stage.inputs) {
    dsl::Image<float>* bound = nullptr;
    {
      std::lock_guard<std::mutex> lock(mutex);
      bound = buffers.at(image).get();
    }
    bindings.Input(accessor, *bound);
  }
  dsl::Image<float>* out = nullptr;
  {
    std::lock_guard<std::mutex> lock(mutex);
    out = buffers.at(stage.name).get();
  }
  bindings.Output(*out);
  for (const auto& [output_name, image] : stage.extra_images) {
    dsl::Image<float>* extra = nullptr;
    {
      std::lock_guard<std::mutex> lock(mutex);
      extra = buffers.at(image).get();
    }
    bindings.Output(output_name, *extra);
  }
  for (const auto& [name, value] : stage.scalars) bindings.Scalar(name, value);

  const compiler::CompiledKernel& ck = stage.compiled;
  Result<LaunchHolder> holder =
      BuildLaunch(ck.device_ir, ck.config.config, bindings);
  if (!holder.ok()) return holder.status();
  sim::Launch& launch = holder.value().launch;
  launch.programs = ck.bytecode.get();

  const bool host_ok =
      options.executor != GraphOptions::Executor::kSimulator &&
      ck.bytecode != nullptr &&
      HostExecSupports(*ck.bytecode, launch.width, launch.height,
                       ck.device_ir.bh_window.half_x,
                       ck.device_ir.bh_window.half_y);
  if (options.executor == GraphOptions::Executor::kHost && !host_ok)
    return Status::Unimplemented(
        "stage '" + stage.name +
        "' is not supported by the host executor (GraphOptions::Executor::"
        "kHost)");
  if (host_ok) {
    // Inside a multi-worker schedule each stage runs its rows serially —
    // the DAG branches are the parallelism; a lone worker hands the row
    // loop all cores instead.
    HostExecOptions exec_options;
    exec_options.threads = options.workers == 1 ? 0 : 1;
    HIPACC_RETURN_IF_ERROR(RunOnHost(launch, ck.device_ir.bh_window.half_x,
                                     ck.device_ir.bh_window.half_y,
                                     exec_options));
    if (trace != nullptr) trace->IncrementCounter("graph.launches.host");
    return Status::Ok();
  }
  sim::Simulator simulator(options.run.device, options.run.sim_options());
  Result<sim::LaunchStats> stats = simulator.Execute(launch);
  if (!stats.ok()) return stats.status();
  if (trace != nullptr) {
    trace->IncrementCounter("graph.launches.sim");
    // Modelled device time of the whole graph, in microseconds — what the
    // fusion benches gate on (host wall-clock would mis-charge the halo
    // recompute the device model absorbs in its memory bounds).
    trace->IncrementCounter(
        "graph.modelled_us",
        static_cast<long long>(stats.value().timing.total_ms * 1000.0));
  }
  return Status::Ok();
}

void GraphRun::ReleaseConsumed(const Stage& stage) {
  for (const auto& [accessor, image] : stage.inputs) {
    std::lock_guard<std::mutex> lock(mutex);
    auto it = refcount.find(image);
    if (it == refcount.end() || --it->second > 0) continue;
    refcount.erase(it);
    auto buffer = buffers.find(image);
    if (buffer != buffers.end()) {
      graph.pool_.Release(std::move(buffer->second));
      buffers.erase(buffer);
    }
  }
}

Status GraphRun::ExecStage(int index) {
  Stage& stage = stages[static_cast<std::size_t>(index)];
  if (stage.name.empty()) return Status::Ok();  // retired fusion producer
  sim::TraceSpan span(trace, "stage " + stage.name, "graph");

  BufferPool::ImagePtr out =
      graph.pool_.Acquire(stage.width, stage.height, trace);
  {
    std::lock_guard<std::mutex> lock(mutex);
    buffers[stage.name] = std::move(out);
  }
  // A horizontally fused stage fills several virtual images in one launch;
  // each gets its own pooled buffer under its declared name.
  for (const auto& [output_name, image] : stage.extra_images) {
    BufferPool::ImagePtr extra =
        graph.pool_.Acquire(stage.width, stage.height, trace);
    std::lock_guard<std::mutex> lock(mutex);
    buffers[image] = std::move(extra);
  }

  Status status = Status::Ok();
  switch (stage.kind) {
    case Node::Kind::kSource: {
      const HostImage<float>* host = nullptr;
      for (const auto& [name, image] : *inputs)
        if (name == stage.name) host = image;
      std::lock_guard<std::mutex> lock(mutex);
      buffers.at(stage.name)->CopyFrom(*host);
      break;
    }
    case Node::Kind::kDecimate: {
      dsl::Image<float>* in = nullptr;
      dsl::Image<float>* dst = nullptr;
      {
        std::lock_guard<std::mutex> lock(mutex);
        in = buffers.at(stage.inputs.front().second).get();
        dst = buffers.at(stage.name).get();
      }
      for (int y = 0; y < stage.height; ++y)
        for (int x = 0; x < stage.width; ++x)
          dst->at(x, y) = in->at(2 * x, 2 * y);
      break;
    }
    case Node::Kind::kUpsample: {
      dsl::Image<float>* in = nullptr;
      dsl::Image<float>* dst = nullptr;
      {
        std::lock_guard<std::mutex> lock(mutex);
        in = buffers.at(stage.inputs.front().second).get();
        dst = buffers.at(stage.name).get();
      }
      for (int y = 0; y < stage.height; ++y)
        for (int x = 0; x < stage.width; ++x) dst->at(x, y) = 0.0f;
      for (int y = 0; y < in->height(); ++y)
        for (int x = 0; x < in->width(); ++x) {
          const int tx = 2 * x, ty = 2 * y;
          if (tx < stage.width && ty < stage.height)
            dst->at(tx, ty) = in->at(x, y);
        }
      break;
    }
    case Node::Kind::kKernel:
      status = RunKernelStage(stage);
      break;
  }
  if (!status.ok()) return status;
  if (trace != nullptr) trace->IncrementCounter("graph.stages");
  ReleaseConsumed(stage);
  return Status::Ok();
}

Status PipelineGraph::Run(const InputBindings& inputs,
                          const OutputBindings& outputs,
                          const GraphOptions& options) {
  HIPACC_RETURN_IF_ERROR(deferred_error_);
  if (nodes_.empty()) return Status::Invalid("pipeline graph has no stages");

  GraphRun run(*this, options);
  sim::TraceSpan span(run.trace, "graph run", "graph");
  HIPACC_RETURN_IF_ERROR(run.Validate(inputs, outputs));
  {
    Result<std::vector<int>> order = run.OrderAndExtents();
    if (!order.ok()) return order.status();
  }
  run.PlanSeparation();
  run.PlanFusion();
  HIPACC_RETURN_IF_ERROR(run.CompileStages());

  // A consumed image is released to the pool once its last consumer edge
  // ran; externally visible outputs hold one extra reference until copied.
  run.inputs = &inputs;
  for (const GraphRun::Stage& stage : run.stages)
    for (const auto& [accessor, image] : stage.inputs) run.refcount[image] += 1;
  for (const std::string& name : outputs_)
    if (run.producer.find(name) != run.producer.end()) run.refcount[name] += 1;

  const DagSpec dag = run.BuildDag();
  HIPACC_RETURN_IF_ERROR(RunDag(dag, options.workers,
                                [&run](int index) { return run.ExecStage(index); }));

  for (const auto& [name, image] : outputs) {
    auto it = run.buffers.find(name);
    if (it == run.buffers.end())
      return Status::Internal("output '" + name + "' was never produced");
    *image = it->second->getData();
  }
  // Return every remaining buffer (outputs, unconsumed leaves) to the pool
  // for the next Run().
  for (auto& [name, buffer] : run.buffers) pool_.Release(std::move(buffer));
  if (run.trace != nullptr) run.trace->IncrementCounter("graph.runs");
  return Status::Ok();
}

}  // namespace hipacc::runtime
