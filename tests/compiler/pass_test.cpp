// Pass-manager behaviour: pipeline composition, per-pass timings and
// diagnostics, trace spans, dump hooks, failure propagation, and the
// Retarget fast path that skips lowering when codegen options are
// unchanged.
#include <gtest/gtest.h>

#include "compiler/driver.hpp"
#include "compiler/pass.hpp"
#include "ops/kernel_sources.hpp"
#include "sim/trace.hpp"

namespace hipacc {
namespace {

frontend::KernelSource Source() {
  return ops::BilateralMaskSource(1, ast::BoundaryMode::kClamp);
}

TEST(PassManagerTest, FullPipelineHasCanonicalOrder) {
  const std::vector<std::string> expected = {
      "fuse", "parse", "lower", "estimate", "select_config", "emit",
      "bytecode"};
  EXPECT_EQ(compiler::BuildCompilePipeline().names(), expected);
  EXPECT_EQ(compiler::DefaultPassNames(), expected);
  const std::vector<std::string> device = {"lower", "estimate",
                                           "select_config", "emit", "bytecode"};
  EXPECT_EQ(compiler::BuildDevicePipeline().names(), device);
  const std::vector<std::string> target = {"select_config", "emit", "bytecode"};
  EXPECT_EQ(compiler::BuildTargetPipeline().names(), target);
}

TEST(PassManagerTest, RunProducesArtifactTimingsAndDiagnostics) {
  const frontend::KernelSource source = Source();
  compiler::CompilationContext ctx;
  ctx.source = &source;
  ctx.options.image_width = 512;
  ctx.options.image_height = 512;

  const Status status = compiler::BuildCompilePipeline().Run(ctx);
  ASSERT_TRUE(status.ok()) << status.ToString();

  EXPECT_FALSE(ctx.artifact.decl.name.empty());
  EXPECT_FALSE(ctx.artifact.device_ir.variants.empty());
  EXPECT_FALSE(ctx.artifact.source.empty());
  EXPECT_GT(ctx.artifact.resources.regs_per_thread, 0);

  // One timing per pass, in order; durations are non-negative.
  ASSERT_EQ(ctx.timings.size(), 7u);
  for (size_t i = 0; i < ctx.timings.size(); ++i) {
    EXPECT_EQ(ctx.timings[i].pass, compiler::DefaultPassNames()[i]);
    EXPECT_GE(ctx.timings[i].ms, 0.0);
  }

  // Every pass filed at least one note.
  for (const std::string& name : compiler::DefaultPassNames()) {
    bool found = false;
    for (const compiler::PassDiagnostic& d : ctx.diagnostics)
      found = found || (d.pass == name &&
                        d.severity == compiler::DiagSeverity::kNote);
    EXPECT_TRUE(found) << "no note from pass " << name;
  }
}

TEST(PassManagerTest, PassesRecordTraceSpans) {
  const frontend::KernelSource source = Source();
  sim::TraceSink sink;
  compiler::CompileOptions options;
  options.trace = &sink;
  auto compiled = compiler::Compile(source, options);
  ASSERT_TRUE(compiled.ok());

  const support::Json doc = sink.ToJson();
  const support::Json* events = doc.Find("events");
  ASSERT_NE(events, nullptr);
  std::vector<std::string> names;
  for (size_t i = 0; i < events->size(); ++i) {
    const support::Json& e = (*events)[i];
    EXPECT_EQ(e.Find("category")->string_value(), "compile");
    names.push_back(e.Find("name")->string_value());
  }
  ASSERT_EQ(names.size(), 7u);
  for (size_t i = 0; i < names.size(); ++i)
    EXPECT_EQ(names[i],
              compiler::DefaultPassNames()[i] + " " + compiled.value().decl.name);
}

TEST(PassManagerTest, FailingPassStopsPipelineAndRecordsError) {
  // An unparsable body fails the parse pass; nothing later runs.
  frontend::KernelSource source = Source();
  source.body = "output() = ((";
  compiler::CompilationContext ctx;
  ctx.source = &source;
  const Status status = compiler::BuildCompilePipeline().Run(ctx);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kParseError);
  ASSERT_EQ(ctx.timings.size(), 2u);  // only fuse + parse ran
  bool has_error = false;
  for (const compiler::PassDiagnostic& d : ctx.diagnostics)
    has_error = has_error || (d.pass == "parse" &&
                              d.severity == compiler::DiagSeverity::kError);
  EXPECT_TRUE(has_error);
}

TEST(PassManagerTest, DumpHookFiresAfterNamedPass) {
  const frontend::KernelSource source = Source();
  compiler::CompilationContext ctx;
  ctx.source = &source;
  compiler::PassManager pm = compiler::BuildCompilePipeline();
  std::vector<std::string> dumped;
  pm.set_dump_hook("lower", [&](const compiler::Pass& pass,
                                const compiler::CompilationContext& c) {
    dumped.push_back(pass.name());
    // The artifact already has lowered IR, but no source yet.
    EXPECT_FALSE(c.artifact.device_ir.variants.empty());
    EXPECT_TRUE(c.artifact.source.empty());
  });
  ASSERT_TRUE(pm.Run(ctx).ok());
  EXPECT_EQ(dumped, std::vector<std::string>{"lower"});
}

TEST(RetargetTest, SameOptionsSkipLowerAndEstimate) {
  const frontend::KernelSource source = Source();
  compiler::CompileOptions options;
  options.image_width = 512;
  options.image_height = 512;
  auto compiled = compiler::Compile(source, options);
  ASSERT_TRUE(compiled.ok());

  sim::TraceSink sink;
  compiler::CompileOptions retarget = options;
  retarget.device = hw::FindDevice("GeForce GTX 580").value();
  retarget.trace = &sink;
  auto moved = compiler::Retarget(compiled.value(), retarget);
  ASSERT_TRUE(moved.ok());

  // Only the target-dependent tail ran: no parse/lower/estimate spans.
  const support::Json doc = sink.ToJson();
  const support::Json* events = doc.Find("events");
  ASSERT_NE(events, nullptr);
  std::vector<std::string> names;
  for (size_t i = 0; i < events->size(); ++i)
    names.push_back((*events)[i].Find("name")->string_value());
  ASSERT_EQ(names.size(), 3u);
  const std::string kernel_name = compiled.value().decl.name;
  EXPECT_EQ(names[0], "select_config " + kernel_name);
  EXPECT_EQ(names[1], "emit " + kernel_name);
  EXPECT_EQ(names[2], "bytecode " + kernel_name);

  // The retargeted artifact matches a from-scratch compile bit for bit.
  compiler::CompileOptions fresh = retarget;
  fresh.trace = nullptr;
  auto recompiled = compiler::Compile(source, fresh);
  ASSERT_TRUE(recompiled.ok());
  EXPECT_EQ(moved.value().source, recompiled.value().source);
  EXPECT_EQ(moved.value().config.config, recompiled.value().config.config);
}

TEST(RetargetTest, ChangedCodegenOptionsRelower) {
  const frontend::KernelSource source = Source();
  auto compiled = compiler::Compile(source, {});
  ASSERT_TRUE(compiled.ok());

  sim::TraceSink sink;
  compiler::CompileOptions retarget;
  retarget.codegen.backend = ast::Backend::kOpenCL;
  retarget.trace = &sink;
  auto switched = compiler::Retarget(compiled.value(), retarget);
  ASSERT_TRUE(switched.ok());
  EXPECT_EQ(switched.value().device_ir.backend, ast::Backend::kOpenCL);

  // The backend switch forces the device pipeline: lower and estimate ran.
  bool lowered = false;
  const support::Json doc = sink.ToJson();
  const support::Json* events = doc.Find("events");
  ASSERT_NE(events, nullptr);
  for (size_t i = 0; i < events->size(); ++i)
    if ((*events)[i].Find("name")->string_value().rfind("lower ", 0) == 0)
      lowered = true;
  EXPECT_TRUE(lowered);
}

}  // namespace
}  // namespace hipacc
