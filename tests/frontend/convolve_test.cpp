// The convolve() syntax (paper Listing 9, Section VIII future work):
// unrolling, coefficient constant propagation, reductions, and error cases.
#include <gtest/gtest.h>

#include "ast/visitor.hpp"
#include "frontend/parser.hpp"
#include "ops/kernel_sources.hpp"

namespace hipacc::frontend {
namespace {

using ast::ExprKind;

KernelSource ConvolveSource(const std::string& body,
                            std::vector<float> coeffs = {0.f, 1.f, 0.f, 1.f,
                                                         4.f, 1.f, 0.f, 1.f,
                                                         0.f},
                            bool static_mask = true) {
  KernelSource src;
  src.name = "convolve_test";
  src.accessors = {{"Input", {1, 1}, ast::BoundaryMode::kClamp, 0.0f}};
  ast::MaskInfo mask;
  mask.name = "M";
  mask.size_x = mask.size_y = 3;
  if (static_mask) mask.static_values = std::move(coeffs);
  src.masks = {mask};
  src.body = body;
  return src;
}

TEST(ConvolveTest, UnrollsAndPropagatesCoefficients) {
  auto kernel = ParseKernel(
      ConvolveSource("output() = convolve(M, SUM, M() * Input(M));"));
  ASSERT_TRUE(kernel.ok()) << kernel.status().ToString();
  int reads = 0, mask_reads = 0, loops = 0;
  ast::VisitStmts(kernel.value().body, [&](const ast::Stmt& s) {
    if (s.kind == ast::StmtKind::kFor) ++loops;
  });
  ast::VisitExprs(kernel.value().body, [&](const ast::Expr& e) {
    if (e.kind == ExprKind::kAccessorRead) ++reads;
    if (e.kind == ExprKind::kMaskRead) ++mask_reads;
  });
  EXPECT_EQ(loops, 0);       // fully unrolled
  EXPECT_EQ(mask_reads, 0);  // coefficients propagated as literals
  EXPECT_EQ(reads, 9);       // one pixel read per tap
}

TEST(ConvolveTest, MatchesListing9Shape) {
  // The exact shape the paper proposes.
  const frontend::KernelSource src =
      ops::GaussianConvolveSource(5, 1.0f, ast::BoundaryMode::kMirror);
  auto kernel = ParseKernel(src);
  ASSERT_TRUE(kernel.ok()) << kernel.status().ToString();
  int reads = 0;
  ast::VisitExprs(kernel.value().body, [&](const ast::Expr& e) {
    if (e.kind == ExprKind::kAccessorRead) ++reads;
  });
  EXPECT_EQ(reads, 25);
}

TEST(ConvolveTest, MinMaxProdReductions) {
  for (const char* reduce : {"MIN", "MAX", "PROD"}) {
    auto kernel = ParseKernel(ConvolveSource(
        std::string("output() = convolve(M, ") + reduce + ", Input(M));"));
    EXPECT_TRUE(kernel.ok()) << reduce << ": " << kernel.status().ToString();
  }
}

TEST(ConvolveTest, ExplicitLiteralMaskIndexPropagates) {
  // M(0, 0) inside the body also becomes a literal (the center coefficient).
  auto kernel = ParseKernel(ConvolveSource(
      "output() = convolve(M, SUM, (M() - M(0, 0)) * Input(M));"));
  ASSERT_TRUE(kernel.ok()) << kernel.status().ToString();
  int mask_reads = 0;
  ast::VisitExprs(kernel.value().body, [&](const ast::Expr& e) {
    if (e.kind == ExprKind::kMaskRead) ++mask_reads;
  });
  EXPECT_EQ(mask_reads, 0);
}

TEST(ConvolveTest, CombinesWithSurroundingExpression) {
  auto kernel = ParseKernel(ConvolveSource(
      "float norm = 8.0f;\n"
      "output() = convolve(M, SUM, M() * Input(M)) / norm;"));
  EXPECT_TRUE(kernel.ok()) << kernel.status().ToString();
}

TEST(ConvolveErrorTest, DynamicMaskRejected) {
  auto result = ParseKernel(
      ConvolveSource("output() = convolve(M, SUM, M() * Input(M));", {},
                     /*static_mask=*/false));
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("compile-time-constant"),
            std::string::npos);
}

TEST(ConvolveErrorTest, UnknownReductionRejected) {
  EXPECT_FALSE(ParseKernel(ConvolveSource(
      "output() = convolve(M, AVG, Input(M));")).ok());
}

TEST(ConvolveErrorTest, NonMaskFirstArgumentRejected) {
  EXPECT_FALSE(ParseKernel(ConvolveSource(
      "output() = convolve(Input, SUM, Input(M));")).ok());
}

TEST(ConvolveErrorTest, NestedConvolveRejected) {
  EXPECT_FALSE(ParseKernel(ConvolveSource(
      "output() = convolve(M, SUM, convolve(M, SUM, Input(M)));")).ok());
}

TEST(ConvolveErrorTest, BareMaskNameOutsideConvolveRejected) {
  EXPECT_FALSE(ParseKernel(ConvolveSource("output() = Input(M);")).ok());
}

}  // namespace
}  // namespace hipacc::frontend
