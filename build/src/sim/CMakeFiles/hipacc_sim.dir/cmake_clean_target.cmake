file(REMOVE_RECURSE
  "libhipacc_sim.a"
)
