
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/codegen/emit.cpp" "src/codegen/CMakeFiles/hipacc_codegen.dir/emit.cpp.o" "gcc" "src/codegen/CMakeFiles/hipacc_codegen.dir/emit.cpp.o.d"
  "/root/repo/src/codegen/lower.cpp" "src/codegen/CMakeFiles/hipacc_codegen.dir/lower.cpp.o" "gcc" "src/codegen/CMakeFiles/hipacc_codegen.dir/lower.cpp.o.d"
  "/root/repo/src/codegen/readwrite.cpp" "src/codegen/CMakeFiles/hipacc_codegen.dir/readwrite.cpp.o" "gcc" "src/codegen/CMakeFiles/hipacc_codegen.dir/readwrite.cpp.o.d"
  "/root/repo/src/codegen/resource_estimator.cpp" "src/codegen/CMakeFiles/hipacc_codegen.dir/resource_estimator.cpp.o" "gcc" "src/codegen/CMakeFiles/hipacc_codegen.dir/resource_estimator.cpp.o.d"
  "/root/repo/src/codegen/scalar_opt.cpp" "src/codegen/CMakeFiles/hipacc_codegen.dir/scalar_opt.cpp.o" "gcc" "src/codegen/CMakeFiles/hipacc_codegen.dir/scalar_opt.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/hipacc_support.dir/DependInfo.cmake"
  "/root/repo/build/src/ast/CMakeFiles/hipacc_ast.dir/DependInfo.cmake"
  "/root/repo/build/src/hwmodel/CMakeFiles/hipacc_hwmodel.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
