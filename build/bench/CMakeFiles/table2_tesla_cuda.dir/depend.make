# Empty dependencies file for table2_tesla_cuda.
# This may be replaced when dependencies are built.
