// Shows the actual artifact of the source-to-source compiler: the CUDA and
// OpenCL source generated for the bilateral filter with mirror boundary
// handling — the 9-region dispatch (Listing 8), constant-memory mask,
// texture reads (Listing 6), and the device-specific configuration chosen by
// Algorithm 2 for several GPUs.
#include <cstdio>

#include "hipacc.hpp"

using namespace hipacc;

int main(int argc, char** argv) {
  const bool full = argc > 1 && std::string(argv[1]) == "--full";
  const int sigma_d = 1;  // 5x5 window keeps the dump readable

  frontend::KernelSource source =
      ops::BilateralMaskSource(sigma_d, ast::BoundaryMode::kMirror);

  for (const ast::Backend backend :
       {ast::Backend::kCuda, ast::Backend::kOpenCL}) {
    compiler::CompileOptions copts;
    copts.codegen.backend = backend;
    copts.codegen.texture = codegen::TexturePolicy::kLinear;
    copts.device = hw::TeslaC2050();
    copts.image_width = 1024;
    copts.image_height = 1024;
    Result<compiler::CompiledKernel> compiled = compiler::Compile(source, copts);
    if (!compiled.ok()) {
      std::fprintf(stderr, "compile error: %s\n",
                   compiled.status().ToString().c_str());
      return 1;
    }
    std::printf("==== %s source (%zu bytes) ====\n", to_string(backend),
                compiled.value().source.size());
    if (full) {
      std::printf("%s\n", compiled.value().source.c_str());
    } else {
      // First 60 lines; pass --full for everything.
      const std::string& text = compiled.value().source;
      size_t pos = 0;
      for (int line = 0; line < 60 && pos != std::string::npos; ++line) {
        const size_t next = text.find('\n', pos);
        std::printf("%.*s\n",
                    static_cast<int>((next == std::string::npos ? text.size()
                                                                : next) -
                                     pos),
                    text.c_str() + pos);
        pos = next == std::string::npos ? next : next + 1;
      }
      std::printf("  ... (run with --full for the complete kernel)\n");
    }
  }

  std::printf("\n==== device-specific configuration selection ====\n");
  for (const auto& device : hw::DeviceDatabase()) {
    compiler::CompileOptions copts;
    copts.device = device;
    copts.image_width = 1024;
    copts.image_height = 1024;
    Result<compiler::CompiledKernel> compiled = compiler::Compile(source, copts);
    if (!compiled.ok()) continue;
    std::printf("  %-18s -> %4dx%-3d  occupancy %3.0f%%  border threads %lld\n",
                device.name.c_str(), compiled.value().config.config.block_x,
                compiled.value().config.config.block_y,
                100.0 * compiled.value().config.occupancy.occupancy,
                compiled.value().config.border_threads);
  }
  return 0;
}
