// Reproduces Figure 4: configuration-space exploration for the bilateral
// filter (13x13 window) on a 4096x4096 image, Tesla C2050, CUDA backend.
// Prints one point per (threads, tiling, pixels-per-thread) configuration —
// execution time vs block size — plus the configuration Algorithm 2 selects
// and the measured optimum. The paper's heuristic pick (32x6) is optimal
// there; ours must be optimal or within ~10% (Section VI-B). The PPT axis
// extends the paper's space: each candidate is recompiled per value, so the
// sweep covers (block config) x (pixels per thread).
//
// The sweep doubles as a profile source: every measured point is recorded
// into a ProfileStore, a second compile is run with profile-guided
// reselection enabled, and the report states the heuristic-vs-learned gap —
// how far Algorithm 2's pick and the measured winner each sit above the
// exploration optimum.
//
//   --explore-jobs=N   parallel measurement workers (0 = all cores);
//                      results are identical for every N, only wall-clock
//                      changes
//   --ppt=N|auto       restrict the sweep to one PPT value (default: sweep
//                      1, 2, 4, 8)
//   --check-reselect   exit non-zero unless the learned pick's gap to the
//                      measured optimum is <= the heuristic's gap
//   --json-out=FILE    BENCH_*.json report path (default BENCH_fig4.json)
//   --trace-out=FILE   Chrome trace_event timeline (chrome://tracing)
//   --sim-engine=E     simulator engine: bytecode (default) or ast
#include <cstdio>
#include <string>

#include "common/table.hpp"
#include "compiler/explore.hpp"
#include "compiler/profile.hpp"
#include "hwmodel/device_db.hpp"
#include "ops/kernel_sources.hpp"
#include "sim/trace.hpp"
#include "support/disk_store.hpp"
#include "support/stopwatch.hpp"

int main(int argc, char** argv) {
  using namespace hipacc;
  const int n = 4096;
  const int sigma_d = 3, sigma_r = 5;
  const hw::DeviceSpec device = hw::TeslaC2050();

  compiler::ExploreOptions eopts;
  std::string json_out = "BENCH_fig4.json";
  std::string trace_out;
  bool check_reselect = false;
  support::CliParser cli = bench::MakeBenchCli(
      "fig4_config_exploration",
      "Figure 4: configuration-space exploration, bilateral 13x13");
  cli.Int("explore-jobs", &eopts.jobs, "N",
          "parallel measurement workers (0 = all cores)");
  cli.Bool("check-reselect", &check_reselect,
           "fail unless the profile-guided pick's gap to the measured "
           "optimum is <= the heuristic's gap");
  cli.String("json-out", &json_out, "FILE", "BENCH_*.json report path");
  cli.String("trace-out", &trace_out, "FILE",
             "Chrome trace_event timeline (chrome://tracing)");
  if (const int code = cli.HandleArgs(argc, argv); code >= 0) return code;
  sim::TraceSink trace;
  if (!trace_out.empty()) eopts.trace = &trace;
  Stopwatch wall;

  frontend::KernelSource source =
      ops::BilateralMaskSource(sigma_d, ast::BoundaryMode::kClamp);
  compiler::CompileOptions copts;
  copts.codegen.backend = ast::Backend::kCuda;
  copts.device = device;
  copts.image_width = n;
  copts.image_height = n;
  if (!trace_out.empty()) copts.trace = &trace;

  // The heuristic pick: pixels_per_thread=0 runs the Algorithm 2 extension
  // that scores (block config x PPT) jointly and keeps the best.
  compiler::CompileOptions auto_opts = copts;
  auto_opts.codegen.pixels_per_thread = 0;
  Result<compiler::CompiledKernel> compiled =
      compiler::Compile(source, auto_opts);
  if (!compiled.ok()) {
    std::fprintf(stderr, "compile failed: %s\n",
                 compiled.status().ToString().c_str());
    return 1;
  }
  const compiler::CompiledKernel& kernel = compiled.value();

  dsl::Image<float> in(n, n), out(n, n);
  runtime::BindingSet bindings;
  bindings.Input("Input", in).Output(out).Scalar("sigma_d", sigma_d).Scalar(
      "sigma_r", sigma_r);

  // Sweep the PPT axis by recompiling per value; each compile's valid
  // configuration set is explored independently and the points merged.
  // Every measured point also lands in the profile store (disk-backed when
  // --cache-dir enables the persistent tier), which feeds the learned pick
  // below.
  compiler::ProfileStore profiles(&support::GlobalDiskStore());
  eopts.profiles = &profiles;
  std::vector<int> ppt_values = {1, 2, 4, 8};
  if (bench::Tuning().ppt > 0) ppt_values = {bench::Tuning().ppt};
  std::vector<compiler::ExplorePoint> points;
  for (const int ppt : ppt_values) {
    compiler::CompileOptions popts = copts;
    popts.codegen.pixels_per_thread = ppt;
    Result<compiler::CompiledKernel> variant =
        compiler::Compile(source, popts);
    if (!variant.ok()) {
      std::fprintf(stderr, "compile (ppt=%d) failed: %s\n", ppt,
                   variant.status().ToString().c_str());
      return 1;
    }
    Result<std::vector<compiler::ExplorePoint>> swept =
        compiler::ExploreConfigurations(variant.value(), device, bindings,
                                        eopts);
    if (!swept.ok()) {
      std::fprintf(stderr, "exploration (ppt=%d) failed: %s\n", ppt,
                   swept.status().ToString().c_str());
      return 1;
    }
    points.insert(points.end(), swept.value().begin(), swept.value().end());
  }
  const double wall_ms = wall.ElapsedMs();

  std::printf(
      "Figure 4: configuration space exploration, bilateral filter 13x13,\n"
      "4096x4096 image, Tesla C2050 (CUDA). One line per configuration\n"
      "(block size x pixels per thread).\n\n");
  std::printf("%8s  %6s  %6s  %4s  %9s  %14s  %10s\n", "threads", "blk_x",
              "blk_y", "ppt", "occupancy", "border_threads", "time_ms");
  const compiler::ExplorePoint* best = nullptr;
  for (const auto& p : points) {
    std::printf("%8d  %6d  %6d  %4d  %8.0f%%  %14lld  %10.2f\n",
                p.config.threads(), p.config.block_x, p.config.block_y, p.ppt,
                100.0 * p.occupancy, p.border_threads, p.ms);
    if (!best || p.ms < best->ms) best = &p;
  }

  const auto find_point =
      [&points](const hw::KernelConfig& config,
                int ppt) -> const compiler::ExplorePoint* {
    for (const auto& p : points)
      if (p.config == config && p.ppt == ppt) return &p;
    return nullptr;
  };

  std::printf("\nHeuristic (Algorithm 2) selected: %dx%d, ppt %d\n",
              kernel.config.config.block_x, kernel.config.config.block_y,
              kernel.device_ir.ppt);
  const compiler::ExplorePoint* heuristic_point =
      find_point(kernel.config.config, kernel.device_ir.ppt);
  if (best) {
    std::printf("Exploration optimum: %dx%d ppt %d at %.2f ms\n",
                best->config.block_x, best->config.block_y, best->ppt,
                best->ms);
    if (heuristic_point)
      std::printf(
          "Heuristic pick measured at %.2f ms (%.1f%% above optimum)\n",
          heuristic_point->ms, 100.0 * (heuristic_point->ms / best->ms - 1.0));
  }

  // The learned pick: recompile with profile-guided reselection reading the
  // history this very sweep just recorded. Re-exploration challenges and
  // the staleness filter are disabled — the sweep IS the re-exploration,
  // and all its entries are equally current (the per-PPT sub-sweeps would
  // otherwise age each other out of the freshness window) — so
  // select_config commits to the measured winner deterministically.
  compiler::ProfilePolicy learned_policy;
  learned_policy.reexplore_period = 0;
  learned_policy.freshness_window = 0;
  compiler::CompileOptions learned_opts = auto_opts;
  learned_opts.profiles = &profiles;
  learned_opts.profile_policy = learned_policy;
  Result<compiler::CompiledKernel> learned =
      compiler::Compile(source, learned_opts);
  double heuristic_gap = -1.0, learned_gap = -1.0;
  const compiler::ExplorePoint* learned_point = nullptr;
  if (!learned.ok()) {
    std::fprintf(stderr, "reselection compile failed: %s\n",
                 learned.status().ToString().c_str());
    return 1;
  }
  learned_point = find_point(learned.value().config.config,
                             learned.value().device_ir.ppt);
  std::printf("Profile-guided reselection: %dx%d, ppt %d\n",
              learned.value().config.config.block_x,
              learned.value().config.config.block_y,
              learned.value().device_ir.ppt);
  if (best && heuristic_point) heuristic_gap = heuristic_point->ms / best->ms - 1.0;
  if (best && learned_point) learned_gap = learned_point->ms / best->ms - 1.0;
  if (learned_point && best)
    std::printf(
        "Learned pick measured at %.2f ms (%.1f%% above optimum; heuristic "
        "gap %.1f%%)\n",
        learned_point->ms, 100.0 * learned_gap,
        heuristic_gap >= 0.0 ? 100.0 * heuristic_gap : -1.0);
  std::printf("Exploration wall-clock: %.0f ms (%d jobs)\n", wall_ms,
              eopts.jobs);

  if (check_reselect) {
    if (learned_gap < 0.0) {
      std::fprintf(stderr,
                   "FAIL: learned pick was never measured by the sweep\n");
      return 1;
    }
    if (heuristic_gap >= 0.0 && learned_gap > heuristic_gap + 1e-12) {
      std::fprintf(stderr,
                   "FAIL: learned gap %.2f%% above heuristic gap %.2f%%\n",
                   100.0 * learned_gap, 100.0 * heuristic_gap);
      return 1;
    }
  }

  if (!json_out.empty()) {
    support::Json doc =
        compiler::ExploreReportJson(kernel, device, n, n, points);
    doc["bench"] = "fig4_config_exploration";
    doc["jobs"] = eopts.jobs;
    doc["wall_ms"] = wall_ms;
    support::Json reselect = support::Json::Object();
    support::Json learned_pick = support::Json::Object();
    learned_pick["config"] = sim::ConfigJson(learned.value().config.config);
    learned_pick["ppt"] = learned.value().device_ir.ppt;
    reselect["learned"] = std::move(learned_pick);
    reselect["heuristic_gap"] = heuristic_gap;
    reselect["learned_gap"] = learned_gap;
    doc["reselect"] = std::move(reselect);
    const Status written = support::WriteFile(json_out, doc.Dump(2) + "\n");
    if (!written.ok())
      std::fprintf(stderr, "warning: %s\n", written.ToString().c_str());
    else
      std::fprintf(stderr, "wrote %s\n", json_out.c_str());
  }
  if (!trace_out.empty()) {
    const Status written = trace.WriteChromeTrace(trace_out);
    if (!written.ok())
      std::fprintf(stderr, "warning: %s\n", written.ToString().c_str());
    else
      std::fprintf(stderr, "wrote %s\n", trace_out.c_str());
  }
  return 0;
}
