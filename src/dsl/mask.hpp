// DSL `Mask` (Section III-B) and `Domain` classes. A Mask stores the
// precalculated coefficients of a convolution filter; because it is constant
// during a kernel launch the compiler places it in constant memory and, when
// the coefficients are compile-time constants, initialises it statically.
#pragma once

#include <vector>

#include "ast/metadata.hpp"
#include "support/status.hpp"

namespace hipacc::dsl {

template <typename T>
class Mask {
 public:
  /// Creates a size_x x size_y mask; sizes must be odd (centered windows).
  Mask(int size_x, int size_y)
      : size_x_(size_x), size_y_(size_y),
        values_(static_cast<size_t>(size_x) * size_y) {
    HIPACC_CHECK_MSG(size_x > 0 && size_y > 0 && size_x % 2 == 1 && size_y % 2 == 1,
                     "mask sizes must be odd and positive");
  }

  int size_x() const noexcept { return size_x_; }
  int size_y() const noexcept { return size_y_; }
  int half_x() const noexcept { return size_x_ / 2; }
  int half_y() const noexcept { return size_y_ / 2; }
  ast::WindowExtent window() const noexcept { return {half_x(), half_y()}; }

  /// Uploads precalculated coefficients from a row-major array of
  /// size_x*size_y values (Listing 4's `CMask = mask;`).
  Mask& operator=(const T* coefficients) {
    HIPACC_CHECK(coefficients != nullptr);
    for (size_t i = 0; i < values_.size(); ++i) values_[i] = coefficients[i];
    return *this;
  }
  Mask& operator=(const std::vector<T>& coefficients) {
    HIPACC_CHECK(coefficients.size() == values_.size());
    values_ = coefficients;
    return *this;
  }

  /// Coefficient at centered offsets x in [-half_x, half_x], y likewise.
  T operator()(int x, int y) const {
    HIPACC_CHECK_MSG(x >= -half_x() && x <= half_x() && y >= -half_y() &&
                         y <= half_y(),
                     "mask access outside window");
    return values_[static_cast<size_t>(y + half_y()) * size_x_ + (x + half_x())];
  }

  const std::vector<T>& values() const noexcept { return values_; }

 private:
  int size_x_;
  int size_y_;
  std::vector<T> values_;
};

/// A boolean iteration footprint over a centered window — used by
/// non-convolution local operators (median, morphology) to restrict which
/// neighbours participate.
class Domain {
 public:
  /// Full rectangular domain of size_x x size_y (all cells active).
  Domain(int size_x, int size_y)
      : size_x_(size_x), size_y_(size_y),
        active_(static_cast<size_t>(size_x) * size_y, true) {
    HIPACC_CHECK_MSG(size_x > 0 && size_y > 0 && size_x % 2 == 1 && size_y % 2 == 1,
                     "domain sizes must be odd and positive");
  }

  int size_x() const noexcept { return size_x_; }
  int size_y() const noexcept { return size_y_; }
  int half_x() const noexcept { return size_x_ / 2; }
  int half_y() const noexcept { return size_y_ / 2; }

  /// Activates or deactivates the cell at centered offsets (x, y).
  void set(int x, int y, bool active) {
    active_.at(Index(x, y)) = active;
  }
  bool operator()(int x, int y) const { return active_.at(Index(x, y)); }

  /// Number of active cells.
  int count() const noexcept {
    int n = 0;
    for (const bool a : active_) n += a ? 1 : 0;
    return n;
  }

 private:
  size_t Index(int x, int y) const {
    HIPACC_CHECK_MSG(x >= -half_x() && x <= half_x() && y >= -half_y() &&
                         y <= half_y(),
                     "domain access outside window");
    return static_cast<size_t>(y + half_y()) * size_x_ + (x + half_x());
  }

  int size_x_;
  int size_y_;
  std::vector<bool> active_;
};

}  // namespace hipacc::dsl
