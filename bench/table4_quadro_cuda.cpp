// Reproduces Table IV: bilateral filter on the Quadro FX 5800, CUDA backend.
#include <cstdio>

#include "common/bilateral_table.hpp"
#include "common/sim_engine_flag.hpp"
#include "hwmodel/device_db.hpp"

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (!hipacc::bench::HandleSimEngineFlag(argv[i])) {
      std::fprintf(stderr, "usage: table4_quadro_cuda [--sim-engine=bytecode|ast]\n");
      return 2;
    }
  }
  hipacc::bench::BilateralTableOptions options;
  options.device = hipacc::hw::QuadroFx5800();
  options.json_out = "BENCH_table4.json";
  options.backend = hipacc::ast::Backend::kCuda;
  options.include_rapidmind = true;
  std::printf("%s\n", hipacc::bench::RunBilateralTable(
                          "Table IV: Quadro FX 5800, CUDA backend", options)
                          .c_str());
  return 0;
}
