// Host toolchain driver for the native tier: writes an emitted translation
// unit to a temp directory, invokes the system C++ compiler to build a
// shared object, and dlopens it. Discovery order: $HIPACC_JIT_CXX, the
// compiler the simulator itself was built with (baked in by CMake), then
// PATH fallbacks. A missing or failing toolchain is a soft condition —
// callers degrade to the threaded-dispatch VM, never crash.
#pragma once

#include <memory>
#include <string>

#include "support/status.hpp"

namespace hipacc::sim::jit {

/// RAII wrapper around one dlopened shared object. The backing file is
/// unlinked immediately after opening (the mapping keeps it alive), so no
/// artifacts outlive the process.
class NativeModule {
 public:
  explicit NativeModule(void* handle) : handle_(handle) {}
  ~NativeModule();
  NativeModule(const NativeModule&) = delete;
  NativeModule& operator=(const NativeModule&) = delete;

  /// Resolves an exported symbol; null when absent.
  void* Sym(const char* name) const;

 private:
  void* handle_ = nullptr;
};

/// Identity of the active toolchain (path + flags). Part of the module
/// cache key so a compiler switch (e.g. via $HIPACC_JIT_CXX) never reuses
/// objects built by another compiler.
std::string ToolchainIdentity();

/// True when a usable host compiler was found (and jitting is not disabled
/// via $HIPACC_JIT_DISABLE or the test override).
bool ToolchainAvailable();

/// Compiles `source` into a shared object and dlopens it. `tag` scopes the
/// temp file names. Fails with Unavailable when no toolchain exists and
/// Internal (with the compiler's stderr) when compilation errors. When
/// `so_bytes_out` is non-null the raw shared-object bytes are copied into
/// it before the temp file is unlinked — the persistent JIT cache stores
/// them so a later process can skip the toolchain entirely.
Result<std::shared_ptr<NativeModule>> CompileSharedObject(
    const std::string& source, const std::string& tag,
    std::string* so_bytes_out = nullptr);

/// Reopens a shared object from raw bytes (a persistent-cache hit): the
/// bytes are materialised under a temp name, dlopened, and unlinked — the
/// mapping keeps the object alive, exactly like CompileSharedObject.
Result<std::shared_ptr<NativeModule>> OpenSharedObjectBytes(
    const std::string& so_bytes, const std::string& tag);

/// Test hook: overrides toolchain discovery. nullptr restores the real
/// discovery; "" simulates a machine without any compiler; any other value
/// is used as the compiler command verbatim (e.g. /bin/false to exercise
/// compile failures).
void SetToolchainOverrideForTesting(const char* compiler);

}  // namespace hipacc::sim::jit
