# Empty dependencies file for hipacc_frontend.
# This may be replaced when dependencies are built.
