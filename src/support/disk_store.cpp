#include "support/disk_store.hpp"

#include <algorithm>
#include <cstdlib>
#include <vector>

#include "support/atomic_file.hpp"
#include "support/hash.hpp"
#include "support/serial.hpp"
#include "support/string_utils.hpp"

namespace hipacc::support {
namespace {

constexpr char kMagic[4] = {'H', 'P', 'C', 'C'};

std::uint64_t PayloadChecksum(const std::string& payload) {
  return Fnv1a().Mix(payload).digest();
}

}  // namespace

DiskStore::DiskStore(DiskStoreOptions options) { Configure(std::move(options)); }

void DiskStore::Configure(DiskStoreOptions options) {
  std::lock_guard<std::mutex> lock(mutex_);
  options_ = std::move(options);
  schema_ = options_.schema_version_override != 0
                ? options_.schema_version_override
                : kDiskStoreSchemaVersion;
  version_root_ =
      options_.root.empty()
          ? std::string()
          : StrFormat("%s/v%u", options_.root.c_str(), schema_);
  stats_ = {};
}

bool DiskStore::enabled() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return !options_.root.empty();
}

std::string DiskStore::root() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return options_.root;
}

std::uint32_t DiskStore::schema_version() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return schema_;
}

std::string DiskStore::PathFor(const std::string& kind,
                               const std::string& canonical) const {
  return StrFormat("%s/%s/%s", version_root_.c_str(), kind.c_str(),
                   Fnv1a().Mix(canonical).hex().c_str());
}

std::string DiskStore::EncodeFrame(const std::string& kind,
                                   const std::string& canonical,
                                   const std::string& payload) const {
  BinaryWriter w;
  w.Str(std::string_view(kMagic, sizeof(kMagic)));
  w.U32(schema_);
  w.Str(kind);
  w.Str(canonical);
  w.Str(payload);
  w.U64(PayloadChecksum(payload));
  return w.Take();
}

std::optional<std::string> DiskStore::DecodeFrame(
    const std::string& frame, const std::string& kind,
    const std::string& canonical) const {
  BinaryReader r(frame);
  if (r.Str() != std::string_view(kMagic, sizeof(kMagic))) return std::nullopt;
  if (r.U32() != schema_) return std::nullopt;
  if (r.Str() != kind) return std::nullopt;
  // Full-string comparison: the filename hash is only an index, so a
  // colliding key decodes as a miss, never as someone else's artifact.
  if (r.Str() != canonical) return std::nullopt;
  std::string payload = r.Str();
  const std::uint64_t checksum = r.U64();
  if (!r.AtEnd() || checksum != PayloadChecksum(payload)) return std::nullopt;
  return payload;
}

std::optional<std::string> DiskStore::Get(const std::string& kind,
                                          const std::string& canonical) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (options_.root.empty()) return std::nullopt;
  const std::string path = PathFor(kind, canonical);
  std::optional<std::string> frame = ReadFileIfExists(path);
  if (!frame.has_value()) {
    ++stats_.misses;
    return std::nullopt;
  }
  std::optional<std::string> payload = DecodeFrame(*frame, kind, canonical);
  if (!payload.has_value()) {
    // Torn, truncated, or foreign frame: self-repair by unlinking so the
    // next Put rewrites it, and report a miss.
    RemoveFileQuiet(path);
    ++stats_.corrupt;
    ++stats_.misses;
    return std::nullopt;
  }
  TouchFile(path);
  ++stats_.hits;
  return payload;
}

DiskStore::PutResult DiskStore::Put(const std::string& kind,
                                    const std::string& canonical,
                                    const std::string& payload) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (options_.root.empty()) return {};
  const std::string path = PathFor(kind, canonical);
  const std::string frame = EncodeFrame(kind, canonical, payload);
  // Dedup read: when several threads/processes race get-or-compile on one
  // key, the losers find the winner's identical frame and skip the write.
  if (std::optional<std::string> existing = ReadFileIfExists(path);
      existing.has_value() && *existing == frame) {
    ++stats_.dedup;
    return {};
  }
  if (!EnsureDirs(StrFormat("%s/%s", version_root_.c_str(), kind.c_str()))
           .ok())
    return {};
  if (!WriteFileAtomic(path, frame).ok()) return {};
  ++stats_.stores;
  PutResult result;
  result.stored = true;
  result.evicted = EvictIfNeeded();
  return result;
}

std::uint64_t DiskStore::EvictIfNeeded() {
  if (options_.max_bytes == 0) return 0;
  std::vector<DirEntry> entries;
  std::uint64_t total = 0;
  for (const std::string& kind : ListSubdirs(version_root_)) {
    for (DirEntry& entry : ListDirFiles(version_root_ + "/" + kind)) {
      total += entry.size;
      entries.push_back(std::move(entry));
    }
  }
  if (total <= options_.max_bytes) return 0;
  std::uint64_t evicted = 0;
  std::sort(entries.begin(), entries.end(),
            [](const DirEntry& a, const DirEntry& b) {
              return a.mtime != b.mtime ? a.mtime < b.mtime : a.path < b.path;
            });
  for (const DirEntry& entry : entries) {
    if (total <= options_.max_bytes) break;
    RemoveFileQuiet(entry.path);
    total -= std::min(total, entry.size);
    ++stats_.evictions;
    ++evicted;
  }
  return evicted;
}

DiskStoreStats DiskStore::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

std::string ResolveCacheDir(const std::string& spec) {
  if (spec == "off") return "";
  if (!spec.empty()) return spec;
  if (const char* env = std::getenv("HIPACC_CACHE_DIR")) {
    const std::string from_env = env;
    if (from_env == "off") return "";
    if (!from_env.empty()) return from_env;
  }
  return UserCacheDir("hipacc");
}

DiskStore& GlobalDiskStore() {
  // Intentionally leaked: cache stores may be consulted from static
  // destructors of other translation units.
  static DiskStore* store = new DiskStore();
  return *store;
}

void ConfigureGlobalDiskStore(DiskStoreOptions options) {
  GlobalDiskStore().Configure(std::move(options));
}

}  // namespace hipacc::support
