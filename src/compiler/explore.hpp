// Configuration exploration (paper Section V-D / Figure 4): times every
// valid configuration of a compiled kernel on the simulated device. The
// paper JIT-compiles each configuration with substituted macros; here each
// configuration re-launches the interpreter with different region constants.
//
// The sweep is embarrassingly parallel across candidates: each worker owns a
// full measurement lane (its own SimulatedExecutable, interpreter state, and
// a private output image), candidates are dealt round-robin, and results are
// merged by candidate index — so the output is bit-identical for any worker
// count, including the serial path.
#pragma once

#include <vector>

#include "compiler/executable.hpp"
#include "support/json.hpp"

namespace hipacc::compiler {

struct ExplorePoint {
  hw::KernelConfig config;
  /// Pixels per thread the measured kernel was compiled with (1 unless the
  /// caller sweeps the PPT axis by recompiling per value).
  int ppt = 1;
  double occupancy = 0.0;
  long long border_threads = 0;
  double ms = 0.0;
  sim::TimingBreakdown timing;  ///< modelled-time breakdown behind `ms`
};

/// Tuning knobs for ExploreConfigurations. The defaults reproduce Figure 4
/// deterministically on any machine.
struct ExploreOptions {
  /// Measurement workers (0 = hardware concurrency). Results are identical
  /// for every value; only wall-clock time changes.
  int jobs = 1;
  /// Blocks interpreted per boundary region for each candidate. Within one
  /// region every block executes the same instruction stream (the region
  /// variants exist precisely so that holds), so one sample per region is
  /// the exploration default; raise it to average residual cache effects.
  int samples_per_region = 1;
  /// Optional observability sink: records the prune decision, every
  /// simulated candidate launch (per worker lane), and the merge.
  sim::TraceSink* trace = nullptr;
};

/// Measures every valid configuration. Obviously-invalid candidates (failed
/// occupancy, degenerate boundary tiling) are pruned by the hardware model
/// before any interpreter work. Points are returned sorted by thread count
/// then block_x (the layout of Figure 4's x axis).
Result<std::vector<ExplorePoint>> ExploreConfigurations(
    const CompiledKernel& kernel, const hw::DeviceSpec& device,
    const runtime::BindingSet& bindings, const ExploreOptions& options = {});

/// Structured form of one exploration point:
/// {"config": {block_x, block_y, threads}, "occupancy", "border_threads",
///  "ms", "timing": {...}}.
support::Json ExplorePointJson(const ExplorePoint& point);

/// The BENCH_*.json document the Figure 4 bench and the tests share:
/// {"kernel", "device", "backend", "image": {width, height},
///  "points": [ExplorePointJson...]}.
support::Json ExploreReportJson(const CompiledKernel& kernel,
                                const hw::DeviceSpec& device, int image_width,
                                int image_height,
                                const std::vector<ExplorePoint>& points);

}  // namespace hipacc::compiler
