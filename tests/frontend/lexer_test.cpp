#include "frontend/lexer.hpp"

#include <gtest/gtest.h>

namespace hipacc::frontend {
namespace {

std::vector<TokenKind> Kinds(const std::string& source) {
  auto tokens = Lex(source);
  EXPECT_TRUE(tokens.ok()) << tokens.status().ToString();
  std::vector<TokenKind> kinds;
  for (const auto& tok : tokens.value()) kinds.push_back(tok.kind);
  return kinds;
}

TEST(LexerTest, KeywordsAndIdentifiers) {
  const auto kinds = Kinds("float x int if else for output bool foo_1");
  EXPECT_EQ(kinds, (std::vector<TokenKind>{
                       TokenKind::kKwFloat, TokenKind::kIdent,
                       TokenKind::kKwInt, TokenKind::kKwIf, TokenKind::kKwElse,
                       TokenKind::kKwFor, TokenKind::kKwOutput,
                       TokenKind::kKwBool, TokenKind::kIdent, TokenKind::kEnd}));
}

TEST(LexerTest, NumericLiterals) {
  auto tokens = Lex("42 1.5f 2. 1e3 2.5e-2 7f").value();
  EXPECT_EQ(tokens[0].kind, TokenKind::kIntLit);
  EXPECT_EQ(tokens[0].int_value, 42);
  EXPECT_EQ(tokens[1].kind, TokenKind::kFloatLit);
  EXPECT_DOUBLE_EQ(tokens[1].float_value, 1.5);
  EXPECT_EQ(tokens[2].kind, TokenKind::kFloatLit);
  EXPECT_EQ(tokens[3].kind, TokenKind::kFloatLit);
  EXPECT_DOUBLE_EQ(tokens[3].float_value, 1000.0);
  EXPECT_DOUBLE_EQ(tokens[4].float_value, 0.025);
  EXPECT_EQ(tokens[5].kind, TokenKind::kFloatLit);  // f-suffixed integer
}

TEST(LexerTest, OperatorsIncludingCompound) {
  const auto kinds = Kinds("+ += ++ - -= -- * *= / /= < <= > >= == != ! && ||");
  EXPECT_EQ(kinds, (std::vector<TokenKind>{
                       TokenKind::kPlus, TokenKind::kPlusAssign,
                       TokenKind::kPlusPlus, TokenKind::kMinus,
                       TokenKind::kMinusAssign, TokenKind::kMinusMinus,
                       TokenKind::kStar, TokenKind::kStarAssign,
                       TokenKind::kSlash, TokenKind::kSlashAssign,
                       TokenKind::kLt, TokenKind::kLe, TokenKind::kGt,
                       TokenKind::kGe, TokenKind::kEqEq, TokenKind::kNe,
                       TokenKind::kNot, TokenKind::kAndAnd, TokenKind::kOrOr,
                       TokenKind::kEnd}));
}

TEST(LexerTest, CommentsAreSkipped) {
  const auto kinds = Kinds("a // line comment\n b /* block\n comment */ c");
  EXPECT_EQ(kinds, (std::vector<TokenKind>{TokenKind::kIdent, TokenKind::kIdent,
                                           TokenKind::kIdent, TokenKind::kEnd}));
}

TEST(LexerTest, TracksLineNumbers) {
  auto tokens = Lex("a\nb\n  c").value();
  EXPECT_EQ(tokens[0].line, 1);
  EXPECT_EQ(tokens[1].line, 2);
  EXPECT_EQ(tokens[2].line, 3);
  EXPECT_EQ(tokens[2].column, 3);
}

TEST(LexerTest, RejectsUnknownCharacters) {
  EXPECT_FALSE(Lex("a @ b").ok());
  EXPECT_FALSE(Lex("a # b").ok());
  EXPECT_FALSE(Lex("a & b").ok());  // single & unsupported
}

TEST(LexerTest, RejectsUnterminatedBlockComment) {
  EXPECT_FALSE(Lex("a /* never closed").ok());
}

TEST(LexerTest, RejectsMalformedExponent) {
  EXPECT_FALSE(Lex("1e+").ok());
}

TEST(LexerTest, EmptyInputGivesOnlyEnd) {
  const auto kinds = Kinds("");
  EXPECT_EQ(kinds, std::vector<TokenKind>{TokenKind::kEnd});
}

}  // namespace
}  // namespace hipacc::frontend
