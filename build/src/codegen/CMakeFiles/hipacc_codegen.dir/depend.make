# Empty dependencies file for hipacc_codegen.
# This may be replaced when dependencies are built.
