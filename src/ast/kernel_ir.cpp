#include "ast/kernel_ir.hpp"

namespace hipacc::ast {

const char* to_string(Backend backend) noexcept {
  switch (backend) {
    case Backend::kCuda: return "CUDA";
    case Backend::kOpenCL: return "OpenCL";
  }
  return "?";
}

const AccessorInfo* KernelDecl::FindAccessor(
    const std::string& accessor_name) const {
  for (const auto& acc : accessors)
    if (acc.name == accessor_name) return &acc;
  return nullptr;
}

const MaskInfo* KernelDecl::FindMask(const std::string& mask_name) const {
  for (const auto& mask : masks)
    if (mask.name == mask_name) return &mask;
  return nullptr;
}

const ParamInfo* KernelDecl::FindParam(const std::string& param_name) const {
  for (const auto& param : params)
    if (param.name == param_name) return &param;
  return nullptr;
}

WindowExtent KernelDecl::MaxWindow() const {
  WindowExtent window;
  for (const auto& acc : accessors) window = window.Union(acc.window);
  return window;
}

bool KernelDecl::NeedsBoundaryHandling() const {
  for (const auto& acc : accessors)
    if (acc.boundary != BoundaryMode::kUndefined &&
        (acc.window.half_x > 0 || acc.window.half_y > 0))
      return true;
  return false;
}

const BufferParam* DeviceKernel::output_buffer() const {
  for (const auto& buf : buffers)
    if (buf.is_output) return &buf;
  return nullptr;
}

const RegionVariant* DeviceKernel::FindVariant(Region region) const {
  for (const auto& variant : variants)
    if (variant.region == region) return &variant;
  return nullptr;
}

}  // namespace hipacc::ast
