// Reproduces Table VI: bilateral filter on the Radeon HD 5870 (VLIW5),
// OpenCL backend. Scalar code underutilises the VLIW lanes, so memory-path
// optimizations have a smaller, flatter effect than on NVIDIA parts.
#include <cstdio>

#include "common/bilateral_table.hpp"
#include "common/table.hpp"
#include "hwmodel/device_db.hpp"

int main(int argc, char** argv) {
  hipacc::support::CliParser cli =
      hipacc::bench::MakeBenchCli("table6_hd5870_opencl", "Table VI: bilateral filter, Radeon HD 5870, OpenCL backend");
  if (const int code = cli.HandleArgs(argc, argv); code >= 0) return code;
  hipacc::bench::BilateralTableOptions options;
  options.device = hipacc::hw::RadeonHd5870();
  options.json_out = "BENCH_table6.json";
  options.backend = hipacc::ast::Backend::kOpenCL;
  std::printf("%s\n", hipacc::bench::RunBilateralTable(
                          "Table VI: Radeon HD 5870, OpenCL backend", options)
                          .c_str());
  return 0;
}
