#include "image/io.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <vector>

#include "support/atomic_file.hpp"
#include "support/string_utils.hpp"

namespace hipacc {

std::string ExampleOutputPath(const std::string& filename) {
  const char* env = std::getenv("HIPACC_EXAMPLE_OUT");
  const std::string dir = env && env[0] ? env : "out";
  (void)support::EnsureDirs(dir);
  return dir + "/" + filename;
}

Status WritePgm(const HostImage<float>& img, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::Invalid("cannot open for write: " + path);
  out << "P5\n" << img.width() << " " << img.height() << "\n255\n";
  std::vector<unsigned char> row(static_cast<size_t>(img.width()));
  for (int y = 0; y < img.height(); ++y) {
    for (int x = 0; x < img.width(); ++x) {
      const float v = std::clamp(img(x, y), 0.0f, 1.0f);
      row[static_cast<size_t>(x)] =
          static_cast<unsigned char>(v * 255.0f + 0.5f);
    }
    out.write(reinterpret_cast<const char*>(row.data()),
              static_cast<std::streamsize>(row.size()));
  }
  if (!out) return Status::Internal("short write: " + path);
  return Status::Ok();
}

Result<HostImage<float>> ReadPgm(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::Invalid("cannot open for read: " + path);
  std::string magic;
  int width = 0, height = 0, maxval = 0;
  in >> magic >> width >> height >> maxval;
  if (magic != "P5" || width <= 0 || height <= 0 || maxval != 255)
    return Status::Parse("unsupported PGM header in " + path);
  in.get();  // single whitespace after header
  std::vector<unsigned char> raw(static_cast<size_t>(width) * height);
  in.read(reinterpret_cast<char*>(raw.data()),
          static_cast<std::streamsize>(raw.size()));
  if (!in) return Status::Parse("truncated PGM data in " + path);
  HostImage<float> img(width, height);
  for (size_t i = 0; i < raw.size(); ++i)
    img.data()[i] = static_cast<float>(raw[i]) / 255.0f;
  return img;
}

Status WriteCsv(const HostImage<float>& img, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::Invalid("cannot open for write: " + path);
  for (int y = 0; y < img.height(); ++y) {
    for (int x = 0; x < img.width(); ++x) {
      if (x) out << ',';
      out << StrFormat("%.9g", static_cast<double>(img(x, y)));
    }
    out << '\n';
  }
  return out ? Status::Ok() : Status::Internal("short write: " + path);
}

Result<HostImage<float>> ReadCsv(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::Invalid("cannot open for read: " + path);
  std::vector<float> data;
  int width = -1, height = 0;
  std::string line;
  while (std::getline(in, line)) {
    if (Trim(line).empty()) continue;
    const auto fields = Split(line, ',');
    if (width < 0) width = static_cast<int>(fields.size());
    if (static_cast<int>(fields.size()) != width)
      return Status::Parse("ragged CSV rows in " + path);
    for (const auto& f : fields) data.push_back(std::strtof(f.c_str(), nullptr));
    ++height;
  }
  if (width <= 0 || height == 0) return Status::Parse("empty CSV " + path);
  return HostImage<float>::FromData(width, height, std::move(data));
}

}  // namespace hipacc
