// ABI between the simulator host and natively compiled warp programs.
//
// This header is the single source of truth for the boundary: the host
// runner (native_runner.cpp) includes it normally, and the build embeds its
// full text into the generated translation unit (jit_abi_text.cpp, produced
// by CMake from this file), so both sides always compile the exact same
// struct layout. It must therefore stay self-contained — standard headers
// only, no project includes.
//
// Bump kJitAbiVersion whenever the layout or the calling convention
// changes; the version participates in the shared-object cache key, so
// stale modules from an older layout can never be dispatched.
#pragma once

namespace hipacc::sim::jit {

/// Mirrors sim::kMaxWarpWidth: lane arrays carry 64 fixed slots, of which
/// only the device's warp_size are live (trailing mask lanes stay zero).
inline constexpr int kJitMaxWarp = 64;

inline constexpr int kJitAbiVersion = 1;

/// Memory-instruction kinds reported through JitWarpCtx::mem_access.
inline constexpr int kJitMemGlobalRead = 0;
inline constexpr int kJitMemGlobalWrite = 1;
inline constexpr int kJitMemShared = 2;
inline constexpr int kJitMemConstant = 3;
inline constexpr int kJitMemTexture = 4;

/// Error codes returned by a warp function as (code << 16) | table_index.
/// The host maps them back onto the exact VM Status messages.
inline constexpr int kJitErrLoadUnbound = 1;
inline constexpr int kJitErrStoreUnbound = 2;
inline constexpr int kJitErrMaskUnbound = 3;

/// One launch-bound image buffer (ProgramSet::buffer_names order). `bound`
/// is 0 for names the launch did not bind — legal until an instruction
/// touches the slot, exactly like the VM's lazy binding.
struct JitBuffer {
  float* data = nullptr;
  int width = 0;
  int height = 0;
  int stride = 0;
  int writable = 0;
  int bound = 0;
};

/// One constant-mask table (ProgramSet::const_masks order).
struct JitMaskTable {
  const float* data = nullptr;
  unsigned long long size = 0;
  int bound = 0;
};

/// Per-memory-instruction callback into the host memory model: `addrs`
/// holds the element addresses of the active lanes (lane order), `count`
/// how many. Never invoked with count == 0 (the model ignores empty
/// accesses).
using JitMemAccessFn = void (*)(void* host, int kind,
                                const unsigned long long* addrs, int count);

/// Warp-call context. The generated function executes one warp of one
/// region program: registers and masks live in host-owned arrays of
/// kJitMaxWarp lanes per slot, metric deltas are accumulated into the
/// pointed-to counters, and every memory instruction reports its coalesced
/// address list through mem_access.
struct JitWarpCtx {
  int warp_size = 0;

  // Warp context (BlockState::BuildWarpContext outputs).
  const double* tid_x = nullptr;
  const double* tid_y = nullptr;
  const double* gid_x = nullptr;
  const double* gid_y = nullptr;
  const int* tid_xi = nullptr;  // integer mirrors for fused coordinates
  const int* tid_yi = nullptr;
  const int* gid_xi = nullptr;
  const int* gid_yi = nullptr;

  // Block/grid scalars (broadcast by kThreadIdx).
  double bix = 0.0;
  double biy = 0.0;
  double block_dim_x = 0.0;
  double block_dim_y = 0.0;
  double grid_dim_x = 0.0;
  double grid_dim_y = 0.0;
  double image_w = 0.0;
  double image_h = 0.0;

  // Register file: num_regs slots of kJitMaxWarp doubles; reg_types holds
  // the runtime ScalarType tag per slot (raw enum value).
  double* regs = nullptr;
  unsigned char* reg_types = nullptr;
  // Mask file: num_masks slots of kJitMaxWarp bytes; slot 0 is the warp
  // active mask.
  unsigned char* masks = nullptr;

  // Scratchpad tile of the current block.
  const float* tile = nullptr;
  int tile_w = 0;
  int tile_h = 0;

  const JitBuffer* buffers = nullptr;
  const JitMaskTable* mask_tables = nullptr;

  // Metric accumulators (flushed once per warp call on every exit path).
  unsigned long long* alu = nullptr;
  unsigned long long* sfu = nullptr;
  unsigned long long* oob = nullptr;
  unsigned long long* insns = nullptr;

  JitMemAccessFn mem_access = nullptr;
  void* host = nullptr;
};

/// Signature of a generated per-warp region function. Returns 0 on success
/// or (error code << 16) | table index.
using JitWarpFn = int (*)(JitWarpCtx*);

}  // namespace hipacc::sim::jit
