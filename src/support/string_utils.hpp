// Small string helpers used by the frontend lexer and code emitters.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace hipacc {

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Splits on a single character; empty fields are kept.
std::vector<std::string> Split(std::string_view text, char sep);

/// Removes leading/trailing ASCII whitespace.
std::string_view Trim(std::string_view text);

/// True if `text` starts with / ends with `prefix` / `suffix`.
bool StartsWith(std::string_view text, std::string_view prefix);
bool EndsWith(std::string_view text, std::string_view suffix);

/// Joins items with `sep` between them.
std::string Join(const std::vector<std::string>& items, std::string_view sep);

/// Replaces every occurrence of `from` (non-empty) with `to`.
std::string ReplaceAll(std::string text, std::string_view from,
                       std::string_view to);

/// Indents every line of `text` by `spaces` spaces (also the first line).
std::string Indent(const std::string& text, int spaces);

}  // namespace hipacc
