// Shared harness for Tables VIII/IX: Gaussian filters on a 4096x4096 image,
// OpenCV-style separable implementations (PPT=8 / PPT=1) vs our generated
// 2D-convolution kernels (CUDA and OpenCL; plain, texture, scratchpad)
// across boundary modes and window sizes.
#pragma once

#include <string>
#include <vector>

#include "hwmodel/device_spec.hpp"

namespace hipacc::bench {

struct GaussianTableOptions {
  hw::DeviceSpec device;
  int image_size = 4096;
  std::vector<int> window_sizes = {3, 5};
  /// When non-empty, all per-window tables are written there as one
  /// BENCH_*.json document: {"title", "tables": [table schema...]}.
  std::string json_out;
};

std::string RunGaussianTable(const std::string& title,
                             const GaussianTableOptions& options);

}  // namespace hipacc::bench
