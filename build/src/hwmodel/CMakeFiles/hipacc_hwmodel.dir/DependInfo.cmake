
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hwmodel/config.cpp" "src/hwmodel/CMakeFiles/hipacc_hwmodel.dir/config.cpp.o" "gcc" "src/hwmodel/CMakeFiles/hipacc_hwmodel.dir/config.cpp.o.d"
  "/root/repo/src/hwmodel/device_db.cpp" "src/hwmodel/CMakeFiles/hipacc_hwmodel.dir/device_db.cpp.o" "gcc" "src/hwmodel/CMakeFiles/hipacc_hwmodel.dir/device_db.cpp.o.d"
  "/root/repo/src/hwmodel/heuristic.cpp" "src/hwmodel/CMakeFiles/hipacc_hwmodel.dir/heuristic.cpp.o" "gcc" "src/hwmodel/CMakeFiles/hipacc_hwmodel.dir/heuristic.cpp.o.d"
  "/root/repo/src/hwmodel/occupancy.cpp" "src/hwmodel/CMakeFiles/hipacc_hwmodel.dir/occupancy.cpp.o" "gcc" "src/hwmodel/CMakeFiles/hipacc_hwmodel.dir/occupancy.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/hipacc_support.dir/DependInfo.cmake"
  "/root/repo/build/src/ast/CMakeFiles/hipacc_ast.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
