file(REMOVE_RECURSE
  "libhipacc_ops.a"
)
