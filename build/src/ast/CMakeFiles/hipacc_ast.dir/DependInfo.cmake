
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ast/builtins.cpp" "src/ast/CMakeFiles/hipacc_ast.dir/builtins.cpp.o" "gcc" "src/ast/CMakeFiles/hipacc_ast.dir/builtins.cpp.o.d"
  "/root/repo/src/ast/cfg.cpp" "src/ast/CMakeFiles/hipacc_ast.dir/cfg.cpp.o" "gcc" "src/ast/CMakeFiles/hipacc_ast.dir/cfg.cpp.o.d"
  "/root/repo/src/ast/const_fold.cpp" "src/ast/CMakeFiles/hipacc_ast.dir/const_fold.cpp.o" "gcc" "src/ast/CMakeFiles/hipacc_ast.dir/const_fold.cpp.o.d"
  "/root/repo/src/ast/expr.cpp" "src/ast/CMakeFiles/hipacc_ast.dir/expr.cpp.o" "gcc" "src/ast/CMakeFiles/hipacc_ast.dir/expr.cpp.o.d"
  "/root/repo/src/ast/kernel_ir.cpp" "src/ast/CMakeFiles/hipacc_ast.dir/kernel_ir.cpp.o" "gcc" "src/ast/CMakeFiles/hipacc_ast.dir/kernel_ir.cpp.o.d"
  "/root/repo/src/ast/metadata.cpp" "src/ast/CMakeFiles/hipacc_ast.dir/metadata.cpp.o" "gcc" "src/ast/CMakeFiles/hipacc_ast.dir/metadata.cpp.o.d"
  "/root/repo/src/ast/printer.cpp" "src/ast/CMakeFiles/hipacc_ast.dir/printer.cpp.o" "gcc" "src/ast/CMakeFiles/hipacc_ast.dir/printer.cpp.o.d"
  "/root/repo/src/ast/stmt.cpp" "src/ast/CMakeFiles/hipacc_ast.dir/stmt.cpp.o" "gcc" "src/ast/CMakeFiles/hipacc_ast.dir/stmt.cpp.o.d"
  "/root/repo/src/ast/type.cpp" "src/ast/CMakeFiles/hipacc_ast.dir/type.cpp.o" "gcc" "src/ast/CMakeFiles/hipacc_ast.dir/type.cpp.o.d"
  "/root/repo/src/ast/visitor.cpp" "src/ast/CMakeFiles/hipacc_ast.dir/visitor.cpp.o" "gcc" "src/ast/CMakeFiles/hipacc_ast.dir/visitor.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/hipacc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
