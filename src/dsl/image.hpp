// DSL `Image` class (paper Section II): data storage for image pixels on the
// (simulated) device. Assigning a raw host pointer uploads pixels; getData()
// downloads them — mirroring Listing 2's `IN = host_in` / `OUT.getData()`.
//
// The backing store is host memory laid out with a device-specific padded
// stride: the runtime queries `stride()` exactly like HIPAcc's generated
// host code passes the padded stride to kernels for coalesced accesses.
#pragma once

#include <cstring>
#include <vector>

#include "image/host_image.hpp"
#include "support/span2d.hpp"
#include "support/status.hpp"

namespace hipacc::dsl {

/// Alignment (in elements) the global-memory padding pass rounds strides up
/// to; 128 bytes / 4-byte pixels, the transaction size of the modelled GPUs.
inline constexpr int kStrideAlignElems = 32;

/// Rounds `width` up to the padding alignment.
constexpr int PaddedStride(int width) noexcept {
  return (width + kStrideAlignElems - 1) / kStrideAlignElems *
         kStrideAlignElems;
}

template <typename T>
class Image {
 public:
  /// Allocates a width x height image with padded stride on the device.
  Image(int width, int height)
      : width_(width), height_(height), stride_(PaddedStride(width)),
        pixels_(static_cast<size_t>(stride_) * height) {
    HIPACC_CHECK(width > 0 && height > 0);
  }

  int width() const noexcept { return width_; }
  int height() const noexcept { return height_; }
  int stride() const noexcept { return stride_; }

  /// Uploads from a dense row-major host array of width*height elements.
  Image& operator=(const T* host_data) {
    CopyFrom(host_data);
    return *this;
  }

  void CopyFrom(const T* host_data) {
    HIPACC_CHECK(host_data != nullptr);
    for (int y = 0; y < height_; ++y)
      std::memcpy(pixels_.data() + static_cast<size_t>(y) * stride_,
                  host_data + static_cast<size_t>(y) * width_,
                  sizeof(T) * static_cast<size_t>(width_));
  }

  void CopyFrom(const HostImage<T>& host) {
    HIPACC_CHECK(host.width() == width_ && host.height() == height_);
    CopyFrom(host.data());
  }

  /// Downloads into a dense row-major host array of width*height elements.
  void CopyTo(T* host_data) const {
    HIPACC_CHECK(host_data != nullptr);
    for (int y = 0; y < height_; ++y)
      std::memcpy(host_data + static_cast<size_t>(y) * width_,
                  pixels_.data() + static_cast<size_t>(y) * stride_,
                  sizeof(T) * static_cast<size_t>(width_));
  }

  /// Downloads into a freshly allocated HostImage (the paper's getData()).
  HostImage<T> getData() const {
    HostImage<T> host(width_, height_);
    CopyTo(host.data());
    return host;
  }

  /// Device-side view including the padded stride.
  Span2D<T> span() { return Span2D<T>(pixels_.data(), width_, height_, stride_); }
  Span2D<const T> span() const {
    return Span2D<const T>(pixels_.data(), width_, height_, stride_);
  }

  /// Direct pixel access used by the executor and the simulator.
  T& at(int x, int y) { return pixels_[static_cast<size_t>(y) * stride_ + x]; }
  const T& at(int x, int y) const {
    return pixels_[static_cast<size_t>(y) * stride_ + x];
  }

 private:
  int width_;
  int height_;
  int stride_;
  std::vector<T> pixels_;
};

}  // namespace hipacc::dsl
