// Cached execute path (runtime::KernelRunner): first launch compiles, the
// output matches a hand-driven compile+execute, repeated launches reuse the
// artifact without touching the compiler, and device switches recompile
// through the cache (hitting when returning to a seen target).
#include <gtest/gtest.h>

#include "compiler/executable.hpp"
#include "ops/kernel_sources.hpp"
#include "runtime/kernel_runner.hpp"
#include "sim/trace.hpp"

namespace hipacc {
namespace {

frontend::KernelSource Source() {
  return ops::BilateralMaskSource(1, ast::BoundaryMode::kClamp);
}

runtime::BindingSet Bindings(dsl::Image<float>& in, dsl::Image<float>& out) {
  runtime::BindingSet bindings;
  bindings.Input("Input", in).Output(out).Scalar("sigma_d", 1).Scalar(
      "sigma_r", 4);
  return bindings;
}

void FillRamp(dsl::Image<float>& img) {
  for (int y = 0; y < img.height(); ++y)
    for (int x = 0; x < img.width(); ++x)
      img.at(x, y) = static_cast<float>((x * 7 + y * 13) % 31);
}

TEST(KernelRunnerTest, FirstRunCompilesAndMatchesManualPath) {
  const int n = 128;
  dsl::Image<float> in(n, n), out(n, n), expected(n, n);
  FillRamp(in);

  compiler::CompilationCache cache;
  runtime::RunOptions ropts;
  ropts.cache = &cache;
  runtime::KernelRunner runner(Source(), ropts);
  EXPECT_EQ(runner.compiled(), nullptr);
  auto stats = runner.Run(Bindings(in, out));
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  ASSERT_NE(runner.compiled(), nullptr);

  // Reference: explicit Compile + SimulatedExecutable.
  compiler::CompileOptions copts;
  copts.image_width = n;
  copts.image_height = n;
  auto compiled = compiler::Compile(Source(), copts);
  ASSERT_TRUE(compiled.ok());
  compiler::SimulatedExecutable exec(std::move(compiled).take(),
                                     copts.device);
  ASSERT_TRUE(exec.Run(Bindings(in, expected)).ok());

  for (int y = 0; y < n; ++y)
    for (int x = 0; x < n; ++x)
      ASSERT_EQ(out.at(x, y), expected.at(x, y)) << x << "," << y;
}

TEST(KernelRunnerTest, RepeatedRunsSkipCompilation) {
  const int n = 128;
  dsl::Image<float> in(n, n), out(n, n);
  FillRamp(in);

  compiler::CompilationCache cache;
  sim::TraceSink sink;
  runtime::RunOptions ropts;
  ropts.cache = &cache;
  ropts.trace = &sink;
  runtime::KernelRunner runner(Source(), ropts);

  ASSERT_TRUE(runner.Run(Bindings(in, out)).ok());
  const std::size_t after_first = sink.event_count();
  const compiler::CompilationCache::Stats cold = cache.stats();
  EXPECT_EQ(cold.target_misses, 1);

  // Ten more launches: no compile spans, no cache probes — the runner
  // reuses its executable outright.
  for (int i = 0; i < 10; ++i)
    ASSERT_TRUE(runner.Run(Bindings(in, out)).ok());
  const compiler::CompilationCache::Stats warm = cache.stats();
  EXPECT_EQ(warm.target_misses, 1);
  EXPECT_EQ(warm.target_hits, 0);

  const support::Json doc = sink.ToJson();
  const support::Json* events = doc.Find("events");
  ASSERT_NE(events, nullptr);
  int compile_spans = 0;
  for (std::size_t i = after_first; i < events->size(); ++i)
    if ((*events)[i].Find("category")->string_value() == "compile")
      ++compile_spans;
  EXPECT_EQ(compile_spans, 0);
}

TEST(KernelRunnerTest, DeviceSwitchRecompilesThroughCache) {
  const int n = 128;
  dsl::Image<float> in(n, n), out(n, n);
  FillRamp(in);

  compiler::CompilationCache cache;
  runtime::RunOptions ropts;
  ropts.cache = &cache;
  runtime::KernelRunner runner(Source(), ropts);

  ASSERT_TRUE(runner.Run(Bindings(in, out)).ok());
  const hw::KernelConfig tesla_config =
      runner.compiled()->config.config;

  runner.set_device(hw::RadeonHd5870());
  ASSERT_TRUE(runner.Run(Bindings(in, out)).ok());
  EXPECT_EQ(cache.stats().target_misses, 2);
  // The frontend artifacts were reused for the new device.
  EXPECT_EQ(cache.stats().frontend_hits, 1);

  // Switching back to the first device hits the target cache.
  runner.set_device(hw::TeslaC2050());
  ASSERT_TRUE(runner.Run(Bindings(in, out)).ok());
  EXPECT_EQ(cache.stats().target_hits, 1);
  EXPECT_EQ(runner.compiled()->config.config, tesla_config);
}

TEST(KernelRunnerTest, ExtentChangeRecompiles) {
  compiler::CompilationCache cache;
  runtime::RunOptions ropts;
  ropts.cache = &cache;
  runtime::KernelRunner runner(Source(), ropts);

  dsl::Image<float> small_in(64, 64), small_out(64, 64);
  dsl::Image<float> big_in(256, 256), big_out(256, 256);
  FillRamp(small_in);
  FillRamp(big_in);

  ASSERT_TRUE(runner.Run(Bindings(small_in, small_out)).ok());
  ASSERT_TRUE(runner.Run(Bindings(big_in, big_out)).ok());
  EXPECT_EQ(cache.stats().target_misses, 2);

  // Back to the small extent: a target hit, not a recompilation.
  ASSERT_TRUE(runner.Run(Bindings(small_in, small_out)).ok());
  EXPECT_EQ(cache.stats().target_hits, 1);
}

TEST(KernelRunnerTest, MissingOutputIsInvalid) {
  runtime::KernelRunner runner(Source());
  runtime::BindingSet empty;
  auto stats = runner.Run(empty);
  ASSERT_FALSE(stats.ok());
  EXPECT_EQ(stats.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace hipacc
