#include "compiler/cache.hpp"

#include <cstdio>

#include "compiler/disk_cache.hpp"
#include "sim/trace.hpp"
#include "support/disk_store.hpp"
#include "support/hash.hpp"
#include "support/string_utils.hpp"

namespace hipacc::compiler {
namespace {

CacheKey KeyFromCanonical(std::string canonical) {
  support::Fnv1a hasher;
  hasher.Mix(canonical);
  return CacheKey{hasher.digest(), std::move(canonical)};
}

template <typename V, typename Store>
std::optional<V> Lookup(const Store& store, const CacheKey& key) {
  const auto bucket = store.find(key.hash);
  if (bucket == store.end()) return std::nullopt;
  for (const auto& entry : bucket->second)
    if (entry.canonical == key.canonical) return entry.value;
  return std::nullopt;
}

template <typename V, typename Store>
void Insert(Store& store, const CacheKey& key, V value) {
  auto& bucket = store[key.hash];
  for (auto& entry : bucket) {
    if (entry.canonical == key.canonical) {
      entry.value = std::move(value);
      return;
    }
  }
  bucket.push_back({key.canonical, std::move(value)});
}

}  // namespace

std::string CacheKey::hex() const {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(hash));
  return buf;
}

std::string SourceFingerprint(const frontend::KernelSource& source) {
  std::string out = "kernel=" + source.name;
  out += ";params=[";
  for (const ast::ParamInfo& p : source.params)
    out += StrFormat("%s:%d,", p.name.c_str(), static_cast<int>(p.type));
  out += "];accessors=[";
  for (const ast::AccessorInfo& a : source.accessors)
    out += StrFormat("%s:%dx%d:%s:%g,", a.name.c_str(), a.window.half_x,
                     a.window.half_y, to_string(a.boundary),
                     static_cast<double>(a.constant_value));
  out += "];masks=[";
  for (const ast::MaskInfo& m : source.masks) {
    out += StrFormat("%s:%dx%d:(", m.name.c_str(), m.size_x, m.size_y);
    for (const float v : m.static_values)
      out += StrFormat("%g,", static_cast<double>(v));
    out += "),";
  }
  out += "];body=" + source.body;
  return out;
}

std::string OptionsFingerprint(const codegen::CodegenOptions& options) {
  // pixels_per_thread is key material: the lowered IR bakes the PPT loop
  // in, so compiles differing only in ppt must never share an entry.
  return StrFormat(
      "backend=%s;tex=%d;border=%d;smem=%d;constmask=%d;intrinsics=%d;"
      "scalaropt=%d;vliw=%d;ppt=%d",
      to_string(options.backend), static_cast<int>(options.texture),
      static_cast<int>(options.border), options.use_scratchpad ? 1 : 0,
      options.masks_in_constant_memory ? 1 : 0,
      options.use_fast_intrinsics ? 1 : 0, options.scalar_optimizer ? 1 : 0,
      options.vectorize_vliw ? 1 : 0, options.pixels_per_thread);
}

std::uint64_t SourceHash(const std::string& source_fingerprint) {
  support::Fnv1a hasher;
  hasher.Mix(source_fingerprint);
  return hasher.digest();
}

CacheKey MakeFrontendKey(const frontend::KernelSource& source,
                         const codegen::CodegenOptions& options) {
  return MakeFrontendKeyFromFingerprint(SourceFingerprint(source), options);
}

CacheKey MakeFrontendKeyFromFingerprint(
    const std::string& source_fingerprint,
    const codegen::CodegenOptions& options) {
  return KeyFromCanonical(source_fingerprint + "|" +
                          OptionsFingerprint(options));
}

std::string DeviceIdentity(const hw::DeviceSpec& device) {
  return StrFormat("%s:%d:%d:%d:%d:%d:%d:%d:%d:%d", device.name.c_str(),
                   device.compute_capability, device.simd_width,
                   device.max_threads_per_block, device.max_threads_per_sm,
                   device.max_blocks_per_sm, device.regs_per_sm,
                   device.reg_alloc_granularity, device.smem_per_sm,
                   device.smem_alloc_granularity);
}

CacheKey MakeTargetKey(const CacheKey& frontend_key,
                       const hw::DeviceSpec& device, int image_width,
                       int image_height,
                       const std::optional<hw::KernelConfig>& forced_config,
                       const std::string& profile_salt) {
  std::string canonical = frontend_key.canonical + "|device=" +
                          DeviceIdentity(device) +
                          StrFormat("|extent=%dx%d", image_width, image_height);
  if (forced_config)
    canonical +=
        StrFormat("|forced=%dx%d", forced_config->block_x,
                  forced_config->block_y);
  else
    canonical += "|forced=auto";
  if (!profile_salt.empty()) canonical += "|profile=" + profile_salt;
  return KeyFromCanonical(std::move(canonical));
}

support::DiskStore* CompilationCache::disk() const {
  if (disk_overridden_) return disk_override_;
  support::DiskStore& global = support::GlobalDiskStore();
  return global.enabled() ? &global : nullptr;
}

void CompilationCache::set_disk_store(support::DiskStore* store) {
  const std::lock_guard<std::mutex> lock(mutex_);
  disk_override_ = store;
  disk_overridden_ = true;
}

std::optional<FrontendArtifacts> CompilationCache::LookupFrontend(
    const CacheKey& key, sim::TraceSink* trace) {
  std::optional<FrontendArtifacts> hit;
  bool from_disk = false;
  bool disk_miss = false;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    hit = Lookup<FrontendArtifacts>(frontend_, key);
    if (!hit.has_value()) {
      if (support::DiskStore* store = disk()) {
        if (std::optional<std::string> payload =
                store->Get("frontend", key.canonical))
          hit = DecodeFrontendArtifacts(*payload);
        from_disk = hit.has_value();
        disk_miss = !from_disk;
        // Promote: later lookups in this process are memory hits.
        if (from_disk) Insert(frontend_, key, *hit);
      }
    }
    (hit ? stats_.frontend_hits : stats_.frontend_misses)++;
    if (from_disk) ++stats_.disk_hits;
  }
  if (trace != nullptr) {
    trace->RecordCacheAccess("frontend", hit.has_value(), key.hex());
    if (from_disk) trace->IncrementCounter("cache.disk.hit");
    if (disk_miss) trace->IncrementCounter("cache.disk.miss");
  }
  return hit;
}

std::optional<CompiledKernel> CompilationCache::LookupTarget(
    const CacheKey& key, sim::TraceSink* trace) {
  std::optional<CompiledKernel> hit;
  bool from_disk = false;
  bool disk_miss = false;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    hit = Lookup<CompiledKernel>(target_, key);
    if (!hit.has_value()) {
      if (support::DiskStore* store = disk()) {
        if (std::optional<std::string> payload =
                store->Get("target", key.canonical))
          hit = DecodeCompiledKernel(*payload);
        from_disk = hit.has_value();
        disk_miss = !from_disk;
        if (from_disk) Insert(target_, key, *hit);
      }
    }
    (hit ? stats_.target_hits : stats_.target_misses)++;
    if (from_disk) ++stats_.disk_hits;
  }
  if (trace != nullptr) {
    trace->RecordCacheAccess("target", hit.has_value(), key.hex());
    if (from_disk) trace->IncrementCounter("cache.disk.hit");
    if (disk_miss) trace->IncrementCounter("cache.disk.miss");
  }
  return hit;
}

void CompilationCache::StoreFrontend(const CacheKey& key,
                                     FrontendArtifacts value,
                                     sim::TraceSink* trace) {
  support::DiskStore::PutResult put;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (support::DiskStore* store = disk()) {
      put = store->Put("frontend", key.canonical,
                       EncodeFrontendArtifacts(value));
      if (put.stored) ++stats_.disk_stores;
    }
    Insert(frontend_, key, std::move(value));
  }
  if (trace != nullptr && put.stored) {
    trace->IncrementCounter("cache.disk.store");
    if (put.evicted > 0)
      trace->IncrementCounter("cache.disk.evict",
                              static_cast<long long>(put.evicted));
  }
}

void CompilationCache::StoreTarget(const CacheKey& key, CompiledKernel value,
                                   sim::TraceSink* trace) {
  support::DiskStore::PutResult put;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (support::DiskStore* store = disk()) {
      put = store->Put("target", key.canonical, EncodeCompiledKernel(value));
      if (put.stored) ++stats_.disk_stores;
    }
    Insert(target_, key, std::move(value));
  }
  if (trace != nullptr && put.stored) {
    trace->IncrementCounter("cache.disk.store");
    if (put.evicted > 0)
      trace->IncrementCounter("cache.disk.evict",
                              static_cast<long long>(put.evicted));
  }
}

CompilationCache::Stats CompilationCache::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

std::size_t CompilationCache::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::size_t n = 0;
  for (const auto& [hash, bucket] : frontend_) n += bucket.size();
  for (const auto& [hash, bucket] : target_) n += bucket.size();
  return n;
}

void CompilationCache::Clear() {
  const std::lock_guard<std::mutex> lock(mutex_);
  frontend_.clear();
  target_.clear();
  stats_ = Stats{};
}

CompilationCache& GlobalCompilationCache() {
  static CompilationCache* cache = new CompilationCache();
  return *cache;
}

}  // namespace hipacc::compiler
