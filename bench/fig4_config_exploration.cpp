// Reproduces Figure 4: configuration-space exploration for the bilateral
// filter (13x13 window) on a 4096x4096 image, Tesla C2050, CUDA backend.
// Prints one point per (threads, tiling, pixels-per-thread) configuration —
// execution time vs block size — plus the configuration Algorithm 2 selects
// and the measured optimum. The paper's heuristic pick (32x6) is optimal
// there; ours must be optimal or within ~10% (Section VI-B). The PPT axis
// extends the paper's space: each candidate is recompiled per value, so the
// sweep covers (block config) x (pixels per thread).
//
//   --explore-jobs=N   parallel measurement workers (0 = all cores);
//                      results are identical for every N, only wall-clock
//                      changes
//   --ppt=N|auto       restrict the sweep to one PPT value (default: sweep
//                      1, 2, 4, 8)
//   --json-out=FILE    BENCH_*.json report path (default BENCH_fig4.json)
//   --trace-out=FILE   Chrome trace_event timeline (chrome://tracing)
//   --sim-engine=E     simulator engine: bytecode (default) or ast
#include <cstdio>
#include <string>

#include "common/table.hpp"
#include "compiler/explore.hpp"
#include "hwmodel/device_db.hpp"
#include "ops/kernel_sources.hpp"
#include "sim/trace.hpp"
#include "support/stopwatch.hpp"

int main(int argc, char** argv) {
  using namespace hipacc;
  const int n = 4096;
  const int sigma_d = 3, sigma_r = 5;
  const hw::DeviceSpec device = hw::TeslaC2050();

  compiler::ExploreOptions eopts;
  std::string json_out = "BENCH_fig4.json";
  std::string trace_out;
  support::CliParser cli = bench::MakeBenchCli(
      "fig4_config_exploration",
      "Figure 4: configuration-space exploration, bilateral 13x13");
  cli.Int("explore-jobs", &eopts.jobs, "N",
          "parallel measurement workers (0 = all cores)");
  cli.String("json-out", &json_out, "FILE", "BENCH_*.json report path");
  cli.String("trace-out", &trace_out, "FILE",
             "Chrome trace_event timeline (chrome://tracing)");
  if (const int code = cli.HandleArgs(argc, argv); code >= 0) return code;
  sim::TraceSink trace;
  if (!trace_out.empty()) eopts.trace = &trace;
  Stopwatch wall;

  frontend::KernelSource source =
      ops::BilateralMaskSource(sigma_d, ast::BoundaryMode::kClamp);
  compiler::CompileOptions copts;
  copts.codegen.backend = ast::Backend::kCuda;
  copts.device = device;
  copts.image_width = n;
  copts.image_height = n;
  if (!trace_out.empty()) copts.trace = &trace;

  // The heuristic pick: pixels_per_thread=0 runs the Algorithm 2 extension
  // that scores (block config x PPT) jointly and keeps the best.
  compiler::CompileOptions auto_opts = copts;
  auto_opts.codegen.pixels_per_thread = 0;
  Result<compiler::CompiledKernel> compiled =
      compiler::Compile(source, auto_opts);
  if (!compiled.ok()) {
    std::fprintf(stderr, "compile failed: %s\n",
                 compiled.status().ToString().c_str());
    return 1;
  }
  const compiler::CompiledKernel& kernel = compiled.value();

  dsl::Image<float> in(n, n), out(n, n);
  runtime::BindingSet bindings;
  bindings.Input("Input", in).Output(out).Scalar("sigma_d", sigma_d).Scalar(
      "sigma_r", sigma_r);

  // Sweep the PPT axis by recompiling per value; each compile's valid
  // configuration set is explored independently and the points merged.
  std::vector<int> ppt_values = {1, 2, 4, 8};
  if (bench::Tuning().ppt > 0) ppt_values = {bench::Tuning().ppt};
  std::vector<compiler::ExplorePoint> points;
  for (const int ppt : ppt_values) {
    compiler::CompileOptions popts = copts;
    popts.codegen.pixels_per_thread = ppt;
    Result<compiler::CompiledKernel> variant =
        compiler::Compile(source, popts);
    if (!variant.ok()) {
      std::fprintf(stderr, "compile (ppt=%d) failed: %s\n", ppt,
                   variant.status().ToString().c_str());
      return 1;
    }
    Result<std::vector<compiler::ExplorePoint>> swept =
        compiler::ExploreConfigurations(variant.value(), device, bindings,
                                        eopts);
    if (!swept.ok()) {
      std::fprintf(stderr, "exploration (ppt=%d) failed: %s\n", ppt,
                   swept.status().ToString().c_str());
      return 1;
    }
    points.insert(points.end(), swept.value().begin(), swept.value().end());
  }
  const double wall_ms = wall.ElapsedMs();

  std::printf(
      "Figure 4: configuration space exploration, bilateral filter 13x13,\n"
      "4096x4096 image, Tesla C2050 (CUDA). One line per configuration\n"
      "(block size x pixels per thread).\n\n");
  std::printf("%8s  %6s  %6s  %4s  %9s  %14s  %10s\n", "threads", "blk_x",
              "blk_y", "ppt", "occupancy", "border_threads", "time_ms");
  const compiler::ExplorePoint* best = nullptr;
  for (const auto& p : points) {
    std::printf("%8d  %6d  %6d  %4d  %8.0f%%  %14lld  %10.2f\n",
                p.config.threads(), p.config.block_x, p.config.block_y, p.ppt,
                100.0 * p.occupancy, p.border_threads, p.ms);
    if (!best || p.ms < best->ms) best = &p;
  }

  std::printf("\nHeuristic (Algorithm 2) selected: %dx%d, ppt %d\n",
              kernel.config.config.block_x, kernel.config.config.block_y,
              kernel.device_ir.ppt);
  if (best) {
    std::printf("Exploration optimum: %dx%d ppt %d at %.2f ms\n",
                best->config.block_x, best->config.block_y, best->ppt,
                best->ms);
    for (const auto& p : points) {
      if (p.config == kernel.config.config && p.ppt == kernel.device_ir.ppt)
        std::printf(
            "Heuristic pick measured at %.2f ms (%.1f%% above optimum)\n",
            p.ms, 100.0 * (p.ms / best->ms - 1.0));
    }
  }
  std::printf("Exploration wall-clock: %.0f ms (%d jobs)\n", wall_ms,
              eopts.jobs);

  if (!json_out.empty()) {
    support::Json doc =
        compiler::ExploreReportJson(kernel, device, n, n, points);
    doc["bench"] = "fig4_config_exploration";
    doc["jobs"] = eopts.jobs;
    doc["wall_ms"] = wall_ms;
    const Status written = support::WriteFile(json_out, doc.Dump(2) + "\n");
    if (!written.ok())
      std::fprintf(stderr, "warning: %s\n", written.ToString().c_str());
    else
      std::fprintf(stderr, "wrote %s\n", json_out.c_str());
  }
  if (!trace_out.empty()) {
    const Status written = trace.WriteChromeTrace(trace_out);
    if (!written.ok())
      std::fprintf(stderr, "warning: %s\n", written.ToString().c_str());
    else
      std::fprintf(stderr, "wrote %s\n", trace_out.c_str());
  }
  return 0;
}
