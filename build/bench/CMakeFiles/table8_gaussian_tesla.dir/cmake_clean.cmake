file(REMOVE_RECURSE
  "CMakeFiles/table8_gaussian_tesla.dir/table8_gaussian_tesla.cpp.o"
  "CMakeFiles/table8_gaussian_tesla.dir/table8_gaussian_tesla.cpp.o.d"
  "table8_gaussian_tesla"
  "table8_gaussian_tesla.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table8_gaussian_tesla.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
