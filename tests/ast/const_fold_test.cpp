// Constant folding — parameterized over operator/operand/result triples,
// plus identity simplifications and foldable math calls.
#include "ast/const_fold.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "ast/printer.hpp"

namespace hipacc::ast {
namespace {

struct FoldCase {
  BinaryOp op;
  double lhs;
  double rhs;
  bool ints;
  double expected;
};

class BinaryFoldTest : public ::testing::TestWithParam<FoldCase> {};

TEST_P(BinaryFoldTest, FoldsToLiteral) {
  const FoldCase c = GetParam();
  const ExprPtr lhs = c.ints ? IntLit(static_cast<long long>(c.lhs))
                             : FloatLit(c.lhs);
  const ExprPtr rhs = c.ints ? IntLit(static_cast<long long>(c.rhs))
                             : FloatLit(c.rhs);
  const ExprPtr folded = FoldConstants(Binary(c.op, lhs, rhs));
  double value = 0.0;
  ASSERT_TRUE(EvaluateConstant(folded, &value)) << PrintExpr(folded);
  EXPECT_DOUBLE_EQ(value, c.expected);
}

INSTANTIATE_TEST_SUITE_P(
    Arithmetic, BinaryFoldTest,
    ::testing::Values(FoldCase{BinaryOp::kAdd, 2, 3, true, 5},
                      FoldCase{BinaryOp::kSub, 2, 3, true, -1},
                      FoldCase{BinaryOp::kMul, -4, 3, true, -12},
                      FoldCase{BinaryOp::kDiv, 7, 2, true, 3},    // int division
                      FoldCase{BinaryOp::kDiv, 7, 2, false, 3.5},
                      FoldCase{BinaryOp::kMod, 7, 3, true, 1},
                      FoldCase{BinaryOp::kAdd, 0.5, 0.25, false, 0.75},
                      FoldCase{BinaryOp::kLt, 1, 2, true, 1},
                      FoldCase{BinaryOp::kGe, 1, 2, true, 0},
                      FoldCase{BinaryOp::kEq, 3, 3, true, 1},
                      FoldCase{BinaryOp::kNe, 3, 3, true, 0},
                      FoldCase{BinaryOp::kAnd, 1, 0, true, 0},
                      FoldCase{BinaryOp::kOr, 1, 0, true, 1}));

TEST(ConstFoldTest, UnaryNegAndNot) {
  double v = 0.0;
  EXPECT_TRUE(EvaluateConstant(Unary(UnaryOp::kNeg, IntLit(5)), &v));
  EXPECT_EQ(v, -5.0);
  EXPECT_TRUE(EvaluateConstant(Unary(UnaryOp::kNot, BoolLit(false)), &v));
  EXPECT_EQ(v, 1.0);
}

TEST(ConstFoldTest, IdentitiesPreserveNonConstantOperand) {
  const ExprPtr x = VarRef("x", ScalarType::kFloat);
  EXPECT_EQ(FoldConstants(Binary(BinaryOp::kAdd, x, FloatLit(0.0))), x);
  EXPECT_EQ(FoldConstants(Binary(BinaryOp::kMul, x, FloatLit(1.0))), x);
  EXPECT_EQ(FoldConstants(Binary(BinaryOp::kMul, FloatLit(1.0), x)), x);
  EXPECT_EQ(FoldConstants(Binary(BinaryOp::kSub, x, FloatLit(0.0))), x);
  // x * 0 must NOT fold for floats (x could be NaN/inf).
  const ExprPtr folded = FoldConstants(Binary(BinaryOp::kMul, x, FloatLit(0.0)));
  EXPECT_EQ(folded->kind, ExprKind::kBinary);
  // ... but folds for ints.
  const ExprPtr xi = VarRef("i", ScalarType::kInt);
  double v = -1.0;
  EXPECT_TRUE(EvaluateConstant(Binary(BinaryOp::kMul, xi, IntLit(0)), &v));
  EXPECT_EQ(v, 0.0);
}

TEST(ConstFoldTest, DivisionByZeroLeftUnfolded) {
  const ExprPtr div = Binary(BinaryOp::kDiv, IntLit(1), IntLit(0));
  EXPECT_EQ(FoldConstants(div)->kind, ExprKind::kBinary);
}

TEST(ConstFoldTest, FoldsMathCallsOnLiterals) {
  double v = 0.0;
  ASSERT_TRUE(EvaluateConstant(Call("exp", {FloatLit(0.0)}, ScalarType::kFloat), &v));
  EXPECT_FLOAT_EQ(static_cast<float>(v), 1.0f);
  ASSERT_TRUE(EvaluateConstant(Call("sqrt", {FloatLit(4.0)}, ScalarType::kFloat), &v));
  EXPECT_FLOAT_EQ(static_cast<float>(v), 2.0f);
  ASSERT_TRUE(EvaluateConstant(
      Call("fmax", {FloatLit(1.0), FloatLit(2.0)}, ScalarType::kFloat), &v));
  EXPECT_FLOAT_EQ(static_cast<float>(v), 2.0f);
  // CUDA-suffixed spellings fold too (folding runs before function mapping).
  ASSERT_TRUE(EvaluateConstant(Call("expf", {FloatLit(0.0)}, ScalarType::kFloat), &v));
  EXPECT_FLOAT_EQ(static_cast<float>(v), 1.0f);
}

TEST(ConstFoldTest, CallWithVariableArgStaysUnfolded) {
  const ExprPtr call =
      Call("exp", {VarRef("x", ScalarType::kFloat)}, ScalarType::kFloat);
  EXPECT_EQ(FoldConstants(call), call);
}

TEST(ConstFoldTest, ConditionalOnLiteralSelectsBranch) {
  const ExprPtr t = VarRef("t", ScalarType::kFloat);
  const ExprPtr f = VarRef("f", ScalarType::kFloat);
  EXPECT_EQ(FoldConstants(Conditional(BoolLit(true), t, f)), t);
  EXPECT_EQ(FoldConstants(Conditional(BoolLit(false), t, f)), f);
}

TEST(ConstFoldTest, NestedExpressionFoldsBottomUp) {
  // (2 * sigma) with sigma = 3 folded in: -2*3 .. taken from the bilateral
  // loop bounds shape: -(2*3) -> -6.
  const ExprPtr e = Unary(UnaryOp::kNeg, Binary(BinaryOp::kMul, IntLit(2), IntLit(3)));
  double v = 0.0;
  ASSERT_TRUE(EvaluateConstant(e, &v));
  EXPECT_EQ(v, -6.0);
}

TEST(ConstFoldTest, FoldsInsideStatements) {
  const StmtPtr stmt = Decl(ScalarType::kFloat, "c",
                            Binary(BinaryOp::kMul, FloatLit(2.0), FloatLit(4.0)));
  const StmtPtr folded = FoldConstants(stmt);
  ASSERT_EQ(folded->kind, StmtKind::kDecl);
  EXPECT_EQ(folded->value->kind, ExprKind::kFloatLit);
  EXPECT_DOUBLE_EQ(folded->value->float_value, 8.0);
}

TEST(ConstFoldTest, SharesUnchangedSubtrees) {
  const ExprPtr x = VarRef("x", ScalarType::kFloat);
  const ExprPtr sum = Binary(BinaryOp::kAdd, x, VarRef("y", ScalarType::kFloat));
  EXPECT_EQ(FoldConstants(sum), sum);  // nothing to fold: same node returned
}

}  // namespace
}  // namespace hipacc::ast
