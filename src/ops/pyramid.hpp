// Multiresolution (Laplacian-pyramid) filtering — the medical-imaging use
// case the paper cites for Mirror boundary handling (Section III-A, ref
// [7]): an image is repeatedly downsampled/upsampled; replicating the border
// pixel produces large unnatural artifacts at each upsampling, mirroring
// produces natural-looking borders. Built on the DSL's Convolution kernel so
// the whole pipeline exercises the framework.
#pragma once

#include <vector>

#include "ast/metadata.hpp"
#include "image/host_image.hpp"

namespace hipacc::ops {

/// 5-tap Gaussian smoothing followed by factor-2 decimation.
HostImage<float> PyramidDown(const HostImage<float>& image,
                             ast::BoundaryMode mode);

/// Zero-insertion upsampling to (target_width, target_height) followed by
/// 5-tap Gaussian interpolation (gain 4).
HostImage<float> PyramidUp(const HostImage<float>& image, int target_width,
                           int target_height, ast::BoundaryMode mode);

/// Laplacian-pyramid band-pass filter: decomposes into `levels` detail
/// bands, scales band i by gains[i] (missing entries default to 1), and
/// reconstructs. With gains > 1 this is the classic multiresolution
/// enhancement used in angiography processing.
HostImage<float> MultiresolutionFilter(const HostImage<float>& image,
                                       int levels,
                                       const std::vector<float>& gains,
                                       ast::BoundaryMode mode);

}  // namespace hipacc::ops
