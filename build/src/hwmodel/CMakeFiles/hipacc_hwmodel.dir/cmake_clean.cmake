file(REMOVE_RECURSE
  "CMakeFiles/hipacc_hwmodel.dir/config.cpp.o"
  "CMakeFiles/hipacc_hwmodel.dir/config.cpp.o.d"
  "CMakeFiles/hipacc_hwmodel.dir/device_db.cpp.o"
  "CMakeFiles/hipacc_hwmodel.dir/device_db.cpp.o.d"
  "CMakeFiles/hipacc_hwmodel.dir/heuristic.cpp.o"
  "CMakeFiles/hipacc_hwmodel.dir/heuristic.cpp.o.d"
  "CMakeFiles/hipacc_hwmodel.dir/occupancy.cpp.o"
  "CMakeFiles/hipacc_hwmodel.dir/occupancy.cpp.o.d"
  "libhipacc_hwmodel.a"
  "libhipacc_hwmodel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hipacc_hwmodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
