// Host-side runtime: binds DSL objects (Image, Mask, scalar params) to a
// simulated-device kernel launch — the role of the generated host code and
// run-time library in the paper (memory allocation, argument setup, texture
// binding, kernel invocation).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "dsl/image.hpp"
#include "sim/launch.hpp"

namespace hipacc::runtime {

/// Named arguments for one kernel launch.
class BindingSet {
 public:
  /// Binds an input image under the accessor's name.
  BindingSet& Input(const std::string& name, dsl::Image<float>& image) {
    inputs_[name] = &image;
    return *this;
  }
  /// Binds the output image (the iteration-space image).
  BindingSet& Output(dsl::Image<float>& image) {
    output_ = &image;
    return *this;
  }
  /// Binds mask coefficients (constant-memory or global-memory masks alike).
  BindingSet& MaskValues(const std::string& name, std::vector<float> values) {
    masks_[name] = std::move(values);
    return *this;
  }
  /// Binds a scalar kernel parameter.
  BindingSet& Scalar(const std::string& name, double value) {
    scalars_[name] = value;
    return *this;
  }

  const std::map<std::string, dsl::Image<float>*>& inputs() const { return inputs_; }
  dsl::Image<float>* output() const { return output_; }
  const std::map<std::string, std::vector<float>>& masks() const { return masks_; }
  const std::map<std::string, double>& scalars() const { return scalars_; }

 private:
  std::map<std::string, dsl::Image<float>*> inputs_;
  dsl::Image<float>* output_ = nullptr;
  std::map<std::string, std::vector<float>> masks_;
  std::map<std::string, double> scalars_;
};

/// Assembles a sim::Launch for `kernel` from `bindings`: images become
/// BufferBindings (inputs under their accessor names, output as "_out"),
/// constant masks go to the launch's constant-memory table, global masks
/// get a buffer view over their coefficients (storage stays alive inside
/// the returned holder).
struct LaunchHolder {
  sim::Launch launch;
  /// Backing storage for global-mask buffers referenced by the launch.
  std::vector<std::vector<float>> owned;
};

Result<LaunchHolder> BuildLaunch(const ast::DeviceKernel& kernel,
                                 const hw::KernelConfig& config,
                                 const BindingSet& bindings);

}  // namespace hipacc::runtime
