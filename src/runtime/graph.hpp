// Pipeline graph runtime (the PR 4 tentpole): applications declare a DAG of
// DSL kernel stages over *named virtual images*, and the runtime does what
// HIPAcc's generated host code would otherwise hard-code per application —
// topologically schedules the stages, compiles every kernel through the
// compilation cache (concurrently for independent stages), executes
// independent branches on worker threads, recycles intermediate device
// buffers through an extent-keyed BufferPool, and runs the fusion planner
// (compiler/fusion_planner.hpp) over the DAG: point-wise chains like
// "convolve -> scale-and-subtract" collapse into one launch, sibling stages
// reading the same image merge into one multi-output kernel, and small
// producers are inlined into consuming local operators with halo recompute
// — whichever candidates are legal and modelled as profitable.
//
//   PipelineGraph graph;
//   graph.Source("in", w, h)
//        .Kernel("blur", ops::ConvolutionSource(...), {{"Input", "in"}})
//        .Kernel("edge", ops::ThresholdSource(), {{"Input", "blur"}},
//                {{"threshold", 0.5}})
//        .Output("edge");
//   graph.Run({{"in", &host_in}}, {{"edge", &host_out}});
//
// Stage declaration is order-free: a stage may consume an image that is
// declared later. Run() validates the graph — unknown images, duplicate
// producers, and cycles are reported with the offending stage names.
//
// Execution semantics: every stage runs exactly once per Run(), producers
// before consumers; outputs are bit-identical to running the same kernels
// eagerly one by one (the host bytecode executor and the simulator engines
// share per-operation float semantics; point and horizontal fusion compose
// unchanged per-pixel arithmetic, and halo fusion re-evaluates the producer
// at boundary-remapped coordinates that reproduce the eliminated image's
// reads exactly).
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "compiler/fusion_planner.hpp"
#include "frontend/parser.hpp"
#include "image/host_image.hpp"
#include "runtime/buffer_pool.hpp"
#include "runtime/run_options.hpp"

namespace hipacc::runtime {

struct GraphOptions {
  /// How kernels run: the execution path for each stage.
  enum class Executor {
    kAuto,       ///< host bytecode executor, simulator when unsupported
    kHost,       ///< host bytecode executor only; unsupported stages fail
    kSimulator,  ///< simulated device for every stage
  };

  /// Compilation and launch options shared by every stage.
  RunOptions run;
  /// Which fusion kinds the planner (compiler/fusion_planner.hpp) may apply:
  /// point-wise producer→consumer inlining, horizontal sibling merges into
  /// multi-output kernels, halo-recompute inlining into local operators —
  /// or any combination. All outputs stay bit-identical to running the
  /// stages unfused.
  compiler::FusionMode fuse = compiler::FusionMode::kAll;
  /// When set, every fusion candidate the planner examined appends its
  /// accept/reject decision here (the --explain-fusion flag).
  std::vector<compiler::CandidateDecision>* explain = nullptr;
  /// Rewrite rank-1 (separable) 2D convolution stages into a row pass plus
  /// a column pass over a pooled intermediate image (compiler/separate.hpp).
  /// Off by default: the split reorders float arithmetic, so results match
  /// the direct kernel only up to factorization rounding (~1e-6 relative),
  /// not bit-exactly.
  bool separate = false;
  /// Worker threads executing independent DAG branches (0 = hardware
  /// concurrency). Results are identical for any worker count.
  int workers = 0;
  Executor executor = Executor::kAuto;
};

class PipelineGraph {
 public:
  using InputBindings =
      std::vector<std::pair<std::string, const HostImage<float>*>>;
  using OutputBindings = std::vector<std::pair<std::string, HostImage<float>*>>;

  /// Declares an external input image of the given extent. The virtual
  /// image `name` must be bound in Run()'s inputs.
  PipelineGraph& Source(std::string name, int width, int height);

  /// Declares a DSL kernel stage producing virtual image `name` (extent:
  /// that of its first input). `inputs` maps the kernel's accessor names to
  /// virtual images; `scalars` binds scalar kernel parameters.
  PipelineGraph& Kernel(
      std::string name, frontend::KernelSource kernel,
      std::vector<std::pair<std::string, std::string>> inputs,
      std::vector<std::pair<std::string, double>> scalars = {});

  /// Factor-2 decimation (host stage): out(x, y) = in(2x, 2y), extent
  /// ((w+1)/2, (h+1)/2). Not expressible as a local operator (the paper's
  /// DSL iterates output-aligned windows), hence a built-in.
  PipelineGraph& Decimate2(std::string name, std::string input);

  /// Zero-insertion upsampling (host stage): out(2x, 2y) = in(x, y), all
  /// other pixels 0, to an explicit target extent.
  PipelineGraph& ZeroUpsample(std::string name, std::string input, int width,
                              int height);

  /// Marks a virtual image as an external output, to be bound in Run().
  PipelineGraph& Output(std::string name);

  /// Validates, schedules, and executes the graph. Each entry of `outputs`
  /// is overwritten with its image's pixels.
  Status Run(const InputBindings& inputs, const OutputBindings& outputs,
             const GraphOptions& options = {});

  /// Declared stages (sources count; fusion does not change this).
  std::size_t stage_count() const { return nodes_.size(); }

  /// The pool backing intermediate images. Persistent across Run() calls,
  /// so repeated runs reuse every buffer of the first.
  const BufferPool& pool() const { return pool_; }

  /// One declared stage. Public so the execution plan (graph_plan.hpp) can
  /// speak the same vocabulary; applications use the builder methods above.
  struct Node {
    enum class Kind { kSource, kKernel, kDecimate, kUpsample };
    Kind kind = Kind::kSource;
    std::string name;  ///< the virtual image this stage produces
    frontend::KernelSource kernel;  ///< kKernel only
    /// accessor -> virtual image (kKernel); single entry with empty
    /// accessor for the host stages.
    std::vector<std::pair<std::string, std::string>> inputs;
    std::vector<std::pair<std::string, double>> scalars;
    int width = 0;   ///< declared extent (kSource / kUpsample)
    int height = 0;
  };

 private:
  friend struct GraphPlan;

  PipelineGraph& AddNode(Node node);

  std::vector<Node> nodes_;
  std::vector<std::string> outputs_;
  /// First declaration-time error (duplicate producer, ...), surfaced by
  /// Run() — the chainable builder cannot return Status.
  Status deferred_error_ = Status::Ok();
  BufferPool pool_;
};

}  // namespace hipacc::runtime
