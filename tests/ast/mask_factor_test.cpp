// Property tests for the rank-1 mask factorization: factoring a separable
// mask must reconstruct it within tolerance, and genuinely 2D masks
// (Laplacian, combined Sobel-XY) must be rejected.
#include "ast/mask_factor.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>

#include "ops/masks.hpp"

namespace hipacc {
namespace {

double ReconstructionError(const std::vector<float>& mask,
                           const ast::Rank1Factors& factors, int size_x,
                           int size_y) {
  double worst = 0.0;
  for (int y = 0; y < size_y; ++y)
    for (int x = 0; x < size_x; ++x) {
      const double rebuilt = static_cast<double>(factors.col[y]) *
                             static_cast<double>(factors.row[x]);
      worst = std::max(worst,
                       std::abs(rebuilt - mask[static_cast<size_t>(y) * size_x + x]));
    }
  return worst;
}

double MaxAbs(const std::vector<float>& mask) {
  double m = 0.0;
  for (const float v : mask) m = std::max(m, std::abs(static_cast<double>(v)));
  return m;
}

TEST(MaskFactorTest, ReconstructsSeparableMasks) {
  // Gaussians of every odd size/width, box filters, and a single-axis
  // Sobel — all rank-1 by construction.
  for (const int size : {3, 5, 7, 9}) {
    for (const float sigma : {0.8f, 1.5f, 3.0f}) {
      const auto mask = ops::GaussianMask2D(size, sigma);
      const auto factors = ast::FactorizeRank1(mask, size, size);
      ASSERT_TRUE(factors.has_value()) << "gaussian " << size << "/" << sigma;
      EXPECT_LE(ReconstructionError(mask, *factors, size, size),
                1e-5 * MaxAbs(mask));
    }
    const auto box = ops::BoxMask(size);
    const auto factors = ast::FactorizeRank1(box, size, size);
    ASSERT_TRUE(factors.has_value()) << "box " << size;
    EXPECT_LE(ReconstructionError(box, *factors, size, size),
              1e-5 * MaxAbs(box));
  }
  const auto sobel_x = ops::SobelMaskX();  // [1 2 1]^T x [-1 0 1]
  const auto factors = ast::FactorizeRank1(sobel_x, 3, 3);
  ASSERT_TRUE(factors.has_value());
  EXPECT_LE(ReconstructionError(sobel_x, *factors, 3, 3), 1e-5 * 2.0);
}

TEST(MaskFactorTest, BalancesFactorMagnitudes) {
  const auto mask = ops::GaussianMask2D(5, 1.2f);
  const auto factors = ast::FactorizeRank1(mask, 5, 5);
  ASSERT_TRUE(factors.has_value());
  double row_inf = 0.0, col_inf = 0.0;
  for (const float v : factors->row)
    row_inf = std::max(row_inf, std::abs(static_cast<double>(v)));
  for (const float v : factors->col)
    col_inf = std::max(col_inf, std::abs(static_cast<double>(v)));
  EXPECT_NEAR(row_inf, col_inf, 1e-6);
}

TEST(MaskFactorTest, RejectsNonSeparableMasks) {
  EXPECT_FALSE(ast::FactorizeRank1(ops::LaplacianMask3(), 3, 3).has_value());

  // Sobel X + Sobel Y: each is rank-1, their sum is rank-2.
  const auto sx = ops::SobelMaskX();
  const auto sy = ops::SobelMaskY();
  std::vector<float> combined(9);
  for (int i = 0; i < 9; ++i) combined[static_cast<size_t>(i)] = sx[i] + sy[i];
  EXPECT_FALSE(ast::FactorizeRank1(combined, 3, 3).has_value());

  // Deterministic pseudo-noise: separable only with vanishing probability.
  std::vector<float> noise(25);
  unsigned state = 12345u;
  for (float& v : noise) {
    state = state * 1664525u + 1013904223u;
    v = static_cast<float>(state >> 16) / 65536.0f - 0.5f;
  }
  EXPECT_FALSE(ast::FactorizeRank1(noise, 5, 5).has_value());
}

TEST(MaskFactorTest, RejectsDegenerateInputs) {
  EXPECT_FALSE(ast::FactorizeRank1({0.0f, 0.0f, 0.0f, 0.0f}, 2, 2).has_value());
  EXPECT_FALSE(ast::FactorizeRank1({1.0f, 2.0f}, 3, 3).has_value());  // size
  EXPECT_FALSE(ast::FactorizeRank1({}, 0, 0).has_value());

  // A mask with one zero row/column is still rank-1.
  const std::vector<float> ridge = {0.0f, 0.0f, 0.0f,  //
                                    1.0f, 2.0f, 1.0f,  //
                                    0.0f, 0.0f, 0.0f};
  const auto factors = ast::FactorizeRank1(ridge, 3, 3);
  ASSERT_TRUE(factors.has_value());
  EXPECT_LE(ReconstructionError(ridge, *factors, 3, 3), 1e-5 * 2.0);
}

}  // namespace
}  // namespace hipacc
