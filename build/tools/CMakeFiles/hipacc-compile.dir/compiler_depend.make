# Empty compiler generated dependencies file for hipacc-compile.
# This may be replaced when dependencies are built.
