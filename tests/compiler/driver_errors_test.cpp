// Driver error paths: parse failures, invalid forced configurations on
// every device in the database, and unsupported backend/boundary-mode
// combinations — each must surface the right StatusCode instead of
// crashing or emitting bogus source.
#include <gtest/gtest.h>

#include "compiler/cache.hpp"
#include "compiler/driver.hpp"
#include "hwmodel/device_db.hpp"
#include "ops/kernel_sources.hpp"

namespace hipacc {
namespace {

TEST(DriverErrorsTest, ParseFailurePropagates) {
  frontend::KernelSource source =
      ops::BilateralMaskSource(1, ast::BoundaryMode::kClamp);
  source.body = "output() = (undefined_fn(";
  auto compiled = compiler::Compile(source, {});
  ASSERT_FALSE(compiled.ok());
  EXPECT_EQ(compiled.status().code(), StatusCode::kParseError);
}

TEST(DriverErrorsTest, ForcedConfigExceedingLimitsFailsOnEveryDevice) {
  const frontend::KernelSource source =
      ops::BilateralMaskSource(1, ast::BoundaryMode::kClamp);
  for (const hw::DeviceSpec& device : hw::DeviceDatabase()) {
    compiler::CompileOptions options;
    options.device = device;
    // More threads than any device's block limit allows.
    options.forced_config = hw::KernelConfig{4096, 1};
    auto compiled = compiler::Compile(source, options);
    ASSERT_FALSE(compiled.ok()) << device.name;
    EXPECT_EQ(compiled.status().code(), StatusCode::kResourceExhausted)
        << device.name << ": " << compiled.status().ToString();
    // The message names the device and the offending configuration.
    EXPECT_NE(compiled.status().message().find(device.name),
              std::string::npos);
    EXPECT_NE(compiled.status().message().find("4096x1"), std::string::npos);
  }
}

TEST(DriverErrorsTest, Array2dTextureRejectsMirrorBoundary) {
  const frontend::KernelSource source =
      ops::BilateralMaskSource(1, ast::BoundaryMode::kMirror);
  compiler::CompileOptions options;
  options.codegen.texture = codegen::TexturePolicy::kArray2D;
  auto compiled = compiler::Compile(source, options);
  ASSERT_FALSE(compiled.ok());
  EXPECT_EQ(compiled.status().code(), StatusCode::kUnimplemented);
}

TEST(DriverErrorsTest, Array2dTextureRejectsConstantBoundaryOnCuda) {
  const frontend::KernelSource source =
      ops::BilateralMaskSource(1, ast::BoundaryMode::kConstant);
  compiler::CompileOptions options;
  options.codegen.backend = ast::Backend::kCuda;
  options.codegen.texture = codegen::TexturePolicy::kArray2D;
  auto compiled = compiler::Compile(source, options);
  ASSERT_FALSE(compiled.ok());
  EXPECT_EQ(compiled.status().code(), StatusCode::kUnimplemented);
}

TEST(DriverErrorsTest, FailedCompilationDoesNotPoisonTheCache) {
  // A failing compilation stores nothing: the error repeats on a second
  // attempt instead of a bogus artifact appearing as a hit.
  compiler::CompilationCache cache;
  frontend::KernelSource source =
      ops::BilateralMaskSource(1, ast::BoundaryMode::kMirror);
  compiler::CompileOptions options;
  options.codegen.texture = codegen::TexturePolicy::kArray2D;
  options.cache = &cache;
  auto first = compiler::Compile(source, options);
  auto second = compiler::Compile(source, options);
  ASSERT_FALSE(first.ok());
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(first.status().code(), second.status().code());
  EXPECT_EQ(first.status().message(), second.status().message());
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.stats().hits(), 0);
}

}  // namespace
}  // namespace hipacc
