// Shared harness for Tables II-VII: the bilateral filter (4096x4096 pixels,
// 13x13 window, sigma_d = 3, configuration 128x1) across all boundary modes
// and implementation variants on one (device, backend) pair.
#pragma once

#include <string>

#include "ast/kernel_ir.hpp"
#include "hwmodel/device_spec.hpp"

namespace hipacc::bench {

struct BilateralTableOptions {
  hw::DeviceSpec device;
  ast::Backend backend = ast::Backend::kCuda;
  bool include_rapidmind = false;  ///< Tables II and IV only
  int image_size = 4096;
  int sigma_d = 3;  ///< 13x13 window
  int sigma_r = 5;
  /// When non-empty, the table is also written there as BENCH_*.json
  /// (see common/table.hpp for the schema).
  std::string json_out;
};

/// Runs all variants x modes and returns the rendered table.
std::string RunBilateralTable(const std::string& title,
                              const BilateralTableOptions& options);

}  // namespace hipacc::bench
