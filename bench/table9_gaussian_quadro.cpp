// Reproduces Table IX: Gaussian 3x3 and 5x5 on the Quadro FX 5800.
#include <cstdio>

#include "common/gaussian_table.hpp"
#include "common/sim_engine_flag.hpp"
#include "hwmodel/device_db.hpp"

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (!hipacc::bench::HandleSimEngineFlag(argv[i])) {
      std::fprintf(stderr, "usage: table9_gaussian_quadro [--sim-engine=bytecode|ast]\n");
      return 2;
    }
  }
  hipacc::bench::GaussianTableOptions options;
  options.device = hipacc::hw::QuadroFx5800();
  options.json_out = "BENCH_table9.json";
  std::printf("%s\n",
              hipacc::bench::RunGaussianTable(
                  "Table IX: Gaussian filters, Quadro FX 5800", options)
                  .c_str());
  return 0;
}
