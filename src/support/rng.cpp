#include "support/rng.hpp"

#include <cmath>

#include "support/status.hpp"

namespace hipacc {
namespace {

std::uint64_t SplitMix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

std::uint64_t Rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

void Rng::Seed(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(sm);
}

std::uint64_t Rng::Next() {
  const std::uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

int Rng::NextInt(int lo, int hi) {
  HIPACC_CHECK(lo <= hi);
  const std::uint64_t range = static_cast<std::uint64_t>(hi) - lo + 1;
  return lo + static_cast<int>(Next() % range);
}

double Rng::NextGaussian() {
  // Box-Muller; avoids log(0) by nudging u1 away from zero.
  double u1 = NextDouble();
  if (u1 < 1e-300) u1 = 1e-300;
  const double u2 = NextDouble();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
}

}  // namespace hipacc
