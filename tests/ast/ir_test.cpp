// Node factories, type rules, and metadata helpers.
#include <gtest/gtest.h>

#include "ast/expr.hpp"
#include "ast/kernel_ir.hpp"
#include "ast/metadata.hpp"
#include "ast/stmt.hpp"

namespace hipacc::ast {
namespace {

TEST(TypeTest, PromotionRules) {
  EXPECT_EQ(Promote(ScalarType::kInt, ScalarType::kFloat), ScalarType::kFloat);
  EXPECT_EQ(Promote(ScalarType::kFloat, ScalarType::kInt), ScalarType::kFloat);
  EXPECT_EQ(Promote(ScalarType::kInt, ScalarType::kInt), ScalarType::kInt);
  EXPECT_EQ(Promote(ScalarType::kBool, ScalarType::kBool), ScalarType::kInt);
  EXPECT_EQ(Promote(ScalarType::kUInt, ScalarType::kInt), ScalarType::kUInt);
}

TEST(ExprTest, LiteralsCarryValuesAndTypes) {
  EXPECT_EQ(IntLit(7)->int_value, 7);
  EXPECT_EQ(IntLit(7)->type, ScalarType::kInt);
  EXPECT_DOUBLE_EQ(FloatLit(2.5)->float_value, 2.5);
  EXPECT_EQ(FloatLit(2.5)->type, ScalarType::kFloat);
  EXPECT_TRUE(BoolLit(true)->bool_value);
}

TEST(ExprTest, BinaryTypePromotion) {
  const ExprPtr mixed = Binary(BinaryOp::kAdd, IntLit(1), FloatLit(2.0));
  EXPECT_EQ(mixed->type, ScalarType::kFloat);
  const ExprPtr cmp = Binary(BinaryOp::kLt, IntLit(1), IntLit(2));
  EXPECT_EQ(cmp->type, ScalarType::kBool);
}

TEST(ExprTest, ComparisonClassification) {
  EXPECT_TRUE(IsComparison(BinaryOp::kLe));
  EXPECT_TRUE(IsComparison(BinaryOp::kAnd));
  EXPECT_FALSE(IsComparison(BinaryOp::kAdd));
  EXPECT_FALSE(IsComparison(BinaryOp::kMod));
}

TEST(ExprTest, AccessorReadHoldsOffsets) {
  const ExprPtr read = AccessorRead("Input", IntLit(-1), IntLit(2));
  EXPECT_EQ(read->kind, ExprKind::kAccessorRead);
  EXPECT_EQ(read->name, "Input");
  ASSERT_EQ(read->args.size(), 2u);
  EXPECT_EQ(read->args[0]->int_value, -1);
}

TEST(ExprTest, MemReadCarriesGuardsAndMode) {
  const ExprPtr read =
      MemRead(MemSpace::kGlobal, "IN", IntLit(0), IntLit(0),
              BoundaryMode::kConstant, {true, false, false, true}, 0.5f);
  EXPECT_EQ(read->space, MemSpace::kGlobal);
  EXPECT_EQ(read->boundary, BoundaryMode::kConstant);
  EXPECT_TRUE(read->checks.lo_x);
  EXPECT_FALSE(read->checks.hi_x);
  EXPECT_TRUE(read->checks.hi_y);
  EXPECT_FLOAT_EQ(read->constant_value, 0.5f);
  EXPECT_EQ(read->checks.count(), 2);
}

TEST(StmtTest, ForHoldsCanonicalLoop) {
  const StmtPtr loop = For("i", IntLit(0), IntLit(9), 2, Block({}));
  EXPECT_EQ(loop->kind, StmtKind::kFor);
  EXPECT_EQ(loop->name, "i");
  EXPECT_EQ(loop->step, 2);
}

TEST(StmtTest, IfWithAndWithoutElse) {
  const StmtPtr bare = If(BoolLit(true), Block({}));
  EXPECT_EQ(bare->body.size(), 1u);
  const StmtPtr with_else = If(BoolLit(true), Block({}), Block({}));
  EXPECT_EQ(with_else->body.size(), 2u);
}

TEST(MetadataTest, WindowExtentFromSize) {
  const WindowExtent w = WindowExtent::FromSize(13, 3);
  EXPECT_EQ(w.half_x, 6);
  EXPECT_EQ(w.half_y, 1);
  EXPECT_EQ(w.size_x(), 13);
  EXPECT_EQ(w.size_y(), 3);
}

TEST(MetadataTest, WindowUnionTakesMax) {
  const WindowExtent u = WindowExtent{2, 5}.Union({4, 1});
  EXPECT_EQ(u.half_x, 4);
  EXPECT_EQ(u.half_y, 5);
}

TEST(MetadataTest, RegionChecksMatchFigure3) {
  EXPECT_TRUE(ChecksFor(Region::kTopLeft).lo_x);
  EXPECT_TRUE(ChecksFor(Region::kTopLeft).lo_y);
  EXPECT_FALSE(ChecksFor(Region::kTopLeft).hi_x);
  EXPECT_FALSE(ChecksFor(Region::kInterior).any());
  EXPECT_EQ(ChecksFor(Region::kBottomRight).count(), 2);
  EXPECT_TRUE(ChecksFor(Region::kTop).lo_y);
  EXPECT_EQ(ChecksFor(Region::kTop).count(), 1);
  EXPECT_TRUE(ChecksFor(Region::kRight).hi_x);
}

TEST(KernelDeclTest, LookupsAndMaxWindow) {
  KernelDecl kernel;
  kernel.accessors = {{"A", {1, 1}, BoundaryMode::kClamp, 0.0f},
                      {"B", {3, 0}, BoundaryMode::kClamp, 0.0f}};
  kernel.params = {{"sigma", ScalarType::kInt}};
  kernel.masks = {{"M", 3, 3, {}}};
  EXPECT_NE(kernel.FindAccessor("A"), nullptr);
  EXPECT_EQ(kernel.FindAccessor("Z"), nullptr);
  EXPECT_NE(kernel.FindParam("sigma"), nullptr);
  EXPECT_NE(kernel.FindMask("M"), nullptr);
  EXPECT_FALSE(kernel.FindMask("M")->is_static());
  EXPECT_EQ(kernel.MaxWindow().half_x, 3);
  EXPECT_EQ(kernel.MaxWindow().half_y, 1);
  EXPECT_TRUE(kernel.NeedsBoundaryHandling());
}

TEST(KernelDeclTest, UndefinedModeNeedsNoHandling) {
  KernelDecl kernel;
  kernel.accessors = {{"A", {2, 2}, BoundaryMode::kUndefined, 0.0f}};
  EXPECT_FALSE(kernel.NeedsBoundaryHandling());
  kernel.accessors = {{"A", {0, 0}, BoundaryMode::kClamp, 0.0f}};
  EXPECT_FALSE(kernel.NeedsBoundaryHandling());  // point op: no window
}

TEST(DeviceKernelTest, VariantAndBufferLookups) {
  DeviceKernel dk;
  dk.buffers = {{"IN", MemSpace::kTexture, false, false},
                {"_out", MemSpace::kGlobal, true, false}};
  dk.variants = {{Region::kInterior, Block({})}, {Region::kTop, Block({})}};
  EXPECT_TRUE(dk.has_boundary_variants());
  ASSERT_NE(dk.output_buffer(), nullptr);
  EXPECT_EQ(dk.output_buffer()->name, "_out");
  EXPECT_NE(dk.FindVariant(Region::kTop), nullptr);
  EXPECT_EQ(dk.FindVariant(Region::kLeft), nullptr);
}

}  // namespace
}  // namespace hipacc::ast
