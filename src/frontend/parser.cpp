#include "frontend/parser.hpp"

#include <map>
#include <set>

#include "ast/builtins.hpp"
#include "ast/const_fold.hpp"
#include "ast/visitor.hpp"
#include "frontend/lexer.hpp"
#include "support/string_utils.hpp"

namespace hipacc::frontend {
namespace {

using namespace hipacc::ast;

class Parser {
 public:
  Parser(const KernelSource& source, std::vector<Token> tokens)
      : source_(source), tokens_(std::move(tokens)) {}

  Result<KernelDecl> Run() {
    KernelDecl kernel;
    kernel.name = source_.name;
    kernel.params = source_.params;
    kernel.accessors = source_.accessors;
    kernel.masks = source_.masks;
    kernel.extra_outputs = source_.extra_outputs;

    for (size_t i = 0; i < source_.extra_outputs.size(); ++i) {
      const std::string& name = source_.extra_outputs[i];
      if (name.empty()) return Error("extra output with empty name");
      for (size_t j = 0; j < i; ++j)
        if (source_.extra_outputs[j] == name)
          return Error("duplicate extra output '" + name + "'");
    }

    for (const auto& p : source_.params) scopes_.back()[p.name] = p.type;

    std::vector<StmtPtr> stmts;
    while (!Check(TokenKind::kEnd)) {
      Result<StmtPtr> stmt = ParseStmt();
      if (!stmt.ok()) return stmt.status();
      stmts.push_back(std::move(stmt).take());
    }
    if (!wrote_output_)
      return Error("kernel never assigns output()");
    for (const auto& name : source_.extra_outputs)
      if (!wrote_named_.count(name))
        return Error("kernel never assigns output(" + name + ")");
    kernel.body = Block(std::move(stmts));
    return kernel;
  }

 private:
  // ---- token helpers ------------------------------------------------------
  const Token& Peek(int off = 0) const {
    const size_t i = pos_ + static_cast<size_t>(off);
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  bool Check(TokenKind kind) const { return Peek().kind == kind; }
  bool Match(TokenKind kind) {
    if (!Check(kind)) return false;
    ++pos_;
    return true;
  }
  const Token& Advance() { return tokens_[pos_++]; }

  Status Error(const std::string& msg) const {
    return Status::Parse(StrFormat("%s:%d:%d: %s", source_.name.c_str(),
                                   Peek().line, Peek().column, msg.c_str()));
  }
  Status Expect(TokenKind kind) {
    if (Match(kind)) return Status::Ok();
    return Error(StrFormat("expected '%s', found '%s'", to_string(kind),
                           to_string(Peek().kind)));
  }

  // ---- symbol table -------------------------------------------------------
  void PushScope() { scopes_.emplace_back(); }
  void PopScope() { scopes_.pop_back(); }
  bool LookupVar(const std::string& name, ScalarType* type) const {
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
      const auto found = it->find(name);
      if (found != it->end()) {
        *type = found->second;
        return true;
      }
    }
    return false;
  }
  bool IsLocal(const std::string& name) const {
    // Everything in scopes_ except frame 0 entries that came from params.
    ScalarType type;
    if (!LookupVar(name, &type)) return false;
    for (const auto& p : source_.params)
      if (p.name == name) return false;
    return true;
  }

  // ---- statements ---------------------------------------------------------
  Result<StmtPtr> ParseStmt() {
    switch (Peek().kind) {
      case TokenKind::kKwFloat:
      case TokenKind::kKwInt:
      case TokenKind::kKwBool:
        return ParseDecl();
      case TokenKind::kKwIf:
        return ParseIf();
      case TokenKind::kKwFor:
        return ParseFor();
      case TokenKind::kKwOutput:
        return ParseOutputAssign();
      case TokenKind::kLBrace:
        return ParseBlock();
      case TokenKind::kIdent:
        return ParseAssign();
      default:
        return Error(StrFormat("unexpected token '%s' at statement start",
                               to_string(Peek().kind)));
    }
  }

  ScalarType TypeOfKeyword(TokenKind kind) const {
    switch (kind) {
      case TokenKind::kKwFloat: return ScalarType::kFloat;
      case TokenKind::kKwInt: return ScalarType::kInt;
      default: return ScalarType::kBool;
    }
  }

  Result<StmtPtr> ParseDecl() {
    const ScalarType type = TypeOfKeyword(Advance().kind);
    std::vector<StmtPtr> decls;
    do {
      if (!Check(TokenKind::kIdent)) return Error("expected variable name");
      const std::string name = Advance().text;
      if (scopes_.back().count(name))
        return Error("redeclaration of '" + name + "'");
      ExprPtr init;
      if (Match(TokenKind::kAssign)) {
        Result<ExprPtr> expr = ParseExpr();
        if (!expr.ok()) return expr.status();
        init = std::move(expr).take();
      }
      scopes_.back()[name] = type;
      decls.push_back(Decl(type, name, std::move(init)));
    } while (Match(TokenKind::kComma));
    HIPACC_RETURN_IF_ERROR(Expect(TokenKind::kSemicolon));
    if (decls.size() == 1) return decls.front();
    return Block(std::move(decls));
  }

  Result<StmtPtr> ParseAssign() {
    const std::string name = Advance().text;
    ScalarType type;
    if (!LookupVar(name, &type))
      return Error("assignment to undeclared variable '" + name + "'");
    if (!IsLocal(name))
      return Error("kernel parameters are read-only: '" + name + "'");
    AssignOp op;
    switch (Peek().kind) {
      case TokenKind::kAssign: op = AssignOp::kAssign; break;
      case TokenKind::kPlusAssign: op = AssignOp::kAddAssign; break;
      case TokenKind::kMinusAssign: op = AssignOp::kSubAssign; break;
      case TokenKind::kStarAssign: op = AssignOp::kMulAssign; break;
      case TokenKind::kSlashAssign: op = AssignOp::kDivAssign; break;
      case TokenKind::kPlusPlus:
        Advance();
        HIPACC_RETURN_IF_ERROR(Expect(TokenKind::kSemicolon));
        return Assign(name, AssignOp::kAddAssign, IntLit(1));
      case TokenKind::kMinusMinus:
        Advance();
        HIPACC_RETURN_IF_ERROR(Expect(TokenKind::kSemicolon));
        return Assign(name, AssignOp::kSubAssign, IntLit(1));
      default:
        return Error("expected assignment operator after '" + name + "'");
    }
    Advance();
    Result<ExprPtr> value = ParseExpr();
    if (!value.ok()) return value.status();
    HIPACC_RETURN_IF_ERROR(Expect(TokenKind::kSemicolon));
    return Assign(name, op, std::move(value).take());
  }

  Result<StmtPtr> ParseOutputAssign() {
    Advance();  // output
    HIPACC_RETURN_IF_ERROR(Expect(TokenKind::kLParen));
    // output(name) targets a declared extra output; bare output() the
    // primary image.
    std::string output_name;
    if (Check(TokenKind::kIdent)) {
      output_name = Advance().text;
      bool declared = false;
      for (const auto& n : source_.extra_outputs) declared |= (n == output_name);
      if (!declared)
        return Error("unknown output '" + output_name +
                     "' (not declared as an extra output)");
    }
    HIPACC_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
    HIPACC_RETURN_IF_ERROR(Expect(TokenKind::kAssign));
    Result<ExprPtr> value = ParseExpr();
    if (!value.ok()) return value.status();
    HIPACC_RETURN_IF_ERROR(Expect(TokenKind::kSemicolon));
    if (output_name.empty())
      wrote_output_ = true;
    else
      wrote_named_.insert(output_name);
    return OutputAssign(std::move(value).take(), std::move(output_name));
  }

  Result<StmtPtr> ParseIf() {
    Advance();  // if
    HIPACC_RETURN_IF_ERROR(Expect(TokenKind::kLParen));
    Result<ExprPtr> cond = ParseExpr();
    if (!cond.ok()) return cond.status();
    HIPACC_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
    Result<StmtPtr> then_stmt = ParseStmt();
    if (!then_stmt.ok()) return then_stmt.status();
    StmtPtr else_stmt;
    if (Match(TokenKind::kKwElse)) {
      Result<StmtPtr> parsed = ParseStmt();
      if (!parsed.ok()) return parsed.status();
      else_stmt = std::move(parsed).take();
    }
    return If(std::move(cond).take(), std::move(then_stmt).take(),
              std::move(else_stmt));
  }

  /// Canonical counted loops only:
  ///   for (int v = lo; v <= hi; v++) / v < hi / v += step.
  Result<StmtPtr> ParseFor() {
    Advance();  // for
    HIPACC_RETURN_IF_ERROR(Expect(TokenKind::kLParen));
    HIPACC_RETURN_IF_ERROR(Expect(TokenKind::kKwInt));
    if (!Check(TokenKind::kIdent)) return Error("expected loop variable");
    const std::string var = Advance().text;
    HIPACC_RETURN_IF_ERROR(Expect(TokenKind::kAssign));
    PushScope();
    scopes_.back()[var] = ScalarType::kInt;
    Result<ExprPtr> lo = ParseExpr();
    if (!lo.ok()) return lo.status();
    HIPACC_RETURN_IF_ERROR(Expect(TokenKind::kSemicolon));

    if (!Check(TokenKind::kIdent) || Peek().text != var)
      return Error("loop condition must test the loop variable '" + var + "'");
    Advance();
    bool exclusive;
    if (Match(TokenKind::kLe)) {
      exclusive = false;
    } else if (Match(TokenKind::kLt)) {
      exclusive = true;
    } else {
      return Error("loop condition must use '<=' or '<'");
    }
    Result<ExprPtr> hi = ParseExpr();
    if (!hi.ok()) return hi.status();
    HIPACC_RETURN_IF_ERROR(Expect(TokenKind::kSemicolon));
    ExprPtr upper = std::move(hi).take();
    if (exclusive) upper = Binary(BinaryOp::kSub, upper, IntLit(1));

    int step = 1;
    if (!Check(TokenKind::kIdent) || Peek().text != var)
      return Error("loop increment must update the loop variable '" + var + "'");
    Advance();
    if (Match(TokenKind::kPlusPlus)) {
      step = 1;
    } else if (Match(TokenKind::kPlusAssign)) {
      if (!Check(TokenKind::kIntLit)) return Error("loop step must be an integer literal");
      step = static_cast<int>(Advance().int_value);
      if (step <= 0) return Error("loop step must be positive");
    } else {
      return Error("loop increment must be '++' or '+= <int>'");
    }
    HIPACC_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
    Result<StmtPtr> body = ParseStmt();
    PopScope();
    if (!body.ok()) return body.status();
    return For(var, std::move(lo).take(), std::move(upper), step,
               std::move(body).take());
  }

  Result<StmtPtr> ParseBlock() {
    HIPACC_RETURN_IF_ERROR(Expect(TokenKind::kLBrace));
    PushScope();
    std::vector<StmtPtr> stmts;
    while (!Check(TokenKind::kRBrace) && !Check(TokenKind::kEnd)) {
      Result<StmtPtr> stmt = ParseStmt();
      if (!stmt.ok()) {
        PopScope();
        return stmt.status();
      }
      stmts.push_back(std::move(stmt).take());
    }
    PopScope();
    HIPACC_RETURN_IF_ERROR(Expect(TokenKind::kRBrace));
    return Block(std::move(stmts));
  }

  // ---- expressions (precedence climbing) ----------------------------------
  Result<ExprPtr> ParseExpr() { return ParseTernary(); }

  Result<ExprPtr> ParseTernary() {
    Result<ExprPtr> cond = ParseOr();
    if (!cond.ok()) return cond;
    if (!Match(TokenKind::kQuestion)) return cond;
    Result<ExprPtr> then_expr = ParseExpr();
    if (!then_expr.ok()) return then_expr;
    HIPACC_RETURN_IF_ERROR(Expect(TokenKind::kColon));
    Result<ExprPtr> else_expr = ParseExpr();
    if (!else_expr.ok()) return else_expr;
    return Conditional(std::move(cond).take(), std::move(then_expr).take(),
                       std::move(else_expr).take());
  }

  Result<ExprPtr> ParseOr() {
    Result<ExprPtr> lhs = ParseAnd();
    if (!lhs.ok()) return lhs;
    ExprPtr expr = std::move(lhs).take();
    while (Match(TokenKind::kOrOr)) {
      Result<ExprPtr> rhs = ParseAnd();
      if (!rhs.ok()) return rhs;
      expr = Binary(BinaryOp::kOr, std::move(expr), std::move(rhs).take());
    }
    return expr;
  }

  Result<ExprPtr> ParseAnd() {
    Result<ExprPtr> lhs = ParseEquality();
    if (!lhs.ok()) return lhs;
    ExprPtr expr = std::move(lhs).take();
    while (Match(TokenKind::kAndAnd)) {
      Result<ExprPtr> rhs = ParseEquality();
      if (!rhs.ok()) return rhs;
      expr = Binary(BinaryOp::kAnd, std::move(expr), std::move(rhs).take());
    }
    return expr;
  }

  Result<ExprPtr> ParseEquality() {
    Result<ExprPtr> lhs = ParseRelational();
    if (!lhs.ok()) return lhs;
    ExprPtr expr = std::move(lhs).take();
    while (Check(TokenKind::kEqEq) || Check(TokenKind::kNe)) {
      const BinaryOp op =
          Advance().kind == TokenKind::kEqEq ? BinaryOp::kEq : BinaryOp::kNe;
      Result<ExprPtr> rhs = ParseRelational();
      if (!rhs.ok()) return rhs;
      expr = Binary(op, std::move(expr), std::move(rhs).take());
    }
    return expr;
  }

  Result<ExprPtr> ParseRelational() {
    Result<ExprPtr> lhs = ParseAdditive();
    if (!lhs.ok()) return lhs;
    ExprPtr expr = std::move(lhs).take();
    while (true) {
      BinaryOp op;
      if (Check(TokenKind::kLt)) op = BinaryOp::kLt;
      else if (Check(TokenKind::kLe)) op = BinaryOp::kLe;
      else if (Check(TokenKind::kGt)) op = BinaryOp::kGt;
      else if (Check(TokenKind::kGe)) op = BinaryOp::kGe;
      else return expr;
      Advance();
      Result<ExprPtr> rhs = ParseAdditive();
      if (!rhs.ok()) return rhs;
      expr = Binary(op, std::move(expr), std::move(rhs).take());
    }
  }

  Result<ExprPtr> ParseAdditive() {
    Result<ExprPtr> lhs = ParseMultiplicative();
    if (!lhs.ok()) return lhs;
    ExprPtr expr = std::move(lhs).take();
    while (Check(TokenKind::kPlus) || Check(TokenKind::kMinus)) {
      const BinaryOp op =
          Advance().kind == TokenKind::kPlus ? BinaryOp::kAdd : BinaryOp::kSub;
      Result<ExprPtr> rhs = ParseMultiplicative();
      if (!rhs.ok()) return rhs;
      expr = Binary(op, std::move(expr), std::move(rhs).take());
    }
    return expr;
  }

  Result<ExprPtr> ParseMultiplicative() {
    Result<ExprPtr> lhs = ParseUnary();
    if (!lhs.ok()) return lhs;
    ExprPtr expr = std::move(lhs).take();
    while (Check(TokenKind::kStar) || Check(TokenKind::kSlash) ||
           Check(TokenKind::kPercent)) {
      BinaryOp op = BinaryOp::kMul;
      if (Peek().kind == TokenKind::kSlash) op = BinaryOp::kDiv;
      if (Peek().kind == TokenKind::kPercent) op = BinaryOp::kMod;
      Advance();
      Result<ExprPtr> rhs = ParseUnary();
      if (!rhs.ok()) return rhs;
      expr = Binary(op, std::move(expr), std::move(rhs).take());
    }
    return expr;
  }

  Result<ExprPtr> ParseUnary() {
    if (Match(TokenKind::kMinus)) {
      Result<ExprPtr> operand = ParseUnary();
      if (!operand.ok()) return operand;
      return Unary(UnaryOp::kNeg, std::move(operand).take());
    }
    if (Match(TokenKind::kNot)) {
      Result<ExprPtr> operand = ParseUnary();
      if (!operand.ok()) return operand;
      return Unary(UnaryOp::kNot, std::move(operand).take());
    }
    return ParsePrimary();
  }

  bool LooksLikeCast() const {
    if (!Check(TokenKind::kLParen)) return false;
    const TokenKind next = Peek(1).kind;
    return (next == TokenKind::kKwFloat || next == TokenKind::kKwInt ||
            next == TokenKind::kKwBool) &&
           Peek(2).kind == TokenKind::kRParen;
  }

  Result<ExprPtr> ParsePrimary() {
    if (LooksLikeCast()) {
      Advance();  // (
      const ScalarType type = TypeOfKeyword(Advance().kind);
      Advance();  // )
      Result<ExprPtr> operand = ParseUnary();
      if (!operand.ok()) return operand;
      return Cast(type, std::move(operand).take());
    }
    if (Match(TokenKind::kLParen)) {
      Result<ExprPtr> inner = ParseExpr();
      if (!inner.ok()) return inner;
      HIPACC_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
      return inner;
    }
    if (Check(TokenKind::kIntLit)) return IntLit(Advance().int_value);
    if (Check(TokenKind::kFloatLit)) return FloatLit(Advance().float_value);
    if (Match(TokenKind::kKwTrue)) return BoolLit(true);
    if (Match(TokenKind::kKwFalse)) return BoolLit(false);
    if (Check(TokenKind::kIdent)) return ParseIdentExpr();
    return Error(StrFormat("unexpected token '%s' in expression",
                           to_string(Peek().kind)));
  }

  Result<ExprPtr> ParseIdentExpr() {
    const std::string name = Advance().text;
    if (!Check(TokenKind::kLParen)) {
      // Inside convolve(M, ..., Input(M)), the bare mask name denotes the
      // current mask position.
      if (!convolve_mask_.empty() && name == convolve_mask_)
        return VarRef(kConvolvePosMarker, ScalarType::kInt);
      ScalarType type;
      if (!LookupVar(name, &type))
        return Error("use of undeclared identifier '" + name + "'");
      return VarRef(name, type);
    }
    if (name == "convolve") return ParseConvolve();
    // Call syntax: accessor, mask, x()/y(), or math builtin.
    Advance();  // (
    std::vector<ExprPtr> args;
    if (!Check(TokenKind::kRParen)) {
      do {
        Result<ExprPtr> arg = ParseExpr();
        if (!arg.ok()) return arg;
        args.push_back(std::move(arg).take());
      } while (Match(TokenKind::kComma));
    }
    HIPACC_RETURN_IF_ERROR(Expect(TokenKind::kRParen));

    if (const AccessorInfo* acc = FindAccessor(name)) {
      (void)acc;
      if (args.empty()) return AccessorRead(name, IntLit(0), IntLit(0));
      if (args.size() == 1) {
        // Input(M): pixel at the current convolve mask position.
        if (args[0]->kind == ExprKind::kVarRef &&
            args[0]->name == kConvolvePosMarker)
          return AccessorRead(name, VarRef(kConvolveX, ScalarType::kInt),
                              VarRef(kConvolveY, ScalarType::kInt));
        return Error("accessor '" + name +
                     "' with one argument expects the convolve mask");
      }
      if (args.size() == 2)
        return AccessorRead(name, std::move(args[0]), std::move(args[1]));
      return Error("accessor '" + name + "' takes 0 or 2 offset arguments");
    }
    if (const MaskInfo* mask = FindMask(name)) {
      (void)mask;
      // M() inside convolve(M, ...): the current coefficient.
      if (args.empty() && name == convolve_mask_)
        return MaskRead(name, VarRef(kConvolveX, ScalarType::kInt),
                        VarRef(kConvolveY, ScalarType::kInt));
      if (args.size() != 2)
        return Error("mask '" + name + "' takes exactly 2 index arguments");
      return MaskRead(name, std::move(args[0]), std::move(args[1]));
    }
    if (name == "x" || name == "y") {
      if (!args.empty()) return Error(name + "() takes no arguments");
      return IterIndex(name == "y");
    }
    const auto builtin = FindBuiltin(name);
    if (!builtin)
      return Error("function '" + name +
                   "' is not supported by the target backends");
    if (static_cast<int>(args.size()) != builtin->arity)
      return Error(StrFormat("function '%s' expects %d arguments, got %zu",
                             name.c_str(), builtin->arity, args.size()));
    return ast::Call(builtin->name, std::move(args), builtin->result);
  }

  /// Listing 9 / Section VIII: `convolve(M, SUM, <expr>)` — the paper's
  /// future-work syntax for convolutions, here with the promised constant
  /// propagation and loop unrolling. Inside <expr>, `M()` is the current
  /// coefficient and `Input(M)` the pixel at the current mask position. The
  /// mask must be compile-time constant (that is what enables propagation);
  /// the expression is replicated per tap with the coefficient folded in.
  Result<ExprPtr> ParseConvolve() {
    if (!convolve_mask_.empty()) return Error("convolve() cannot nest");
    HIPACC_RETURN_IF_ERROR(Expect(TokenKind::kLParen));
    if (!Check(TokenKind::kIdent)) return Error("convolve expects a mask name");
    const std::string mask_name = Advance().text;
    const MaskInfo* mask = FindMask(mask_name);
    if (!mask) return Error("'" + mask_name + "' is not a mask");
    if (!mask->is_static())
      return Error("convolve requires a compile-time-constant mask for '" +
                   mask_name + "' (constant propagation)");
    HIPACC_RETURN_IF_ERROR(Expect(TokenKind::kComma));
    if (!Check(TokenKind::kIdent))
      return Error("convolve expects a reduction (SUM, MIN, MAX, PROD)");
    const std::string reduce = Advance().text;
    if (reduce != "SUM" && reduce != "MIN" && reduce != "MAX" &&
        reduce != "PROD")
      return Error("unknown convolve reduction '" + reduce + "'");
    HIPACC_RETURN_IF_ERROR(Expect(TokenKind::kComma));

    convolve_mask_ = mask_name;
    Result<ExprPtr> body = ParseExpr();
    convolve_mask_.clear();
    if (!body.ok()) return body;
    HIPACC_RETURN_IF_ERROR(Expect(TokenKind::kRParen));

    // Unroll: one folded term per mask tap.
    const int hx = mask->size_x / 2;
    const int hy = mask->size_y / 2;
    ExprPtr acc;
    for (int yf = -hy; yf <= hy; ++yf) {
      for (int xf = -hx; xf <= hx; ++xf) {
        const float coeff =
            mask->static_values[static_cast<size_t>(yf + hy) * mask->size_x +
                                (xf + hx)];
        const ExprPtr term = ast::FoldConstants(
            SubstituteConvolveTap(body.value(), *mask, xf, yf, coeff));
        if (!acc) {
          acc = term;
        } else if (reduce == "SUM") {
          acc = Binary(ast::BinaryOp::kAdd, acc, term);
        } else if (reduce == "PROD") {
          acc = Binary(ast::BinaryOp::kMul, acc, term);
        } else {
          acc = ast::Call(reduce == "MIN" ? "fmin" : "fmax", {acc, term},
                          ScalarType::kFloat);
        }
      }
    }
    return ast::FoldConstants(acc);
  }

  /// Replaces the convolve placeholders in `body` for tap (xf, yf):
  /// position variables become literals and static mask reads with literal
  /// indices become their coefficient (constant propagation).
  ExprPtr SubstituteConvolveTap(const ExprPtr& body, const MaskInfo& mask,
                                int xf, int yf, float coeff) const {
    return ast::RewriteExpr(body, [&](const ast::Expr& e) -> ExprPtr {
      if (e.kind == ExprKind::kVarRef) {
        if (e.name == kConvolveX) return IntLit(xf);
        if (e.name == kConvolveY) return IntLit(yf);
        return nullptr;
      }
      if (e.kind == ExprKind::kMaskRead && e.name == mask.name) {
        double dx = 0.0, dy = 0.0;
        // The current-coefficient form M() carries the placeholders; after
        // the VarRef rewrite above they are literals.
        if (ast::EvaluateConstant(e.args[0], &dx) &&
            ast::EvaluateConstant(e.args[1], &dy)) {
          if (static_cast<int>(dx) == xf && static_cast<int>(dy) == yf)
            return FloatLit(static_cast<double>(coeff));
          // Explicit literal index M(a, b): propagate that coefficient too.
          const int ax = static_cast<int>(dx) + mask.size_x / 2;
          const int ay = static_cast<int>(dy) + mask.size_y / 2;
          if (ax >= 0 && ax < mask.size_x && ay >= 0 && ay < mask.size_y)
            return FloatLit(static_cast<double>(
                mask.static_values[static_cast<size_t>(ay) * mask.size_x + ax]));
        }
      }
      return nullptr;
    });
  }

  static constexpr const char kConvolvePosMarker[] = "__convolve_pos";
  static constexpr const char kConvolveX[] = "__cmx";
  static constexpr const char kConvolveY[] = "__cmy";

  const AccessorInfo* FindAccessor(const std::string& name) const {
    for (const auto& a : source_.accessors)
      if (a.name == name) return &a;
    return nullptr;
  }
  const MaskInfo* FindMask(const std::string& name) const {
    for (const auto& m : source_.masks)
      if (m.name == name) return &m;
    return nullptr;
  }

  const KernelSource& source_;
  std::vector<Token> tokens_;
  size_t pos_ = 0;
  std::vector<std::map<std::string, ScalarType>> scopes_{1};
  bool wrote_output_ = false;
  /// Extra outputs assigned so far (each declared name must be written).
  std::set<std::string> wrote_named_;
  /// Mask name while parsing the body of a convolve() expression.
  std::string convolve_mask_;
};

}  // namespace

Result<ast::KernelDecl> ParseKernel(const KernelSource& source) {
  Result<std::vector<Token>> tokens = Lex(source.body);
  if (!tokens.ok()) return tokens.status();
  return Parser(source, std::move(tokens).take()).Run();
}

}  // namespace hipacc::frontend
