file(REMOVE_RECURSE
  "CMakeFiles/table2_tesla_cuda.dir/table2_tesla_cuda.cpp.o"
  "CMakeFiles/table2_tesla_cuda.dir/table2_tesla_cuda.cpp.o.d"
  "table2_tesla_cuda"
  "table2_tesla_cuda.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_tesla_cuda.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
