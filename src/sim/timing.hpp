// Analytical timing model: converts the interpreter's warp-level metrics
// into a modelled kernel time on a device. The model is a simplified
// MWP/CWP-style bound (Hong & Kim, ISCA'09): kernel time is the maximum of
// the compute-throughput bound, the memory-bandwidth bound, and the exposed
// memory latency given the occupancy-determined warp concurrency — plus a
// fixed launch overhead.
//
// For streaming workloads the single number is not enough: a frame pipeline
// issues host-to-device uploads, kernel launches, and device-to-host
// downloads that real hardware services on *independent queues* (CUDA
// streams / OpenCL command queues with a copy engine). StreamTimeline below
// models that: three per-queue availability timelines with explicit
// dependencies, so frame k+1's upload overlaps frame k's compute — or, in
// serial mode, everything collapses onto one timeline, reproducing the old
// summed-launches accounting the streaming bench compares against.
#pragma once

#include "hwmodel/device_spec.hpp"
#include "hwmodel/occupancy.hpp"
#include "sim/metrics.hpp"

namespace hipacc::sim {

/// Breakdown of the modelled time (reported by benches and tests).
struct TimingBreakdown {
  double compute_cycles = 0.0;   ///< per-"wall" compute bound
  double bandwidth_cycles = 0.0; ///< DRAM bandwidth bound
  double latency_cycles = 0.0;   ///< exposed latency bound
  double total_ms = 0.0;
};

/// Fixed per-launch host/driver overhead in ms.
inline constexpr double kLaunchOverheadMs = 0.005;

/// Models the execution time of a kernel whose *whole-grid* metrics are
/// `metrics`, launched with `occupancy` resident warps per SIMD unit.
/// `issue_scale` multiplies the compute bound (toolchain quality factor,
/// e.g. DeviceSpec::opencl_issue_overhead for OpenCL-compiled kernels).
TimingBreakdown ModelTime(const Metrics& metrics, const hw::DeviceSpec& device,
                          const hw::OccupancyResult& occupancy,
                          double issue_scale = 1.0);

/// Fixed per-transfer host/driver overhead in ms (DMA setup, ring-buffer
/// doorbell) — considerably cheaper than a kernel launch.
inline constexpr double kCopyOverheadMs = 0.002;

/// Models one host<->device copy of `bytes` over the interconnect
/// (DeviceSpec::pcie_bandwidth_gbps) plus the fixed transfer overhead.
double ModelCopyMs(long long bytes, const hw::DeviceSpec& device);

/// The device-side queues a streaming frame pipeline occupies. Compute and
/// the two DMA directions run concurrently on real hardware; modelling them
/// separately is what makes copy/compute overlap visible.
enum class StreamQueue { kCompute = 0, kCopyH2D = 1, kCopyD2H = 2 };

inline constexpr int kStreamQueueCount = 3;

const char* to_string(StreamQueue queue) noexcept;

/// Per-queue availability timelines with explicit dependencies. Operations
/// are enqueued in submission order; each starts at
/// max(ready_ms, queue-available time) and occupies its queue for its
/// duration. In serial mode (overlap == false) every operation shares one
/// availability timeline regardless of its queue — the pre-streaming model
/// where launches and copies simply sum — while per-queue busy time is still
/// attributed, so utilisation reports stay comparable across modes.
class StreamTimeline {
 public:
  explicit StreamTimeline(bool overlap) : overlap_(overlap) {}

  /// Schedules one operation; returns its completion time in ms. `ready_ms`
  /// encodes dependencies (max over the completion times of everything this
  /// operation waits on).
  double Enqueue(StreamQueue queue, double ready_ms, double duration_ms);

  /// Completion time of the latest operation scheduled so far (makespan).
  double finish_ms() const noexcept { return finish_ms_; }
  /// Total time `queue` spent executing operations.
  double busy_ms(StreamQueue queue) const noexcept {
    return busy_[static_cast<int>(queue)];
  }
  /// busy_ms / finish_ms — the occupancy a profiler timeline would show.
  double utilisation(StreamQueue queue) const noexcept {
    return finish_ms_ > 0.0 ? busy_ms(queue) / finish_ms_ : 0.0;
  }
  long long op_count() const noexcept { return ops_; }
  bool overlap() const noexcept { return overlap_; }

 private:
  bool overlap_ = true;
  double avail_[kStreamQueueCount] = {0.0, 0.0, 0.0};
  double busy_[kStreamQueueCount] = {0.0, 0.0, 0.0};
  double finish_ms_ = 0.0;
  long long ops_ = 0;
};

}  // namespace hipacc::sim
