// Ablation: the Section VIII extensions, measured.
//
//  1. convolve() unrolling + coefficient propagation vs the loop-based Mask
//     kernel (Listing 5 style): the unrolled kernel drops the loop overhead
//     and the constant-memory reads.
//  2. VLIW vectorization on the AMD parts: scalar vs packed issue.
#include <cstdio>

#include "compiler/executable.hpp"
#include "common/table.hpp"
#include "hwmodel/device_db.hpp"
#include "ops/kernel_sources.hpp"


using namespace hipacc;

namespace {

Result<double> Measure(const frontend::KernelSource& source,
                       const hw::DeviceSpec& device, int n,
                       ast::Backend backend, bool vectorize) {
  compiler::CompileOptions copts;
  copts.codegen.backend = backend;
  copts.codegen.vectorize_vliw = vectorize;
  copts.device = device;
  copts.image_width = n;
  copts.image_height = n;
  Result<compiler::CompiledKernel> compiled = compiler::Compile(source, copts);
  if (!compiled.ok()) return compiled.status();
  dsl::Image<float> in(n, n), out(n, n);
  runtime::BindingSet bindings;
  bindings.Input("Input", in).Output(out);
  compiler::SimulatedExecutable exe(std::move(compiled).take(), device);
  Result<sim::LaunchStats> stats = exe.Measure(bindings);
  if (!stats.ok()) return stats.status();
  return stats.value().timing.total_ms;
}

}  // namespace

int main(int argc, char** argv) {
  hipacc::support::CliParser cli =
      hipacc::bench::MakeBenchCli("ablation_unroll", "Ablation: convolve() unrolling vs mask loops");
  if (const int code = cli.HandleArgs(argc, argv); code >= 0) return code;

  const int n = 2048;
  std::printf("Ablation: Section VIII extensions (%dx%d image, modelled "
              "times in ms).\n\n", n, n);

  std::printf("1. convolve() unrolling vs looped Mask kernel (Gaussian, "
              "mirror, Tesla C2050, CUDA)\n");
  std::printf("%8s  %10s  %10s  %8s\n", "window", "looped", "unrolled",
              "speedup");
  for (const int size : {3, 5, 7, 9}) {
    auto looped = Measure(
        ops::GaussianSource(size, 0.5f * size, ast::BoundaryMode::kMirror),
        hw::TeslaC2050(), n, ast::Backend::kCuda, false);
    auto unrolled = Measure(ops::GaussianConvolveSource(
                                size, 0.5f * size, ast::BoundaryMode::kMirror),
                            hw::TeslaC2050(), n, ast::Backend::kCuda, false);
    if (looped.ok() && unrolled.ok())
      std::printf("%5dx%-3d %10.2f  %10.2f  %7.2fx\n", size, size,
                  looped.value(), unrolled.value(),
                  looped.value() / unrolled.value());
  }

  std::printf("\n2. VLIW vectorization (bilateral 13x13, clamp, OpenCL)\n");
  std::printf("%-16s  %10s  %10s  %8s\n", "device", "scalar", "vectorized",
              "speedup");
  frontend::KernelSource bilateral =
      ops::BilateralMaskSource(3, ast::BoundaryMode::kClamp);
  for (const hw::DeviceSpec& device :
       {hw::RadeonHd5870(), hw::RadeonHd6970(), hw::TeslaC2050()}) {
    compiler::CompileOptions base;
    auto with_scalars = [&](bool vec) -> Result<double> {
      compiler::CompileOptions copts;
      copts.codegen.backend = ast::Backend::kOpenCL;
      copts.codegen.vectorize_vliw = vec;
      copts.device = device;
      copts.image_width = n;
      copts.image_height = n;
      auto compiled = compiler::Compile(bilateral, copts);
      if (!compiled.ok()) return compiled.status();
      dsl::Image<float> in(n, n), out(n, n);
      runtime::BindingSet bindings;
      bindings.Input("Input", in).Output(out).Scalar("sigma_d", 3).Scalar(
          "sigma_r", 5);
      compiler::SimulatedExecutable exe(std::move(compiled).take(), device);
      auto stats = exe.Measure(bindings);
      if (!stats.ok()) return stats.status();
      return stats.value().timing.total_ms;
    };
    auto scalar = with_scalars(false);
    auto vectorized = with_scalars(true);
    if (scalar.ok() && vectorized.ok())
      std::printf("%-16s  %10.2f  %10.2f  %7.2fx\n", device.name.c_str(),
                  scalar.value(), vectorized.value(),
                  scalar.value() / vectorized.value());
  }
  return 0;
}
