// Pixels-per-thread differential suite: a kernel compiled with PPT > 1
// must produce pixels bit-identical to the classic one-pixel-per-thread
// mapping — each thread evaluates the same expressions in the same order
// for each of its sub-rows, so there is no float reassociation to absorb.
// Swept across all five boundary modes, both backends, the scratchpad
// path, ragged image heights (partial trailing blocks) and row filters
// (half_y == 0, where the nine-region dispatch has no bottom band and the
// lowerer must guard every variant).
#include <gtest/gtest.h>

#include "compiler/executable.hpp"
#include "image/metrics.hpp"
#include "image/synthetic.hpp"
#include "ops/kernel_sources.hpp"
#include "ops/masks.hpp"

namespace hipacc {
namespace {

using ast::Backend;
using ast::BoundaryMode;

constexpr BoundaryMode kAllModes[] = {
    BoundaryMode::kUndefined, BoundaryMode::kRepeat, BoundaryMode::kClamp,
    BoundaryMode::kMirror, BoundaryMode::kConstant};

struct RunResult {
  HostImage<float> pixels{1, 1};
  int ppt = 1;  ///< what the compiled kernel actually used
};

RunResult RunWithPpt(const frontend::KernelSource& source,
                     const HostImage<float>& input, int ppt,
                     codegen::CodegenOptions codegen = {},
                     bool force_config = true, bool allow_oob = false) {
  compiler::CompileOptions options;
  options.codegen = codegen;
  options.codegen.pixels_per_thread = ppt;
  options.device = hw::TeslaC2050();
  options.image_width = input.width();
  options.image_height = input.height();
  if (force_config) options.forced_config = hw::KernelConfig{32, 2};

  auto compiled = compiler::Compile(source, options);
  EXPECT_TRUE(compiled.ok()) << compiled.status().ToString();
  RunResult result;
  if (!compiled.ok()) return result;
  result.ppt = compiled.value().device_ir.ppt;

  dsl::Image<float> in(input.width(), input.height());
  dsl::Image<float> out(input.width(), input.height());
  in.CopyFrom(input);
  runtime::BindingSet bindings;
  bindings.Input("Input", in).Output(out);
  compiler::SimulatedExecutable exe(std::move(compiled).take(),
                                    hw::TeslaC2050());
  auto stats = exe.Run(bindings);
  EXPECT_TRUE(stats.ok()) << stats.status().ToString();
  if (stats.ok() && !allow_oob) {
    // PPT must not introduce out-of-bounds accesses. (kUndefined reads out
    // of bounds by design, at every ppt — callers pass allow_oob there.)
    EXPECT_EQ(stats.value().metrics.oob_violations, 0u);
  }
  result.pixels = out.getData();
  return result;
}

TEST(PptTest, BitIdenticalAcrossBoundaryModesAndBackends) {
  // 73x41: neither dimension divides the block tile, so every ppt level
  // leaves a ragged trailing block in y.
  const auto input = MakeAngiogramPhantom(73, 41, 0.05f, 2);
  const auto coeffs = ops::GaussianMask2D(5, 1.2f);
  for (const Backend backend : {Backend::kCuda, Backend::kOpenCL}) {
    for (const BoundaryMode mode : kAllModes) {
      if (mode == BoundaryMode::kUndefined) continue;  // separate test below
      frontend::KernelSource source =
          ops::ConvolutionSource("gauss", 5, 5, coeffs, mode, 0.25f);
      codegen::CodegenOptions codegen;
      codegen.backend = backend;
      const RunResult base = RunWithPpt(source, input, 1, codegen);
      for (const int ppt : {2, 4, 8}) {
        const RunResult vec = RunWithPpt(source, input, ppt, codegen);
        EXPECT_EQ(vec.ppt, ppt);
        EXPECT_LE(MaxAbsDiff(base.pixels, vec.pixels), 0.0)
            << to_string(backend) << " " << to_string(mode) << " ppt=" << ppt;
      }
    }
  }
}

TEST(PptTest, UndefinedModeStaysInBounds) {
  // kUndefined compiles without guards (BorderPolicy::kNone drops them
  // anyway); the launch guard introduced for ppt > 1 must still keep every
  // *write* in bounds, and the interior must match ppt=1 exactly.
  const auto input = MakeAngiogramPhantom(73, 41, 0.05f, 3);
  const auto coeffs = ops::GaussianMask2D(3, 1.0f);
  frontend::KernelSource source = ops::ConvolutionSource(
      "gauss_u", 3, 3, coeffs, BoundaryMode::kUndefined);
  const RunResult base = RunWithPpt(source, input, 1, {}, true, true);
  for (const int ppt : {2, 4, 8}) {
    const RunResult vec = RunWithPpt(source, input, ppt, {}, true, true);
    double worst = 0.0;
    for (int y = 1; y < 40; ++y)
      for (int x = 1; x < 72; ++x)
        worst = std::max(worst,
                         std::abs(static_cast<double>(base.pixels(x, y) -
                                                      vec.pixels(x, y))));
    EXPECT_LE(worst, 0.0) << "ppt=" << ppt;
  }
}

TEST(PptTest, UniformBorderPolicyBitIdentical) {
  const auto input = MakeAngiogramPhantom(61, 37, 0.04f, 4);
  const auto coeffs = ops::GaussianMask2D(5, 1.0f);
  frontend::KernelSource source =
      ops::ConvolutionSource("gauss", 5, 5, coeffs, BoundaryMode::kMirror);
  codegen::CodegenOptions codegen;
  codegen.border = codegen::BorderPolicy::kUniform;
  const RunResult base = RunWithPpt(source, input, 1, codegen);
  for (const int ppt : {2, 4, 8}) {
    const RunResult vec = RunWithPpt(source, input, ppt, codegen);
    EXPECT_LE(MaxAbsDiff(base.pixels, vec.pixels), 0.0) << "ppt=" << ppt;
  }
}

TEST(PptTest, ScratchpadStagingBitIdentical) {
  // The PPT scratchpad tile grows to BSY*PPT + 2*halo rows; staged results
  // must match both the unstaged PPT kernel and the staged ppt=1 kernel.
  const auto input = MakeAngiogramPhantom(73, 41, 0.05f, 5);
  const auto coeffs = ops::GaussianMask2D(5, 1.0f);
  frontend::KernelSource source =
      ops::ConvolutionSource("gauss", 5, 5, coeffs, BoundaryMode::kRepeat);
  codegen::CodegenOptions smem;
  smem.use_scratchpad = true;
  const RunResult staged1 = RunWithPpt(source, input, 1, smem);
  for (const int ppt : {2, 4}) {
    const RunResult plain = RunWithPpt(source, input, ppt);
    const RunResult staged = RunWithPpt(source, input, ppt, smem);
    EXPECT_LE(MaxAbsDiff(staged1.pixels, staged.pixels), 0.0) << "ppt=" << ppt;
    EXPECT_LE(MaxAbsDiff(plain.pixels, staged.pixels), 0.0) << "ppt=" << ppt;
  }
}

TEST(PptTest, RowFilterGuardsTrailingRows) {
  // half_y == 0: the nine-region grid has no bottom band, so trailing
  // blocks land in interior variants and only the per-sub-row guards keep
  // the extra rows from writing out of bounds. Height 33 with block_y=2,
  // ppt=8 leaves a block covering rows 32..47.
  const auto input = MakeAngiogramPhantom(73, 33, 0.05f, 6);
  const auto row = ops::GaussianMask1D(5, 1.5f);
  frontend::KernelSource source =
      ops::ConvolutionSource("row5", 5, 1, row, BoundaryMode::kClamp);
  const RunResult base = RunWithPpt(source, input, 1);
  for (const int ppt : {2, 4, 8}) {
    const RunResult vec = RunWithPpt(source, input, ppt);
    EXPECT_LE(MaxAbsDiff(base.pixels, vec.pixels), 0.0) << "ppt=" << ppt;
  }
}

TEST(PptTest, HeuristicConfigSelectionWorksPerPpt) {
  // No forced configuration: Algorithm 2 runs per PPT level (the grid and
  // border bands shrink with ppt) and the result stays bit-identical.
  const auto input = MakeAngiogramPhantom(96, 64, 0.04f, 7);
  const auto coeffs = ops::GaussianMask2D(5, 1.2f);
  frontend::KernelSource source =
      ops::ConvolutionSource("gauss", 5, 5, coeffs, BoundaryMode::kMirror);
  const RunResult base = RunWithPpt(source, input, 1, {}, false);
  for (const int ppt : {2, 4, 8}) {
    const RunResult vec = RunWithPpt(source, input, ppt, {}, false);
    EXPECT_LE(MaxAbsDiff(base.pixels, vec.pixels), 0.0) << "ppt=" << ppt;
  }
}

TEST(PptTest, AutoSelectionPicksCandidateAndMatches) {
  const auto input = MakeAngiogramPhantom(128, 128, 0.04f, 8);
  const auto coeffs = ops::GaussianMask2D(5, 1.2f);
  frontend::KernelSource source =
      ops::ConvolutionSource("gauss", 5, 5, coeffs, BoundaryMode::kMirror);
  const RunResult base = RunWithPpt(source, input, 1, {}, false);
  const RunResult automatic = RunWithPpt(source, input, 0, {}, false);
  EXPECT_TRUE(automatic.ppt == 1 || automatic.ppt == 2 ||
              automatic.ppt == 4 || automatic.ppt == 8)
      << automatic.ppt;
  EXPECT_LE(MaxAbsDiff(base.pixels, automatic.pixels), 0.0);
}

}  // namespace
}  // namespace hipacc
