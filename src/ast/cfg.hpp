// Control-flow graph over a kernel body. The paper's read/write analysis
// (Section IV-A) builds a CFG of the kernel method and traverses it to
// classify each Image/Accessor as read, written, or both before selecting
// texture functions. We reproduce that structure; the analysis itself lives
// in src/codegen/readwrite.{hpp,cpp}.
#pragma once

#include <vector>

#include "ast/stmt.hpp"

namespace hipacc::ast {

/// A maximal straight-line sequence of simple statements.
struct BasicBlock {
  int id = -1;
  /// Simple statements (decl/assign/output/write/barrier) in order. The
  /// controlling statement of a branch/loop contributes its condition
  /// expression via `terminator`.
  std::vector<const Stmt*> stmts;
  /// Condition / loop-header statement ending this block, if any.
  const Stmt* terminator = nullptr;
  std::vector<int> successors;
};

/// CFG with a unique entry (id 0) and a unique synthetic exit block.
struct Cfg {
  std::vector<BasicBlock> blocks;
  int entry = 0;
  int exit = 0;

  const BasicBlock& block(int id) const { return blocks[static_cast<size_t>(id)]; }
};

/// Builds the CFG of a statement tree. If-statements fork to then/else and
/// re-join; for-loops get a header block with a back edge from the body.
Cfg BuildCfg(const StmtPtr& body);

/// Returns block ids in a depth-first order starting at entry (the traversal
/// order used by the read/write analysis).
std::vector<int> DepthFirstOrder(const Cfg& cfg);

}  // namespace hipacc::ast
