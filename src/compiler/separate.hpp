// Separable-filter decomposition: rewrites one 2D convolution stage into a
// horizontal (row) pass followed by a vertical (column) pass when the mask
// factors as a rank-1 outer product (paper Section V — the classic
// O(k^2) -> O(2k) taps-per-pixel optimisation, applied automatically).
//
// Detection is structural, on the parsed kernel IR: the stage must be the
// canonical convolution loop nest
//
//   float sum = 0.0f;
//   for (int yf = -hy; yf <= hy; yf++)
//     for (int xf = -hx; xf <= hx; xf++)
//       sum += M(xf, yf) * Input(xf, yf);
//   output() = sum;
//
// over a single static mask and a single accessor, and the mask must pass
// the rank-1 test (ast/mask_factor.hpp). Boundary handling transfers
// per-axis: Clamp/Repeat/Mirror factor exactly (each axis is handled
// independently by the reads), and Constant uses rowsum(row)*c as the
// column pass's constant so out-of-bounds rows contribute exactly what the
// direct kernel's constant taps would. Undefined mode is not separated —
// the intermediate image would launder unspecified values into specified
// pixels.
//
// The rewrite is profitable when the two 1D passes plus the intermediate
// image round trip cost fewer taps than the 2D window; a 3x3 mask stays
// direct, 5x5 and larger separate.
#pragma once

#include <optional>

#include "frontend/parser.hpp"

namespace hipacc::compiler {

/// Result of a successful decomposition: two 1D convolution kernels that,
/// run in sequence (row first, then column over the row pass's output),
/// reproduce the original 2D stage up to float rounding in the factored
/// coefficients.
struct SeparatedStages {
  frontend::KernelSource row;  ///< size_x x 1 horizontal pass
  frontend::KernelSource col;  ///< 1 x size_y vertical pass
};

/// Attempts the decomposition. Returns nullopt when the kernel is not the
/// canonical convolution form, the mask is not rank-1 within `rel_tol`
/// (relative to its largest coefficient), the boundary mode is Undefined,
/// or the tap-count heuristic says the 2D form is cheaper.
std::optional<SeparatedStages> SeparateConvolution(
    const frontend::KernelSource& source, float rel_tol = 1e-5f);

}  // namespace hipacc::compiler
