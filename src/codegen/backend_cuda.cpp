// CUDA backend: the syntax side of the paper's primary target. Texture
// references are file-scope globals (Section IV-A), dynamically initialised
// constant masks are filled via cudaMemcpyToSymbol, and the region dispatch
// uses Listing 8's goto structure.
#include "codegen/backend.hpp"

#include "support/string_utils.hpp"

namespace hipacc::codegen {
namespace {

class CudaBackendImpl final : public Backend {
 public:
  std::string_view name() const noexcept override { return "cuda"; }
  std::string_view display_name() const noexcept override { return "CUDA"; }
  ast::Backend id() const noexcept override { return ast::Backend::kCuda; }

  std::string KernelQualifier() const override {
    return "extern \"C\" __global__ void";
  }

  std::optional<std::string> BufferParamDecl(
      const ast::BufferParam& buf) const override {
    // Texture references are globals, not parameters.
    if (buf.space == ast::MemSpace::kTexture) return std::nullopt;
    return StrFormat("%sfloat* %s", buf.is_output ? "" : "const ",
                     buf.name.c_str());
  }

  std::vector<std::string> ExtraParams(
      const ast::DeviceKernel&) const override {
    return {};
  }

  std::string TextureDeclarations(
      const ast::DeviceKernel& kernel) const override {
    std::string out;
    // Texture references are static and globally visible in CUDA; they are
    // not kernel parameters (Section IV-A).
    for (const auto& buf : kernel.buffers) {
      if (buf.space != ast::MemSpace::kTexture) continue;
      if (buf.texture_2d_array)
        out += StrFormat(
            "texture<float, 2, cudaReadModeElementType> _tex%s;  "
            "// address mode: %s\n",
            buf.name.c_str(), to_string(kernel.boundary));
      else
        out += StrFormat("texture<float, 1, cudaReadModeElementType> _tex%s;\n",
                         buf.name.c_str());
    }
    return out;
  }

  std::string ConstantQualifier() const override {
    return "__device__ __constant__";
  }

  bool DeclaresDynamicConstMasks() const override { return true; }

  std::string SmemQualifier() const override { return "__shared__"; }

  std::string Barrier() const override { return "__syncthreads();"; }

  std::string LocalId(int dim) const override {
    return dim == 0 ? "threadIdx.x" : "threadIdx.y";
  }

  std::string GroupId(int dim) const override {
    return dim == 0 ? "blockIdx.x" : "blockIdx.y";
  }

  std::string ThreadIndex(ast::ThreadIndexKind kind) const override {
    return to_string(kind);  // canonical names are the CUDA ones
  }

  std::string BuiltinName(const ast::BuiltinFn& fn) const override {
    return fn.cuda_name;
  }

  std::string TextureRead(const ast::BufferParam& buf, const std::string& raw_x,
                          const std::string& raw_y, const std::string& adj_x,
                          const std::string& adj_y) const override {
    if (buf.texture_2d_array)
      // Hardware boundary handling: the address mode resolves indices.
      return StrFormat("tex2D(_tex%s, %s, %s)", buf.name.c_str(), raw_x.c_str(),
                       raw_y.c_str());
    return StrFormat("tex1Dfetch(_tex%s, (%s) + (%s) * STRIDE)",
                     buf.name.c_str(), adj_x.c_str(), adj_y.c_str());
  }

  bool UsesGotoDispatch() const override { return true; }
};

}  // namespace

const Backend& CudaBackend() {
  static const CudaBackendImpl backend;
  return backend;
}

}  // namespace hipacc::codegen
