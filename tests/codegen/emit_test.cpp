// Source emitters: the generated CUDA and OpenCL text must contain the
// structures the paper describes — Listing 8's goto dispatch, Listing 6's
// texture fetches, Listing 7's staging, constant-memory masks, and the
// function-mapping table's backend spellings.
#include "codegen/emit.hpp"

#include <gtest/gtest.h>

#include "codegen/lower.hpp"
#include "codegen/resource_estimator.hpp"
#include "ops/kernel_sources.hpp"

namespace hipacc::codegen {
namespace {

using ast::Backend;
using ast::BoundaryMode;

std::string Emit(BoundaryMode mode, Backend backend, CodegenOptions options,
                 bool with_mask = true) {
  options.backend = backend;
  const frontend::KernelSource src = with_mask
                                         ? ops::BilateralMaskSource(1, mode)
                                         : ops::BilateralSource(1, mode);
  auto kernel = frontend::ParseKernel(src);
  EXPECT_TRUE(kernel.ok());
  auto lowered = LowerKernel(kernel.value(), options);
  EXPECT_TRUE(lowered.ok()) << lowered.status().ToString();
  EmitContext ctx;
  ctx.config = {32, 4};
  ctx.image_width = 256;
  ctx.image_height = 256;
  return EmitKernelSource(lowered.value(), ctx);
}

TEST(EmitCudaTest, Listing8GotoDispatch) {
  const std::string src = Emit(BoundaryMode::kClamp, Backend::kCuda, {});
  EXPECT_NE(src.find("goto TL_BH;"), std::string::npos);
  EXPECT_NE(src.find("goto NO_BH;"), std::string::npos);
  EXPECT_NE(src.find("TL_BH: {"), std::string::npos);
  EXPECT_NE(src.find("NO_BH: {"), std::string::npos);
  EXPECT_NE(src.find("blockIdx.x < RB_L"), std::string::npos);
  // All nine labels present.
  for (const char* label : {"TL", "T", "TR", "L", "R", "BL", "B", "BR"})
    EXPECT_NE(src.find(std::string(label) + "_BH:"), std::string::npos)
        << label;
}

TEST(EmitCudaTest, KernelSignatureAndPrologue) {
  const std::string src = Emit(BoundaryMode::kClamp, Backend::kCuda, {});
  EXPECT_NE(src.find("extern \"C\" __global__ void bilateral_mask("),
            std::string::npos);
  EXPECT_NE(src.find("const int gid_x = blockIdx.x * BSX + threadIdx.x;"),
            std::string::npos);
  EXPECT_NE(src.find("if (gid_x >= IW || gid_y >= IH) return;"),
            std::string::npos);
}

TEST(EmitCudaTest, StaticConstantMask) {
  const std::string src = Emit(BoundaryMode::kClamp, Backend::kCuda, {});
  EXPECT_NE(src.find("__device__ __constant__ float CMask[25] = {"),
            std::string::npos);
}

TEST(EmitCudaTest, TextureReadsUseTex1Dfetch) {
  CodegenOptions options;
  options.texture = TexturePolicy::kLinear;
  const std::string src = Emit(BoundaryMode::kClamp, Backend::kCuda, options);
  // Texture reference declared globally, not a kernel parameter (Sec. IV-A).
  EXPECT_NE(src.find("texture<float, 1, cudaReadModeElementType> _texInput;"),
            std::string::npos);
  EXPECT_NE(src.find("tex1Dfetch(_texInput,"), std::string::npos);
  // The signature must not take the texture as parameter.
  const size_t sig = src.find("__global__ void");
  const size_t paren = src.find(')', sig);
  EXPECT_EQ(src.substr(sig, paren - sig).find("_texInput"), std::string::npos);
}

TEST(EmitCudaTest, Tex2DForHardwareBoundaryHandling) {
  CodegenOptions options;
  options.texture = TexturePolicy::kArray2D;
  const std::string src = Emit(BoundaryMode::kClamp, Backend::kCuda, options);
  EXPECT_NE(src.find("texture<float, 2, cudaReadModeElementType>"),
            std::string::npos);
  EXPECT_NE(src.find("tex2D(_texInput,"), std::string::npos);
}

TEST(EmitCudaTest, ScratchpadStagingListing7) {
  CodegenOptions options;
  options.use_scratchpad = true;
  const std::string src = Emit(BoundaryMode::kClamp, Backend::kCuda, options);
  EXPECT_NE(src.find("__shared__ float _smemInput[SY + BSY][SX + BSX + 1];"),
            std::string::npos);
  EXPECT_NE(src.find("__syncthreads();"), std::string::npos);
  EXPECT_NE(src.find("_smemInput["), std::string::npos);
}

TEST(EmitCudaTest, FunctionMappingKeepsSuffix) {
  const std::string src =
      Emit(BoundaryMode::kClamp, Backend::kCuda, {}, /*with_mask=*/false);
  EXPECT_NE(src.find("expf("), std::string::npos);
  EXPECT_EQ(src.find(" exp("), std::string::npos);
}

TEST(EmitOpenClTest, KernelSignatureAndBuiltins) {
  const std::string src =
      Emit(BoundaryMode::kClamp, Backend::kOpenCL, {}, /*with_mask=*/false);
  EXPECT_NE(src.find("__kernel void bilateral("), std::string::npos);
  EXPECT_NE(src.find("get_group_id(0)"), std::string::npos);
  EXPECT_NE(src.find("get_local_id(0)"), std::string::npos);
  // Function mapping removes the suffix for OpenCL (Section V-A).
  EXPECT_NE(src.find("exp("), std::string::npos);
  EXPECT_EQ(src.find("expf("), std::string::npos);
  // OpenCL uses an else-if chain (no goto in OpenCL C).
  EXPECT_EQ(src.find("goto"), std::string::npos);
  EXPECT_NE(src.find("} else if ("), std::string::npos);
}

TEST(EmitOpenClTest, ImageObjectsWithSamplerAndAttributes) {
  CodegenOptions options;
  options.texture = TexturePolicy::kLinear;
  const std::string src = Emit(BoundaryMode::kClamp, Backend::kOpenCL, options);
  EXPECT_NE(src.find("__constant sampler_t _smp"), std::string::npos);
  EXPECT_NE(src.find("__read_only image2d_t _imgInput"), std::string::npos);
  // CL_R channel order: only .x is populated (Section IV-A).
  EXPECT_NE(src.find("read_imagef(_imgInput, _smp, (int2)("), std::string::npos);
  EXPECT_NE(src.find(").x"), std::string::npos);
}

TEST(EmitOpenClTest, LocalMemoryStaging) {
  CodegenOptions options;
  options.use_scratchpad = true;
  const std::string src = Emit(BoundaryMode::kClamp, Backend::kOpenCL, options);
  EXPECT_NE(src.find("__local float _smemInput"), std::string::npos);
  EXPECT_NE(src.find("barrier(CLK_LOCAL_MEM_FENCE);"), std::string::npos);
}

TEST(EmitOpenClTest, DynamicMaskBecomesConstantParameter) {
  CodegenOptions options;
  options.backend = Backend::kOpenCL;
  frontend::KernelSource src =
      ops::BilateralMaskSource(1, BoundaryMode::kClamp, /*static_mask=*/false);
  auto kernel = frontend::ParseKernel(src);
  ASSERT_TRUE(kernel.ok());
  auto lowered = LowerKernel(kernel.value(), options);
  ASSERT_TRUE(lowered.ok());
  const std::string text = EmitKernelSource(lowered.value(), {});
  EXPECT_NE(text.find("__constant float* CMask"), std::string::npos);
}

TEST(EmitTest, BoundaryGuardExpressions) {
  // Clamp emits min/max index adjustment; constant emits a predicate.
  const std::string clamp = Emit(BoundaryMode::kClamp, Backend::kCuda, {});
  EXPECT_NE(clamp.find("max("), std::string::npos);
  EXPECT_NE(clamp.find("min("), std::string::npos);
  const std::string constant = Emit(BoundaryMode::kConstant, Backend::kCuda, {});
  EXPECT_NE(constant.find("? "), std::string::npos);
  const std::string mirror = Emit(BoundaryMode::kMirror, Backend::kCuda, {});
  EXPECT_NE(mirror.find("-1 - "), std::string::npos);
  const std::string repeat = Emit(BoundaryMode::kRepeat, Backend::kCuda, {});
  EXPECT_NE(repeat.find("+ IW"), std::string::npos);
}

TEST(EmitTest, RegionConstantsBakedFromImageSize) {
  const std::string src = Emit(BoundaryMode::kClamp, Backend::kCuda, {});
  EXPECT_NE(src.find("#define IW 256"), std::string::npos);
  EXPECT_NE(src.find("#define BSX 32"), std::string::npos);
  EXPECT_NE(src.find("#define RB_L 1"), std::string::npos);
}

TEST(ResourceEstimatorTest, MonotoneInComplexity) {
  const frontend::KernelSource simple_src = ops::ScaleOffsetSource();
  auto simple = frontend::ParseKernel(simple_src);
  ASSERT_TRUE(simple.ok());
  auto simple_lowered = LowerKernel(simple.value(), {});
  ASSERT_TRUE(simple_lowered.ok());

  const frontend::KernelSource complex_src =
      ops::BilateralSource(3, BoundaryMode::kClamp);
  auto complex_kernel = frontend::ParseKernel(complex_src);
  ASSERT_TRUE(complex_kernel.ok());
  auto complex_lowered = LowerKernel(complex_kernel.value(), {});
  ASSERT_TRUE(complex_lowered.ok());

  const auto simple_res = EstimateResources(simple_lowered.value());
  const auto complex_res = EstimateResources(complex_lowered.value());
  EXPECT_LT(simple_res.regs_per_thread, complex_res.regs_per_thread);
  EXPECT_FALSE(simple_res.smem_tile);

  CodegenOptions smem_options;
  smem_options.use_scratchpad = true;
  auto with_smem = LowerKernel(complex_kernel.value(), smem_options);
  ASSERT_TRUE(with_smem.ok());
  const auto smem_res = EstimateResources(with_smem.value());
  EXPECT_TRUE(smem_res.smem_tile);
  EXPECT_EQ(smem_res.smem_halo_x, 6);
  EXPECT_GT(smem_res.SmemBytesPerBlock({32, 4}), 0);
}

}  // namespace
}  // namespace hipacc::codegen
