// Figure 2 as a runnable demo: a small lettered image is read through
// accessors with each boundary-handling mode, printing the virtually
// expanded image each mode produces. Matches the paper's Figure 2 panels.
#include <cstdio>

#include "hipacc.hpp"

using namespace hipacc;

int main() {
  // The 4x4 image A..P of Figure 2.
  const int n = 4, margin = 3;
  dsl::Image<float> img(n, n);
  for (int y = 0; y < n; ++y)
    for (int x = 0; x < n; ++x)
      img.at(x, y) = static_cast<float>(y * n + x);  // 0..15 -> 'A'..'P'

  struct ModeCase {
    ast::BoundaryMode mode;
    const char* title;
  };
  const ModeCase cases[] = {
      {ast::BoundaryMode::kRepeat, "Repeat (Figure 2b)"},
      {ast::BoundaryMode::kClamp, "Clamp (Figure 2c)"},
      {ast::BoundaryMode::kMirror, "Mirror (Figure 2d)"},
      {ast::BoundaryMode::kConstant, "Constant 'Q' (Figure 2e)"},
  };

  for (const auto& c : cases) {
    dsl::BoundaryCondition<float> bc =
        c.mode == ast::BoundaryMode::kConstant
            ? dsl::BoundaryCondition<float>(img, 2 * margin + 1, 2 * margin + 1,
                                            c.mode, 16.0f)  // 'Q'
            : dsl::BoundaryCondition<float>(img, 2 * margin + 1, 2 * margin + 1,
                                            c.mode);
    dsl::Accessor<float> acc(bc);
    std::printf("%s\n", c.title);
    for (int y = -margin; y < n + margin; ++y) {
      std::printf("  ");
      for (int x = -margin; x < n + margin; ++x) {
        const int v = static_cast<int>(acc.at(x, y));
        std::printf("%c ", static_cast<char>('A' + v));
      }
      std::printf("\n");
    }
    std::printf("\n");
  }
  return 0;
}
