file(REMOVE_RECURSE
  "CMakeFiles/fig4_config_exploration.dir/fig4_config_exploration.cpp.o"
  "CMakeFiles/fig4_config_exploration.dir/fig4_config_exploration.cpp.o.d"
  "fig4_config_exploration"
  "fig4_config_exploration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_config_exploration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
