// Per-block execution state shared by the simulator's two execution
// engines (the AST interpreter and the bytecode VM): warp-lockstep lane
// values, the thread/global-index context of the current warp, the
// scratchpad staging phase (Listing 7), and the block-level region dispatch
// (Figure 3). Both engines drive their warp bodies through this one
// implementation, so the memory-model call sequence — and therefore every
// metric the timing model consumes — is identical by construction.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "ast/metadata.hpp"
#include "ast/type.hpp"
#include "sim/launch.hpp"
#include "sim/metrics.hpp"

namespace hipacc::sim {

/// Maximum SIMD width across the device database (AMD wavefronts are 64
/// lanes wide). Warp values and lane masks carry inline fixed-size storage
/// sized for it, so neither engine's hot path performs heap allocation.
constexpr int kMaxWarpWidth = 64;

/// Per-lane values of one warp. Values are stored as doubles but all
/// float-typed arithmetic is performed in float precision so simulated
/// results match the DSL's host executor bit for bit. Lanes beyond the
/// device's warp width stay unread.
struct WarpVal {
  ast::ScalarType type = ast::ScalarType::kFloat;
  std::array<double, kMaxWarpWidth> lanes{};
};

using LaneMask = std::array<unsigned char, kMaxWarpWidth>;

inline bool AnyActive(const LaneMask& mask) {
  for (const unsigned char b : mask)
    if (b) return true;
  return false;
}

/// ALU cost of one boundary guard in one direction, per mode (the knob that
/// makes manual uniformly-guarded kernels vary across modes, Section VI-A).
int GuardAluCost(ast::BoundaryMode mode);

/// Region selection, staging, and warp-context computation for one thread
/// block. An engine constructs one BlockState per block, calls Begin() once
/// (region dispatch cost, warp count, optional scratchpad staging), then
/// BuildWarpContext() per warp before running the warp body its own way.
struct BlockState {
  /// Result of Begin(): the block's boundary region and warp iteration.
  struct Plan {
    ast::Region region = ast::Region::kInterior;
    int threads = 0;
    int warps = 0;
  };

  BlockState(const Launch& launch, const hw::DeviceSpec& device,
             int block_x_idx, int block_y_idx, Metrics* metrics);

  /// Selects the region variant, accounts the Listing 8 dispatch cost, and
  /// runs the scratchpad staging phase when the kernel has one.
  Result<Plan> Begin();

  /// Populates tid/gid/active for one warp (+4 alu: gid + bounds guard).
  void BuildWarpContext(int warp, int threads);

  const Launch& launch;
  const hw::DeviceSpec& device;
  int bix = 0;
  int biy = 0;
  Metrics* metrics = nullptr;
  MemoryModel memory;
  int warp_size = 32;

  std::array<double, kMaxWarpWidth> tid_x{}, tid_y{}, gid_x{}, gid_y{};
  LaneMask active{};

  /// Reused per-access coalescing address buffer (capacity persists across
  /// the block, so the memory-model calls allocate only on first use).
  std::vector<std::uint64_t> addr_scratch;

  /// Scratchpad tile of this block.
  std::vector<float> tile;
  int tile_w = 0;
  int tile_h = 0;

 private:
  Status StageScratchpad(int warps, int threads);
};

}  // namespace hipacc::sim
