// Profile-guided configuration reselection.
//
// The Algorithm-2 heuristic (hwmodel/heuristic.hpp) picks a launch
// configuration from the static occupancy model. Every real measurement a
// process makes — an exploration sweep, a KernelRunner::Measure — is an
// opportunity to do better: the ProfileStore persists per-configuration
// timings keyed by (kernel source, options, device, extent), and the
// select_config pass prefers a trustworthy measured winner over the
// heuristic (the ImageCL-style learned-autotuner loop the paper leaves as
// future work).
//
// Trust is bounded three ways, all encoded in ProfilePolicy:
//  * min_samples — a config must have been measured repeatedly before its
//    EWMA is believed;
//  * freshness_window — entries that have not been re-observed within the
//    last N observations of the key go stale and stop competing;
//  * reexplore_period — every Nth observation round the selection
//    deliberately falls back to the heuristic (a "challenge" round), so the
//    incumbent keeps being re-measured and a stale winner loses its seat.
//
// DecideSelection is a pure function of (history, policy): the driver uses
// it to derive a cache-key salt (profile-influenced artifacts must not alias
// heuristic ones) and the pass re-derives the identical decision.
//
// A device or options change moves the profile key, so history never leaks
// across incompatible contexts — the selection immediately falls back to
// the heuristic and new history accumulates under the new key.
#pragma once

#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "codegen/options.hpp"
#include "hwmodel/device_spec.hpp"
#include "hwmodel/occupancy.hpp"

namespace hipacc::support {
class DiskStore;
}  // namespace hipacc::support

namespace hipacc::sim {
class TraceSink;
}  // namespace hipacc::sim

namespace hipacc::compiler {

/// One timing measurement of a concrete (config, ppt) point.
struct ProfileObservation {
  hw::KernelConfig config;
  int ppt = 1;
  double ms = 0.0;  ///< modelled kernel time of the launch
};

/// Merged history of one (config, ppt) point.
struct ProfileEntry {
  hw::KernelConfig config;
  int ppt = 1;
  double ms = 0.0;          ///< EWMA over observations (alpha 0.5)
  long long samples = 0;    ///< observations merged in
  long long last_seq = 0;   ///< key-global sequence of the latest observation
};

/// Everything recorded under one profile key.
struct ProfileHistory {
  long long seq = 0;  ///< total observations ever recorded for this key
  std::vector<ProfileEntry> entries;
};

/// Reselection trust policy (see file comment).
struct ProfilePolicy {
  int min_samples = 2;
  long long freshness_window = 64;
  /// Every Nth observation round re-runs the heuristic instead of the
  /// measured winner. 0 disables challenges (always trust history).
  long long reexplore_period = 16;
  /// When > 0, only entries measured at exactly this pixels-per-thread may
  /// win — callers set it to the explicitly-requested PPT so a learned
  /// winner never overrides a user's --ppt choice. 0 (auto) competes all.
  int require_ppt = 0;
};

enum class SelectionMode {
  kNoHistory,  ///< no trustworthy entry — use the heuristic
  kMeasured,   ///< use `winner` from measured history
  kChallenge,  ///< history exists, but this round re-runs the heuristic
};

const char* to_string(SelectionMode mode) noexcept;

struct SelectionDecision {
  SelectionMode mode = SelectionMode::kNoHistory;
  ProfileEntry winner;  ///< meaningful only when mode == kMeasured
};

/// Pure reselection decision: fresh, sufficiently-sampled entries compete on
/// EWMA time (ties: fewer threads, then smaller block_x, then smaller ppt);
/// challenge rounds fire when seq is a non-zero multiple of
/// reexplore_period.
SelectionDecision DecideSelection(const ProfileHistory& history,
                                  const ProfilePolicy& policy);

/// Canonical profile key. pixels_per_thread is normalised out of the
/// options so a PPT sweep feeds one shared pool — the entry's own `ppt`
/// field keeps the axis — and the salt of profile-influenced cache entries
/// stays orthogonal to the PPT the caller happened to request.
std::string MakeProfileKey(const std::string& source_fingerprint,
                           const codegen::CodegenOptions& options,
                           const hw::DeviceSpec& device, int image_width,
                           int image_height);

/// Cache-key salt of a decision: "m:<bx>x<by>x<ppt>" for a measured winner,
/// "" otherwise (challenge and no-history rounds compile exactly like a
/// profile-less run, so they share its cache entries bit-identically).
std::string ProfileSalt(const SelectionDecision& decision);

class ProfileStore;

/// The one decision a compile makes, shared verbatim by the driver (which
/// salts the target cache key with it) and the select_config pass (which
/// applies it): kNoHistory when `profiles` is null, the fingerprint is
/// empty, or the caller forces a configuration; otherwise DecideSelection
/// under the options-adjusted policy (an explicit pixels_per_thread request
/// pins require_ppt).
SelectionDecision DecideForCompile(ProfileStore* profiles,
                                   const ProfilePolicy& base_policy,
                                   const std::string& source_fingerprint,
                                   const codegen::CodegenOptions& options,
                                   const hw::DeviceSpec& device,
                                   int image_width, int image_height,
                                   bool forced_config);

/// One observation tagged with its profile key — the unit the batched
/// feeding path accumulates off the hot path (streaming frame executors
/// collect these per epoch and flush once, instead of taking the store's
/// mutex and the disk FileLock per launch).
struct KeyedObservation {
  std::string key;
  ProfileObservation observation;
};

/// Thread-safe observation store: in-memory EWMA merge with optional
/// write-through to the "profile" kind of a support::DiskStore (guarded by
/// a FileLock so concurrent processes append-merge instead of clobbering).
class ProfileStore {
 public:
  /// `disk` null = in-memory only. The store does not own the DiskStore.
  explicit ProfileStore(support::DiskStore* disk = nullptr);

  /// Merges one observation under `key` and persists the merged history.
  /// Equivalent to RecordBatch of one — every call is a full flush, so hot
  /// loops should accumulate KeyedObservations and RecordBatch instead.
  void Record(const std::string& key, const ProfileObservation& observation);

  /// Merges a batch of observations in one flush: the store mutex is taken
  /// once, and (when disk-backed) the profile FileLock is taken once with
  /// one read-merge-write per distinct key — not one per observation.
  /// Observations merge in batch order, so a batch replayed through
  /// Record() one by one yields the identical history.
  void RecordBatch(const std::vector<KeyedObservation>& batch);

  /// Current merged history (loads from disk on first touch of `key`).
  ProfileHistory Lookup(const std::string& key) const;

  /// Entries across all keys touched in this process (tests/reporting).
  std::size_t size() const;

  /// Flushes performed (Record + RecordBatch calls that merged anything)
  /// and observations merged — the batching ratio streaming runs are gated
  /// on (flush_count ≪ observation_count under overlap).
  long long flush_count() const;
  long long observation_count() const;

 private:
  ProfileHistory& LoadLocked(const std::string& key) const;
  void MergeDiskLocked(const std::string& key, ProfileHistory* history);

  support::DiskStore* disk_ = nullptr;
  mutable std::mutex mutex_;
  mutable std::unordered_map<std::string, ProfileHistory> histories_;
  long long flushes_ = 0;
  long long observations_ = 0;
};

/// JSON codec of one history ({"v":1,"seq":N,"entries":[...]}) — the disk
/// payload format, exposed for tests and the DESIGN.md examples.
std::string EncodeProfileHistory(const ProfileHistory& history);
bool DecodeProfileHistory(const std::string& payload, ProfileHistory* out);

}  // namespace hipacc::compiler
