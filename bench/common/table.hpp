// Minimal fixed-width table printer for the benchmark harnesses, matching
// the layout of the paper's tables (variants as rows, boundary modes as
// columns, "crash"/"n/a" cells).
#pragma once

#include <string>
#include <vector>

namespace hipacc::bench {

class Table {
 public:
  explicit Table(std::vector<std::string> columns)
      : columns_(std::move(columns)) {}

  /// Starts a new row with the given label.
  void Row(const std::string& label);
  /// Appends a numeric cell (milliseconds) to the current row.
  void Cell(double ms);
  /// Appends a text cell ("crash", "n/a").
  void Cell(const std::string& text);

  /// Renders with aligned columns; `title` is printed first.
  std::string Render(const std::string& title) const;

 private:
  std::vector<std::string> columns_;
  std::vector<std::pair<std::string, std::vector<std::string>>> rows_;
};

}  // namespace hipacc::bench
