file(REMOVE_RECURSE
  "CMakeFiles/table5_quadro_opencl.dir/table5_quadro_opencl.cpp.o"
  "CMakeFiles/table5_quadro_opencl.dir/table5_quadro_opencl.cpp.o.d"
  "table5_quadro_opencl"
  "table5_quadro_opencl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_quadro_opencl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
