#include "codegen/scalar_opt.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <string>

#include "ast/printer.hpp"
#include "ast/visitor.hpp"
#include "support/string_utils.hpp"

namespace hipacc::codegen {
namespace {

using namespace hipacc::ast;

/// Variable names assigned or declared anywhere in a statement tree
/// (including loop variables).
void CollectAssigned(const StmtPtr& stmt, std::set<std::string>* names) {
  VisitStmts(stmt, [names](const Stmt& s) {
    if (s.kind == StmtKind::kAssign || s.kind == StmtKind::kDecl ||
        s.kind == StmtKind::kFor)
      names->insert(s.name);
  });
}

void CollectFreeVars(const ExprPtr& expr, std::set<std::string>* names) {
  VisitExprs(expr, [names](const Expr& e) {
    if (e.kind == ExprKind::kVarRef) names->insert(e.name);
  });
}

/// Worth materialising in a temporary: contains a memory read or a call.
bool IsHoistworthy(const ExprPtr& expr) {
  bool found = false;
  VisitExprs(expr, [&found](const Expr& e) {
    if (e.kind == ExprKind::kMemRead || e.kind == ExprKind::kCall)
      found = true;
  });
  return found;
}

/// Operator-node weight of a pure-arithmetic expression (no memory reads or
/// calls). Halo-fused kernels inline the producer's boundary remap at every
/// tap, so the same clamp chain shows up many times per iteration; a chain
/// heavy and frequent enough is worth a register even without a memory read.
int ArithWeight(const ExprPtr& expr) {
  int ops = 0;
  VisitExprs(expr, [&ops](const Expr& e) {
    if (e.kind == ExprKind::kUnary || e.kind == ExprKind::kBinary ||
        e.kind == ExprKind::kConditional || e.kind == ExprKind::kCast)
      ++ops;
  });
  return ops;
}

bool Disjoint(const std::set<std::string>& a, const std::set<std::string>& b) {
  for (const auto& name : a)
    if (b.count(name)) return false;
  return true;
}

/// Enumerates candidate subexpressions of a statement (top-level expression
/// slots and every nested subexpression).
void ForEachSubexpr(const StmtPtr& stmt,
                    const std::function<void(const ExprPtr&)>& fn) {
  const auto walk = [&fn](const ExprPtr& e) {
    if (!e) return;
    std::function<void(const ExprPtr&)> rec = [&](const ExprPtr& node) {
      fn(node);
      for (const auto& arg : node->args) rec(arg);
    };
    rec(e);
  };
  // Only this statement's own expressions; children are processed on their
  // own so temporaries land in the tightest enclosing block.
  walk(stmt->value);
  walk(stmt->cond);
  walk(stmt->lo);
  walk(stmt->hi);
  walk(stmt->x);
  walk(stmt->y);
}

class ScalarOptimizer {
 public:
  StmtPtr Run(const StmtPtr& body) { return Optimize(body); }

 private:
  /// Recursively optimizes a statement; blocks get CSE, loops get LICM.
  StmtPtr Optimize(const StmtPtr& stmt) {
    if (!stmt) return nullptr;
    switch (stmt->kind) {
      case StmtKind::kBlock:
        return OptimizeBlock(stmt);
      case StmtKind::kIf:
      case StmtKind::kFor: {
        auto copy = std::make_shared<Stmt>(*stmt);
        for (auto& child : copy->body) child = Optimize(child);
        return copy;
      }
      default:
        return stmt;
    }
  }

  StmtPtr OptimizeBlock(const StmtPtr& block) {
    // Children first so nested blocks/loops already carry their temporaries.
    std::vector<StmtPtr> stmts;
    stmts.reserve(block->body.size());
    for (const auto& child : block->body) stmts.push_back(Optimize(child));

    stmts = ApplyCse(std::move(stmts));
    stmts = ApplyLicm(std::move(stmts));
    auto copy = std::make_shared<Stmt>(*block);
    copy->body = std::move(stmts);
    return copy;
  }

  /// CSE across the direct statements of one block.
  std::vector<StmtPtr> ApplyCse(std::vector<StmtPtr> stmts) {
    std::set<std::string> assigned;
    for (const auto& s : stmts) CollectAssigned(s, &assigned);

    // Count hoistworthy subexpressions by structural key. Pure arithmetic
    // only qualifies when the chain is heavy and repeated (>= 4 operator
    // nodes, >= 3 occurrences) — one register spent on e.g. a boundary
    // clamp repeated per producer tap in a halo-fused kernel.
    std::map<std::string, std::pair<ExprPtr, int>> counts;
    for (const auto& s : stmts) {
      ForEachSubexpr(s, [&](const ExprPtr& e) {
        if (!IsHoistworthy(e) && ArithWeight(e) < 4) return;
        const std::string key = PrintExpr(e);
        auto& entry = counts[key];
        if (!entry.first) entry.first = e;
        ++entry.second;
      });
    }

    std::map<std::string, std::string> replacements;  // key -> temp name
    std::vector<StmtPtr> prologue;
    for (const auto& [key, entry] : counts) {
      const int min_uses = IsHoistworthy(entry.first) ? 2 : 3;
      if (entry.second < min_uses) continue;
      std::set<std::string> free_vars;
      CollectFreeVars(entry.first, &free_vars);
      if (!Disjoint(free_vars, assigned)) continue;
      // Nested duplicates: if a larger duplicate contains this one, the
      // larger replacement subsumes it; allowing both is still correct
      // because replacement runs bottom-up, so prefer the larger (skip keys
      // that are sub-strings of an already accepted key's expression).
      const std::string temp = StrFormat("_cse%d", counter_++);
      replacements[key] = temp;
      prologue.push_back(
          Decl(entry.first->type, temp, entry.first));
    }
    if (replacements.empty()) return stmts;

    // Smaller expressions first, so larger initialisers can reference the
    // temporaries of their own subexpressions (defined before use).
    std::sort(prologue.begin(), prologue.end(),
              [](const StmtPtr& a, const StmtPtr& b) {
                return PrintExpr(a->value).size() < PrintExpr(b->value).size();
              });

    // Rewrite temp initialisers against previously defined temps too, so
    // nested duplicate subexpressions collapse into chains.
    const ExprRewriteFn rewrite = [&replacements](const Expr& e) -> ExprPtr {
      // Never rewrite the whole initialiser into its own temp; handled by
      // key comparison at the call sites below.
      const std::string key = PrintExpr(std::make_shared<Expr>(e));
      const auto it = replacements.find(key);
      if (it == replacements.end()) return nullptr;
      return VarRef(it->second, e.type);
    };
    for (size_t i = 0; i < prologue.size(); ++i) {
      auto decl = std::make_shared<Stmt>(*prologue[i]);
      // Only rewrite strict subexpressions of the initialiser.
      std::vector<ExprPtr> new_args;
      bool changed = false;
      for (const auto& arg : decl->value->args) {
        ExprPtr rewritten = RewriteExpr(arg, rewrite);
        changed = changed || rewritten != arg;
        new_args.push_back(rewritten);
      }
      if (changed) decl->value = WithArgs(*decl->value, std::move(new_args));
      prologue[i] = decl;
      // Statements are rewritten bottom-up, so by the time a larger
      // duplicate is visited its inner occurrences already read from their
      // temporaries; register the rewritten spelling as a key too so the
      // outer chain still collapses.
      replacements[PrintExpr(decl->value)] = decl->name;
    }
    for (auto& s : stmts) s = RewriteStmtExprs(s, rewrite);

    // Nested duplicates can stop matching once their inner occurrence was
    // rewritten; drop any temporary that ended up unused so its (costly)
    // initialiser is not evaluated for nothing.
    std::set<std::string> used;
    auto count_uses = [&used](const StmtPtr& s) {
      VisitExprs(s, [&used](const Expr& e) {
        if (e.kind == ExprKind::kVarRef) used.insert(e.name);
      });
    };
    for (const auto& s : stmts) count_uses(s);
    for (const auto& d : prologue) count_uses(d);

    std::vector<StmtPtr> out;
    out.reserve(prologue.size() + stmts.size());
    for (auto& d : prologue)
      if (used.count(d->name)) out.push_back(std::move(d));
    for (auto& s : stmts) out.push_back(std::move(s));
    return out;
  }

  /// LICM: hoists invariant hoistworthy subexpressions (and optimizer
  /// temporaries) out of directly nested counted loops.
  std::vector<StmtPtr> ApplyLicm(std::vector<StmtPtr> stmts) {
    std::vector<StmtPtr> out;
    for (const auto& stmt : stmts) {
      if (stmt->kind != StmtKind::kFor) {
        out.push_back(stmt);
        continue;
      }
      StmtPtr body = stmt->body[0];
      std::set<std::string> forbidden;
      CollectAssigned(body, &forbidden);
      forbidden.insert(stmt->name);  // the loop variable

      // 1. Hoist invariant optimizer temporaries declared at body top level.
      std::vector<StmtPtr> hoisted;
      if (body->kind == StmtKind::kBlock) {
        std::vector<StmtPtr> remaining;
        for (const auto& child : body->body) {
          bool can_hoist = false;
          if (child->kind == StmtKind::kDecl && child->value &&
              StartsWith(child->name, "_")) {
            std::set<std::string> free_vars;
            CollectFreeVars(child->value, &free_vars);
            std::set<std::string> forbidden_minus_self = forbidden;
            forbidden_minus_self.erase(child->name);
            can_hoist = Disjoint(free_vars, forbidden_minus_self);
          }
          if (can_hoist) {
            hoisted.push_back(child);
            forbidden.erase(child->name);
          } else {
            remaining.push_back(child);
          }
        }
        if (!hoisted.empty()) {
          auto new_body = std::make_shared<Stmt>(*body);
          new_body->body = std::move(remaining);
          body = new_body;
        }
      }

      // 2. Hoist fresh invariant subexpressions.
      std::map<std::string, ExprPtr> candidates;
      VisitStmts(body, [&](const Stmt& s) {
        auto sp = std::make_shared<Stmt>(s);
        ForEachSubexpr(sp, [&](const ExprPtr& e) {
          if (!IsHoistworthy(e)) return;
          std::set<std::string> free_vars;
          CollectFreeVars(e, &free_vars);
          if (!Disjoint(free_vars, forbidden)) return;
          candidates[PrintExpr(e)] = e;
        });
      });
      std::map<std::string, std::string> replacements;
      for (const auto& [key, expr] : candidates) {
        const std::string temp = StrFormat("_licm%d", counter_++);
        replacements[key] = temp;
        out.push_back(Decl(expr->type, temp, expr));
      }
      if (!replacements.empty()) {
        const ExprRewriteFn rewrite = [&replacements](const Expr& e) -> ExprPtr {
          const std::string key = PrintExpr(std::make_shared<Expr>(e));
          const auto it = replacements.find(key);
          if (it == replacements.end()) return nullptr;
          return VarRef(it->second, e.type);
        };
        body = RewriteStmtExprs(body, rewrite);
      }
      for (auto& d : hoisted) out.push_back(std::move(d));

      auto new_for = std::make_shared<Stmt>(*stmt);
      new_for->body = {body};
      out.push_back(std::move(new_for));
    }
    return out;
  }

  int counter_ = 0;
};

}  // namespace

ast::StmtPtr OptimizeScalars(const ast::StmtPtr& body) {
  return ScalarOptimizer().Run(body);
}

}  // namespace hipacc::codegen
