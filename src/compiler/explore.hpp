// Configuration exploration (paper Section V-D / Figure 4): times every
// valid configuration of a compiled kernel on the simulated device. The
// paper JIT-compiles each configuration with substituted macros; here each
// configuration re-launches the interpreter with different region constants.
//
// The sweep is embarrassingly parallel across candidates: each worker owns a
// full measurement lane (its own SimulatedExecutable, interpreter state, and
// a private output image), candidates are dealt round-robin, and results are
// merged by candidate index — so the output is bit-identical for any worker
// count, including the serial path.
#pragma once

#include <vector>

#include "compiler/executable.hpp"
#include "support/json.hpp"

namespace hipacc::compiler {

class ProfileStore;

struct ExplorePoint {
  hw::KernelConfig config;
  /// Pixels per thread the measured kernel was compiled with (1 unless the
  /// caller sweeps the PPT axis by recompiling per value).
  int ppt = 1;
  double occupancy = 0.0;
  long long border_threads = 0;
  double ms = 0.0;
  sim::TimingBreakdown timing;  ///< modelled-time breakdown behind `ms`
};

/// Tuning knobs for ExploreConfigurations. The defaults reproduce Figure 4
/// deterministically on any machine.
struct ExploreOptions {
  /// Measurement workers (0 = hardware concurrency). Results are identical
  /// for every value; only wall-clock time changes.
  int jobs = 1;
  /// Blocks interpreted per boundary region for each candidate. Within one
  /// region every block executes the same instruction stream (the region
  /// variants exist precisely so that holds), so one sample per region is
  /// the exploration default; raise it to average residual cache effects.
  int samples_per_region = 1;
  /// Optional observability sink: records the prune decision, every
  /// simulated candidate launch (per worker lane), and the merge.
  sim::TraceSink* trace = nullptr;
  /// Optional profile sink: every measured point is recorded as an
  /// observation under the kernel's profile key, so a sweep seeds the
  /// profile-guided reselection in one shot (see compiler/profile.hpp).
  ProfileStore* profiles = nullptr;
};

/// Measures every valid configuration. Obviously-invalid candidates (failed
/// occupancy, degenerate boundary tiling) are pruned by the hardware model
/// before any interpreter work. Points are returned sorted by thread count
/// then block_x (the layout of Figure 4's x axis).
Result<std::vector<ExplorePoint>> ExploreConfigurations(
    const CompiledKernel& kernel, const hw::DeviceSpec& device,
    const runtime::BindingSet& bindings, const ExploreOptions& options = {});

/// Structured form of one exploration point:
/// {"config": {block_x, block_y, threads}, "occupancy", "border_threads",
///  "ms", "timing": {...}}.
support::Json ExplorePointJson(const ExplorePoint& point);

/// The BENCH_*.json document the Figure 4 bench and the tests share:
/// {"kernel", "device", "backend", "image": {width, height},
///  "points": [ExplorePointJson...]}.
support::Json ExploreReportJson(const CompiledKernel& kernel,
                                const hw::DeviceSpec& device, int image_width,
                                int image_height,
                                const std::vector<ExplorePoint>& points);

/// One stage of a fusion candidate handed to ExploreFusionCandidate: a
/// compiled kernel plus the bindings its sweep launches with.
struct FusionSweepStage {
  const CompiledKernel* kernel = nullptr;
  const runtime::BindingSet* bindings = nullptr;
};

/// Full-sweep scoring of one fusion candidate: the Figure 4 exploration is
/// run for the fused kernel AND for each stage it replaces, and the best
/// point of each side is compared. This answers a sharper question than the
/// planner's closed-form profitability model — "is the fused kernel faster
/// at its own best configuration than the stages at theirs?" — at sweep
/// cost, so it backs the model's verdicts rather than replacing them.
struct FusionSweep {
  std::vector<ExplorePoint> fused;  ///< swept points of the fused kernel
  /// Swept points per replaced stage, in argument order.
  std::vector<std::vector<ExplorePoint>> stages;
  double best_fused_ms = 0.0;    ///< min over `fused` (includes overhead)
  double best_unfused_ms = 0.0;  ///< sum of per-stage minima
  double speedup = 0.0;          ///< best_unfused_ms / best_fused_ms
};

/// Sweeps a fusion candidate: the fused kernel against the stages it
/// replaces, each over its full valid configuration space. Fails if any
/// sweep returns no measurable point.
Result<FusionSweep> ExploreFusionCandidate(
    const FusionSweepStage& fused, const std::vector<FusionSweepStage>& stages,
    const hw::DeviceSpec& device, const ExploreOptions& options = {});

/// Structured form of a fusion sweep:
/// {"best_fused_ms", "best_unfused_ms", "speedup",
///  "fused": [ExplorePointJson...], "stages": [[...], ...]}.
support::Json FusionSweepJson(const FusionSweep& sweep);

}  // namespace hipacc::compiler
