// Reproduces Table II: bilateral filter on the Tesla C2050, CUDA backend,
// manual vs generated vs RapidMind implementations across boundary modes.
#include <cstdio>

#include "common/bilateral_table.hpp"
#include "common/sim_engine_flag.hpp"
#include "hwmodel/device_db.hpp"

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (!hipacc::bench::HandleSimEngineFlag(argv[i])) {
      std::fprintf(stderr, "usage: table2_tesla_cuda [--sim-engine=bytecode|ast]\n");
      return 2;
    }
  }
  hipacc::bench::BilateralTableOptions options;
  options.device = hipacc::hw::TeslaC2050();
  options.json_out = "BENCH_table2.json";
  options.backend = hipacc::ast::Backend::kCuda;
  options.include_rapidmind = true;
  std::printf("%s\n", hipacc::bench::RunBilateralTable(
                          "Table II: Tesla C2050, CUDA backend", options)
                          .c_str());
  return 0;
}
