file(REMOVE_RECURSE
  "CMakeFiles/table9_gaussian_quadro.dir/table9_gaussian_quadro.cpp.o"
  "CMakeFiles/table9_gaussian_quadro.dir/table9_gaussian_quadro.cpp.o.d"
  "table9_gaussian_quadro"
  "table9_gaussian_quadro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table9_gaussian_quadro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
