// Boundary index resolution — the single source of truth for what each
// BoundaryMode means (paper Table I / Figure 2). Both the DSL's functional
// executor and the simulator's interpreter call these, so generated code and
// direct execution agree by construction.
#pragma once

#include "ast/metadata.hpp"

namespace hipacc::dsl {

using ast::BoundaryMode;

/// Resolves coordinate `c` into [0, n) according to `mode`.
///
///  * kClamp:  nearest valid index.
///  * kRepeat: periodic tiling.
///  * kMirror: reflection duplicating the border pixel (-1 -> 0, -2 -> 1,
///             n -> n-1), matching Figure 2d, applied iteratively for far
///             out-of-bounds coordinates.
///  * kConstant: returns -1; the caller substitutes the constant value.
///  * kUndefined: clamps as a memory-safety net for the host executor (the
///             paper's behaviour is "not specified"; real GPUs may crash).
int ResolveBoundaryIndex(int c, int n, BoundaryMode mode) noexcept;

/// True if (x, y) lies within a width x height image.
inline bool InBounds(int x, int y, int width, int height) noexcept {
  return x >= 0 && x < width && y >= 0 && y < height;
}

}  // namespace hipacc::dsl
