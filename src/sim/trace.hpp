// Observability layer for the simulator and compiler: a thread-safe sink of
// timestamped spans (compile passes, launch builds, simulated launches,
// exploration candidates), each optionally carrying structured arguments
// (sim::Metrics counters, timing-model breakdowns, launch configurations),
// plus named aggregate counters (compilation-cache hits/misses). Serialises
// either as plain JSON ({"events": [...], "counters": {...}}) or as the
// Chrome trace_event format loadable in chrome://tracing / Perfetto.
#pragma once

#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "sim/simulator.hpp"
#include "support/json.hpp"
#include "support/stopwatch.hpp"

namespace hipacc::sim {

/// One completed span on the sink's wall-clock timeline.
struct TraceEvent {
  std::string name;
  std::string category;   ///< "compile", "runtime", "sim", "explore", ...
  double start_ms = 0.0;  ///< relative to the sink's construction
  double dur_ms = 0.0;
  int tid = 0;            ///< logical lane (exploration worker id)
  support::Json args;     ///< object payload; null when empty
};

/// Collects TraceEvents from any thread. All recording methods are
/// thread-safe; serialisation snapshots under the same lock.
class TraceSink {
 public:
  TraceSink() = default;

  /// Milliseconds elapsed since the sink was constructed — the timeline the
  /// spans live on. Callers capture this before timed work, then pass it to
  /// AddSpan with the measured duration.
  double NowMs() const { return epoch_.ElapsedMs(); }

  /// Records a completed span.
  void AddSpan(std::string name, std::string category, double start_ms,
               double dur_ms, support::Json args = support::Json(),
               int tid = 0);

  /// Records an instantaneous counter-style event at NowMs().
  void AddInstant(std::string name, std::string category,
                  support::Json args = support::Json(), int tid = 0);

  /// Records one simulated kernel launch: configuration, occupancy, the
  /// interpreter's metrics, and the timing-model breakdown.
  void RecordLaunch(const std::string& kernel_name,
                    const hw::KernelConfig& config, const LaunchStats& stats,
                    double start_ms, double dur_ms, int tid = 0);

  /// Bumps a named aggregate counter (e.g. "cache_hit.target"). Counters
  /// ride along in ToJson()/ToChromeTrace() without growing the event list.
  void IncrementCounter(const std::string& name, long long delta = 1);

  /// Current value of one counter (0 when never incremented).
  long long counter(const std::string& name) const;

  /// Records one compilation-cache lookup: bumps the
  /// "cache_{hit,miss}.<level>" counter and files an instant event carrying
  /// the key hash, so individual lookups stay visible on the timeline.
  void RecordCacheAccess(const std::string& level, bool hit,
                         const std::string& key_hex);

  bool empty() const;
  std::size_t event_count() const;

  /// {"events": [{name, category, start_ms, dur_ms, tid, args}, ...],
  ///  "counters": {...}} — "counters" only present when any were bumped.
  support::Json ToJson() const;

  /// Chrome trace_event JSON: {"traceEvents": [{"ph": "X", ...}, ...]}.
  std::string ToChromeTrace() const;

  Status WriteJson(const std::string& path) const;
  Status WriteChromeTrace(const std::string& path) const;

 private:
  Stopwatch epoch_;
  mutable std::mutex mutex_;
  std::vector<TraceEvent> events_;
  std::map<std::string, long long> counters_;
};

/// RAII helper: measures a span from construction to destruction and files
/// it into the sink (no-op when `sink` is null).
class TraceSpan {
 public:
  TraceSpan(TraceSink* sink, std::string name, std::string category,
            int tid = 0)
      : sink_(sink), name_(std::move(name)), category_(std::move(category)),
        tid_(tid), start_ms_(sink ? sink->NowMs() : 0.0) {}
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;
  ~TraceSpan() {
    if (sink_)
      sink_->AddSpan(std::move(name_), std::move(category_), start_ms_,
                     sink_->NowMs() - start_ms_, std::move(args_), tid_);
  }

  /// Attaches a payload reported with the span.
  void set_args(support::Json args) { args_ = std::move(args); }

 private:
  TraceSink* sink_;
  std::string name_;
  std::string category_;
  int tid_;
  double start_ms_;
  support::Json args_;
};

/// Structured views of the simulator's data, shared by the sink and the
/// bench writers.
support::Json MetricsJson(const Metrics& metrics);
support::Json TimingJson(const TimingBreakdown& timing);
support::Json OccupancyJson(const hw::OccupancyResult& occupancy);
support::Json ConfigJson(const hw::KernelConfig& config);

}  // namespace hipacc::sim
