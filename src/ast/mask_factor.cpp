#include "ast/mask_factor.hpp"

#include <algorithm>
#include <cmath>

namespace hipacc::ast {

std::optional<Rank1Factors> FactorizeRank1(const std::vector<float>& mask,
                                           int size_x, int size_y,
                                           float rel_tol) {
  if (size_x <= 0 || size_y <= 0 ||
      mask.size() != static_cast<size_t>(size_x) * size_y)
    return std::nullopt;
  const auto at = [&](int x, int y) {
    return static_cast<double>(mask[static_cast<size_t>(y) * size_x + x]);
  };

  // Pivot: the largest-magnitude coefficient. Its row and column span the
  // candidate factors; a zero mask has no useful factorization.
  int px = 0, py = 0;
  double pivot = 0.0;
  for (int y = 0; y < size_y; ++y)
    for (int x = 0; x < size_x; ++x)
      if (std::abs(at(x, y)) > std::abs(pivot)) {
        pivot = at(x, y);
        px = x;
        py = y;
      }
  if (pivot == 0.0) return std::nullopt;

  std::vector<double> row(static_cast<size_t>(size_x));
  std::vector<double> col(static_cast<size_t>(size_y));
  for (int x = 0; x < size_x; ++x) row[static_cast<size_t>(x)] = at(x, py);
  for (int y = 0; y < size_y; ++y)
    col[static_cast<size_t>(y)] = at(px, y) / pivot;

  // Rank-1 check: every coefficient must match the outer product, with the
  // tolerance anchored to the pivot magnitude (coefficients near zero must
  // agree absolutely, not relatively).
  const double tol = static_cast<double>(rel_tol) * std::abs(pivot);
  for (int y = 0; y < size_y; ++y)
    for (int x = 0; x < size_x; ++x)
      if (std::abs(at(x, y) - col[static_cast<size_t>(y)] *
                                  row[static_cast<size_t>(x)]) > tol)
        return std::nullopt;

  // Balance the factors (equal infinity norms): the row factor carries the
  // pivot's magnitude, the column factor is normalised to 1 at the pivot,
  // and splitting the scale keeps both passes in a comparable float range.
  double row_inf = 0.0, col_inf = 0.0;
  for (const double v : row) row_inf = std::max(row_inf, std::abs(v));
  for (const double v : col) col_inf = std::max(col_inf, std::abs(v));
  const double balance = std::sqrt(row_inf / col_inf);
  Rank1Factors out;
  out.row.reserve(row.size());
  out.col.reserve(col.size());
  for (const double v : row)
    out.row.push_back(static_cast<float>(v / balance));
  for (const double v : col)
    out.col.push_back(static_cast<float>(v * balance));
  return out;
}

}  // namespace hipacc::ast
