#include "sim/jit/toolchain.hpp"

#include <dlfcn.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <mutex>
#include <sstream>

#include "support/string_utils.hpp"

#ifndef HIPACC_JIT_CXX_DEFAULT
#define HIPACC_JIT_CXX_DEFAULT ""
#endif

namespace hipacc::sim::jit {
namespace {

// Flags: -ffp-contract=off forbids FMA contraction so every emitted
// arithmetic statement rounds exactly like the VM's separately compiled
// handlers; the rest matches the simulator's own build enough for identical
// libm/SSE semantics. HIPACC_JIT_CXXFLAGS replaces the optimisation flags
// (everything but the mandatory -fPIC -shared -std -ffp-contract tail) for
// experiments; bit-exactness only survives flags that keep IEEE semantics.
constexpr const char kMandatoryFlags[] =
    "-fPIC -shared -std=c++17 -ffp-contract=off";

std::string Flags() {
  const char* opt = std::getenv("HIPACC_JIT_CXXFLAGS");
  return std::string(opt && opt[0] ? opt : "-O2") + " " + kMandatoryFlags;
}

std::string& OverrideSlot() {
  static std::string value;
  return value;
}
bool& OverrideActive() {
  static bool active = false;
  return active;
}
std::mutex& OverrideMutex() {
  static std::mutex mu;
  return mu;
}

bool Runnable(const std::string& compiler) {
  if (compiler.empty()) return false;
  // `--version` probes both existence and executability without touching
  // the filesystem layout assumptions of any particular compiler.
  const std::string cmd =
      "\"" + compiler + "\" --version > /dev/null 2>&1";
  return std::system(cmd.c_str()) == 0;
}

/// Discovers the compiler once per distinct override state. Not cached
/// across override changes so tests can flip between real / missing /
/// broken toolchains.
std::string DetectCompiler() {
  {
    const std::lock_guard<std::mutex> lock(OverrideMutex());
    if (OverrideActive()) return OverrideSlot();
  }
  if (const char* env = std::getenv("HIPACC_JIT_DISABLE"))
    if (env[0] && env[0] != '0') return "";
  if (const char* env = std::getenv("HIPACC_JIT_CXX"))
    if (env[0]) return env;
  static const std::string detected = [] {
    const std::string baked = HIPACC_JIT_CXX_DEFAULT;
    if (Runnable(baked)) return baked;
    for (const char* candidate : {"c++", "g++", "clang++"})
      if (Runnable(candidate)) return std::string(candidate);
    return std::string();
  }();
  return detected;
}

}  // namespace

NativeModule::~NativeModule() {
  if (handle_) dlclose(handle_);
}

void* NativeModule::Sym(const char* name) const {
  return handle_ ? dlsym(handle_, name) : nullptr;
}

std::string ToolchainIdentity() {
  return DetectCompiler() + " " + Flags();
}

bool ToolchainAvailable() { return !DetectCompiler().empty(); }

Result<std::shared_ptr<NativeModule>> CompileSharedObject(
    const std::string& source, const std::string& tag,
    std::string* so_bytes_out) {
  const std::string compiler = DetectCompiler();
  if (compiler.empty())
    return Status::Unimplemented("no host toolchain for the native tier");

  char dir_template[] = "/tmp/hipacc_jit_XXXXXX";
  if (!mkdtemp(dir_template))
    return Status::Internal("mkdtemp failed for jit workspace");
  const std::string dir = dir_template;
  const std::string cpp = dir + "/" + tag + ".cpp";
  const std::string so = dir + "/" + tag + ".so";
  const std::string log = dir + "/" + tag + ".log";

  auto cleanup = [&] {
    std::remove(cpp.c_str());
    std::remove(so.c_str());
    std::remove(log.c_str());
    rmdir(dir.c_str());
  };

  {
    std::ofstream out(cpp);
    out << source;
    if (!out.good()) {
      cleanup();
      return Status::Internal("failed to write jit source " + cpp);
    }
  }

  const std::string cmd = "\"" + compiler + "\" " + Flags() + " -o \"" + so +
                          "\" \"" + cpp + "\" > \"" + log + "\" 2>&1";
  const int rc = std::system(cmd.c_str());
  if (rc != 0) {
    std::string diag;
    {
      std::ifstream in(log);
      std::stringstream ss;
      ss << in.rdbuf();
      diag = ss.str();
      if (diag.size() > 2000) diag.resize(2000);
    }
    cleanup();
    return Status::Internal(
        StrFormat("jit compile failed (rc=%d) with %s: %s", rc,
                           compiler.c_str(), diag.c_str()));
  }

  if (so_bytes_out != nullptr) {
    std::ifstream in(so, std::ios::binary);
    std::stringstream ss;
    ss << in.rdbuf();
    *so_bytes_out = ss.str();
  }

  void* handle = dlopen(so.c_str(), RTLD_NOW | RTLD_LOCAL);
  cleanup();  // mapping keeps the object alive; nothing left on disk
  if (!handle) {
    const char* err = dlerror();
    return Status::Internal(std::string("dlopen failed: ") +
                            (err ? err : "unknown"));
  }
  return std::make_shared<NativeModule>(handle);
}

Result<std::shared_ptr<NativeModule>> OpenSharedObjectBytes(
    const std::string& so_bytes, const std::string& tag) {
  char dir_template[] = "/tmp/hipacc_jit_XXXXXX";
  if (!mkdtemp(dir_template))
    return Status::Internal("mkdtemp failed for jit workspace");
  const std::string dir = dir_template;
  const std::string so = dir + "/" + tag + ".so";
  {
    std::ofstream out(so, std::ios::binary);
    out.write(so_bytes.data(),
              static_cast<std::streamsize>(so_bytes.size()));
    if (!out.good()) {
      std::remove(so.c_str());
      rmdir(dir.c_str());
      return Status::Internal("failed to materialise cached jit object " + so);
    }
  }
  void* handle = dlopen(so.c_str(), RTLD_NOW | RTLD_LOCAL);
  std::remove(so.c_str());  // mapping keeps the object alive
  rmdir(dir.c_str());
  if (!handle) {
    const char* err = dlerror();
    return Status::Internal(std::string("dlopen of cached object failed: ") +
                            (err ? err : "unknown"));
  }
  return std::make_shared<NativeModule>(handle);
}

void SetToolchainOverrideForTesting(const char* compiler) {
  const std::lock_guard<std::mutex> lock(OverrideMutex());
  OverrideActive() = compiler != nullptr;
  OverrideSlot() = compiler ? compiler : "";
}

}  // namespace hipacc::sim::jit
