#include "frontend/lexer.hpp"

#include <cctype>
#include <cstdlib>

#include "support/string_utils.hpp"

namespace hipacc::frontend {

const char* to_string(TokenKind kind) noexcept {
  switch (kind) {
    case TokenKind::kEnd: return "<end>";
    case TokenKind::kIdent: return "identifier";
    case TokenKind::kIntLit: return "integer literal";
    case TokenKind::kFloatLit: return "float literal";
    case TokenKind::kLParen: return "(";
    case TokenKind::kRParen: return ")";
    case TokenKind::kLBrace: return "{";
    case TokenKind::kRBrace: return "}";
    case TokenKind::kSemicolon: return ";";
    case TokenKind::kComma: return ",";
    case TokenKind::kQuestion: return "?";
    case TokenKind::kColon: return ":";
    case TokenKind::kPlus: return "+";
    case TokenKind::kMinus: return "-";
    case TokenKind::kStar: return "*";
    case TokenKind::kSlash: return "/";
    case TokenKind::kPercent: return "%";
    case TokenKind::kAssign: return "=";
    case TokenKind::kPlusAssign: return "+=";
    case TokenKind::kMinusAssign: return "-=";
    case TokenKind::kStarAssign: return "*=";
    case TokenKind::kSlashAssign: return "/=";
    case TokenKind::kPlusPlus: return "++";
    case TokenKind::kMinusMinus: return "--";
    case TokenKind::kLt: return "<";
    case TokenKind::kLe: return "<=";
    case TokenKind::kGt: return ">";
    case TokenKind::kGe: return ">=";
    case TokenKind::kEqEq: return "==";
    case TokenKind::kNe: return "!=";
    case TokenKind::kNot: return "!";
    case TokenKind::kAndAnd: return "&&";
    case TokenKind::kOrOr: return "||";
    case TokenKind::kKwFloat: return "float";
    case TokenKind::kKwInt: return "int";
    case TokenKind::kKwBool: return "bool";
    case TokenKind::kKwIf: return "if";
    case TokenKind::kKwElse: return "else";
    case TokenKind::kKwFor: return "for";
    case TokenKind::kKwOutput: return "output";
    case TokenKind::kKwTrue: return "true";
    case TokenKind::kKwFalse: return "false";
    case TokenKind::kKwReturn: return "return";
  }
  return "?";
}

namespace {

TokenKind KeywordKind(const std::string& text) {
  if (text == "float") return TokenKind::kKwFloat;
  if (text == "int") return TokenKind::kKwInt;
  if (text == "bool") return TokenKind::kKwBool;
  if (text == "if") return TokenKind::kKwIf;
  if (text == "else") return TokenKind::kKwElse;
  if (text == "for") return TokenKind::kKwFor;
  if (text == "output") return TokenKind::kKwOutput;
  if (text == "true") return TokenKind::kKwTrue;
  if (text == "false") return TokenKind::kKwFalse;
  if (text == "return") return TokenKind::kKwReturn;
  return TokenKind::kIdent;
}

class LexerImpl {
 public:
  explicit LexerImpl(const std::string& source) : src_(source) {}

  Result<std::vector<Token>> Run() {
    std::vector<Token> tokens;
    while (true) {
      HIPACC_RETURN_IF_ERROR(SkipWhitespaceAndComments());
      Token tok;
      tok.line = line_;
      tok.column = column_;
      if (AtEnd()) {
        tok.kind = TokenKind::kEnd;
        tokens.push_back(tok);
        return tokens;
      }
      const char c = Peek();
      if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        std::string text;
        while (!AtEnd() && (std::isalnum(static_cast<unsigned char>(Peek())) ||
                            Peek() == '_'))
          text += Advance();
        tok.kind = KeywordKind(text);
        tok.text = text;
        tokens.push_back(tok);
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(c)) ||
          (c == '.' && std::isdigit(static_cast<unsigned char>(PeekAt(1))))) {
        HIPACC_RETURN_IF_ERROR(LexNumber(&tok));
        tokens.push_back(tok);
        continue;
      }
      Status st = LexPunct(&tok);
      if (!st.ok()) return st;
      tokens.push_back(tok);
    }
  }

 private:

  bool AtEnd() const { return pos_ >= src_.size(); }
  char Peek() const { return AtEnd() ? '\0' : src_[pos_]; }
  char PeekAt(size_t off) const {
    return pos_ + off < src_.size() ? src_[pos_ + off] : '\0';
  }
  char Advance() {
    const char c = src_[pos_++];
    if (c == '\n') {
      ++line_;
      column_ = 1;
    } else {
      ++column_;
    }
    return c;
  }
  bool Match(char expected) {
    if (Peek() != expected) return false;
    Advance();
    return true;
  }

  Status SkipWhitespaceAndComments() {
    while (!AtEnd()) {
      const char c = Peek();
      if (std::isspace(static_cast<unsigned char>(c))) {
        Advance();
      } else if (c == '/' && PeekAt(1) == '/') {
        while (!AtEnd() && Peek() != '\n') Advance();
      } else if (c == '/' && PeekAt(1) == '*') {
        Advance();
        Advance();
        while (!AtEnd() && !(Peek() == '*' && PeekAt(1) == '/')) Advance();
        if (AtEnd())
          return Status::Parse(
              StrFormat("unterminated block comment at line %d", line_));
        Advance();
        Advance();
      } else {
        break;
      }
    }
    return Status::Ok();
  }

  Status LexNumber(Token* tok) {
    std::string text;
    bool is_float = false;
    while (std::isdigit(static_cast<unsigned char>(Peek()))) text += Advance();
    if (Peek() == '.') {
      is_float = true;
      text += Advance();
      while (std::isdigit(static_cast<unsigned char>(Peek()))) text += Advance();
    }
    if (Peek() == 'e' || Peek() == 'E') {
      is_float = true;
      text += Advance();
      if (Peek() == '+' || Peek() == '-') text += Advance();
      if (!std::isdigit(static_cast<unsigned char>(Peek())))
        return Status::Parse(
            StrFormat("malformed exponent at line %d", tok->line));
      while (std::isdigit(static_cast<unsigned char>(Peek()))) text += Advance();
    }
    if (Peek() == 'f' || Peek() == 'F') {
      is_float = true;
      Advance();
    }
    if (is_float) {
      tok->kind = TokenKind::kFloatLit;
      tok->float_value = std::strtod(text.c_str(), nullptr);
    } else {
      tok->kind = TokenKind::kIntLit;
      tok->int_value = std::strtoll(text.c_str(), nullptr, 10);
    }
    return Status::Ok();
  }

  Status LexPunct(Token* tok) {
    const char c = Advance();
    switch (c) {
      case '(': tok->kind = TokenKind::kLParen; return Status::Ok();
      case ')': tok->kind = TokenKind::kRParen; return Status::Ok();
      case '{': tok->kind = TokenKind::kLBrace; return Status::Ok();
      case '}': tok->kind = TokenKind::kRBrace; return Status::Ok();
      case ';': tok->kind = TokenKind::kSemicolon; return Status::Ok();
      case ',': tok->kind = TokenKind::kComma; return Status::Ok();
      case '?': tok->kind = TokenKind::kQuestion; return Status::Ok();
      case ':': tok->kind = TokenKind::kColon; return Status::Ok();
      case '%': tok->kind = TokenKind::kPercent; return Status::Ok();
      case '+':
        tok->kind = Match('=') ? TokenKind::kPlusAssign
                   : Match('+') ? TokenKind::kPlusPlus
                                : TokenKind::kPlus;
        return Status::Ok();
      case '-':
        tok->kind = Match('=') ? TokenKind::kMinusAssign
                   : Match('-') ? TokenKind::kMinusMinus
                                : TokenKind::kMinus;
        return Status::Ok();
      case '*':
        tok->kind = Match('=') ? TokenKind::kStarAssign : TokenKind::kStar;
        return Status::Ok();
      case '/':
        tok->kind = Match('=') ? TokenKind::kSlashAssign : TokenKind::kSlash;
        return Status::Ok();
      case '<':
        tok->kind = Match('=') ? TokenKind::kLe : TokenKind::kLt;
        return Status::Ok();
      case '>':
        tok->kind = Match('=') ? TokenKind::kGe : TokenKind::kGt;
        return Status::Ok();
      case '=':
        tok->kind = Match('=') ? TokenKind::kEqEq : TokenKind::kAssign;
        return Status::Ok();
      case '!':
        tok->kind = Match('=') ? TokenKind::kNe : TokenKind::kNot;
        return Status::Ok();
      case '&':
        if (Match('&')) {
          tok->kind = TokenKind::kAndAnd;
          return Status::Ok();
        }
        break;
      case '|':
        if (Match('|')) {
          tok->kind = TokenKind::kOrOr;
          return Status::Ok();
        }
        break;
      default:
        break;
    }
    return Status::Parse(StrFormat("unexpected character '%c' at line %d:%d",
                                   c, tok->line, tok->column));
  }

  const std::string& src_;
  size_t pos_ = 0;
  int line_ = 1;
  int column_ = 1;
};

}  // namespace

Result<std::vector<Token>> Lex(const std::string& source) {
  return LexerImpl(source).Run();
}

}  // namespace hipacc::frontend
