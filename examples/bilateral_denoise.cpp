// Angiography denoising scenario (the paper's motivating domain): a noisy
// synthetic angiogram is denoised with the bilateral filter — edge-preserving
// smoothing keeps vessel borders sharp while flattening quantum noise.
// Compares against a plain Gaussian of the same support to show why the
// bilateral filter is the tool of choice, and sweeps sigma_r.
#include <cstdio>

#include "hipacc.hpp"

using namespace hipacc;

namespace {

HostImage<float> RunBilateral(const HostImage<float>& noisy, int sigma_d,
                              int sigma_r) {
  dsl::Image<float> in(noisy.width(), noisy.height());
  dsl::Image<float> out(noisy.width(), noisy.height());
  in.CopyFrom(noisy);
  const int window = 4 * sigma_d + 1;
  dsl::BoundaryCondition<float> bc(in, window, window,
                                   ast::BoundaryMode::kMirror);
  dsl::Accessor<float> acc(bc);
  dsl::IterationSpace<float> is(out);
  ops::BilateralFilter bf(is, acc, sigma_d, sigma_r);
  bf.execute();
  return out.getData();
}

HostImage<float> RunGaussian(const HostImage<float>& noisy, int size) {
  dsl::Image<float> in(noisy.width(), noisy.height());
  dsl::Image<float> out(noisy.width(), noisy.height());
  in.CopyFrom(noisy);
  dsl::Mask<float> mask(size, size);
  mask = ops::GaussianMask2D(size, 0.5f * size);
  dsl::BoundaryCondition<float> bc(in, size, size, ast::BoundaryMode::kMirror);
  dsl::Accessor<float> acc(bc);
  dsl::IterationSpace<float> is(out);
  ops::Convolution conv(is, acc, mask);
  conv.execute();
  return out.getData();
}

}  // namespace

int main() {
  const int n = 768;
  const int sigma_d = 2;
  const HostImage<float> clean = MakeAngiogramPhantom(n, n, 0.0f, 11);
  const HostImage<float> noisy = MakeAngiogramPhantom(n, n, 0.10f, 11);

  std::printf("Bilateral denoising of a %dx%d synthetic angiogram "
              "(noise sigma 0.10)\n\n", n, n);
  std::printf("  noisy input:              PSNR %6.2f dB\n", Psnr(clean, noisy));

  const HostImage<float> gauss = RunGaussian(noisy, 4 * sigma_d + 1);
  std::printf("  gaussian %dx%d:            PSNR %6.2f dB (blurs vessel edges)\n",
              4 * sigma_d + 1, 4 * sigma_d + 1, Psnr(clean, gauss));

  for (const int sigma_r : {2, 5, 10, 20}) {
    const HostImage<float> denoised = RunBilateral(noisy, sigma_d, sigma_r);
    std::printf("  bilateral sigma_r = %-3d:  PSNR %6.2f dB\n", sigma_r,
                Psnr(clean, denoised));
    if (sigma_r == 5) {
      (void)WritePgm(denoised, ExampleOutputPath("bilateral_denoised.pgm"));
    }
  }

  // Global operator: mean intensity before/after (a sanity statistic
  // clinicians watch — denoising must not shift overall brightness).
  dsl::Image<float> d_noisy(n, n), d_out(n, n);
  d_noisy.CopyFrom(noisy);
  d_out.CopyFrom(RunBilateral(noisy, sigma_d, 5));
  const float mean_before = dsl::ReduceSum(d_noisy) / static_cast<float>(n * n);
  const float mean_after = dsl::ReduceSum(d_out) / static_cast<float>(n * n);
  std::printf("\n  mean intensity: %.4f -> %.4f\n", mean_before, mean_after);

  (void)WritePgm(noisy, ExampleOutputPath("bilateral_noisy.pgm"));
  (void)WritePgm(clean, ExampleOutputPath("bilateral_clean.pgm"));
  std::printf("wrote %s\n",
              ExampleOutputPath("bilateral_{clean,noisy,denoised}.pgm").c_str());
  return 0;
}
