
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/table5_quadro_opencl.cpp" "bench/CMakeFiles/table5_quadro_opencl.dir/table5_quadro_opencl.cpp.o" "gcc" "bench/CMakeFiles/table5_quadro_opencl.dir/table5_quadro_opencl.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/hipacc_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/compiler/CMakeFiles/hipacc_compiler.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/hipacc_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/hipacc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/codegen/CMakeFiles/hipacc_codegen.dir/DependInfo.cmake"
  "/root/repo/build/src/hwmodel/CMakeFiles/hipacc_hwmodel.dir/DependInfo.cmake"
  "/root/repo/build/src/ops/CMakeFiles/hipacc_ops.dir/DependInfo.cmake"
  "/root/repo/build/src/frontend/CMakeFiles/hipacc_frontend.dir/DependInfo.cmake"
  "/root/repo/build/src/dsl/CMakeFiles/hipacc_dsl.dir/DependInfo.cmake"
  "/root/repo/build/src/ast/CMakeFiles/hipacc_ast.dir/DependInfo.cmake"
  "/root/repo/build/src/image/CMakeFiles/hipacc_image.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/hipacc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
