// Native-tier behaviour tests: tiering thresholds, the process-wide module
// cache (including concurrent exploration lanes sharing one compile),
// graceful degradation when the host toolchain is missing or broken, and
// the threaded-VM fallback dispatcher. Output parity across the whole
// kernel matrix lives in bytecode_test.cpp and differential_fuzz_test.cpp;
// here the subject is the tiering machinery itself.
#include <gtest/gtest.h>

#include <climits>
#include <cstring>
#include <filesystem>
#include <thread>
#include <vector>

#include "compiler/driver.hpp"
#include "ops/kernel_sources.hpp"
#include "ops/masks.hpp"
#include "runtime/bindings.hpp"
#include "sim/jit/cache.hpp"
#include "sim/jit/emit.hpp"
#include "sim/jit/toolchain.hpp"
#include "sim/simulator.hpp"
#include "sim/trace.hpp"
#include "support/disk_store.hpp"
#include "support/rng.hpp"

namespace hipacc {
namespace {

using ast::BoundaryMode;

/// Restores the real toolchain when a test that overrides it exits (also
/// on assertion failure, so one test cannot poison the rest).
struct ToolchainGuard {
  explicit ToolchainGuard(const char* override_cmd) {
    sim::jit::SetToolchainOverrideForTesting(override_cmd);
  }
  ~ToolchainGuard() { sim::jit::SetToolchainOverrideForTesting(nullptr); }
};

HostImage<float> RandomInput(int w, int h, Rng& rng) {
  HostImage<float> img(w, h);
  for (int y = 0; y < h; ++y)
    for (int x = 0; x < w; ++x) img(x, y) = 4.0f * rng.NextFloat() - 1.0f;
  return img;
}

compiler::CompiledKernel CompileGaussian(int w, int h) {
  compiler::CompileOptions options;
  options.device = hw::TeslaC2050();
  options.image_width = w;
  options.image_height = h;
  options.forced_config = hw::KernelConfig{32, 2};
  Result<compiler::CompiledKernel> compiled = compiler::Compile(
      ops::GaussianSource(5, 1.2f, BoundaryMode::kMirror), options);
  HIPACC_CHECK(compiled.ok());
  HIPACC_CHECK(compiled.value().bytecode != nullptr);
  return std::move(compiled).take();
}

struct RunResult {
  Status status = Status::Ok();
  std::vector<float> output;
  sim::LaunchStats stats;
};

/// One Execute through a fresh launch of `kernel` on `input`. The tier
/// state lives in kernel.bytecode, so repeated calls with the same kernel
/// exercise the tiering counters.
RunResult RunOnce(const compiler::CompiledKernel& kernel,
                  const HostImage<float>& input,
                  const sim::SimulatorOptions& options,
                  sim::TraceSink* trace = nullptr) {
  RunResult run;
  dsl::Image<float> in(input.width(), input.height());
  dsl::Image<float> out(input.width(), input.height());
  in.CopyFrom(input);
  runtime::BindingSet bindings;
  bindings.Input("Input", in).Output(out);
  Result<runtime::LaunchHolder> holder =
      runtime::BuildLaunch(kernel.device_ir, kernel.config.config, bindings);
  HIPACC_CHECK(holder.ok());
  holder.value().launch.programs = kernel.bytecode.get();
  sim::Simulator simulator(hw::TeslaC2050(), options);
  if (trace) simulator.set_trace(trace);
  Result<sim::LaunchStats> stats = simulator.Execute(holder.value().launch);
  if (!stats.ok()) {
    run.status = stats.status();
    return run;
  }
  run.stats = stats.value();
  const HostImage<float>& data = out.getData();
  run.output.assign(data.data(), data.data() + data.size());
  return run;
}

sim::SimulatorOptions NativeOptions(int threshold) {
  sim::SimulatorOptions options;
  options.engine = sim::ExecEngine::kNative;
  options.jit_threshold = threshold;
  return options;
}

void ExpectSameOutput(const RunResult& a, const RunResult& b) {
  ASSERT_TRUE(a.status.ok()) << a.status.ToString();
  ASSERT_TRUE(b.status.ok()) << b.status.ToString();
  ASSERT_EQ(a.output.size(), b.output.size());
  EXPECT_EQ(std::memcmp(a.output.data(), b.output.data(),
                        a.output.size() * sizeof(float)),
            0)
      << "output pixels differ";
  EXPECT_EQ(a.stats.metrics.alu_ops, b.stats.metrics.alu_ops);
  EXPECT_EQ(a.stats.metrics.oob_violations, b.stats.metrics.oob_violations);
  EXPECT_EQ(a.stats.timing.total_ms, b.stats.timing.total_ms);
}

TEST(JitEmitTest, EmittedSourceIsDeterministic) {
  const compiler::CompiledKernel kernel = CompileGaussian(73, 41);
  const sim::jit::EmittedSource a = sim::jit::EmitNativeSource(*kernel.bytecode);
  const sim::jit::EmittedSource b = sim::jit::EmitNativeSource(*kernel.bytecode);
  EXPECT_EQ(a.source, b.source);
  ASSERT_EQ(a.symbols.size(), kernel.bytecode->programs.size());
  // Every region-specialised program gets its own extern "C" symbol.
  for (const auto& si : a.symbols) {
    EXPECT_NE(a.source.find("int " + si.symbol + "("), std::string::npos)
        << si.symbol;
  }
  EXPECT_EQ(sim::jit::ProgramFingerprint(*kernel.bytecode),
            sim::jit::ProgramFingerprint(*kernel.bytecode));
}

TEST(JitTierTest, NativeMatchesBytecodeWhenToolchainPresent) {
  if (!sim::jit::ToolchainAvailable())
    GTEST_SKIP() << "no host toolchain in this environment";
  sim::jit::JitCache::Instance().ResetForTesting();
  const compiler::CompiledKernel kernel = CompileGaussian(73, 41);
  Rng rng(0x11u);
  const HostImage<float> input = RandomInput(73, 41, rng);
  const RunResult vm = RunOnce(kernel, input, sim::SimulatorOptions{});
  sim::TraceSink trace;
  const RunResult native = RunOnce(kernel, input, NativeOptions(1), &trace);
  ExpectSameOutput(vm, native);
  EXPECT_EQ(trace.counter("jit.compile"), 1);
  EXPECT_EQ(trace.counter("jit.hit"), 1);
  EXPECT_EQ(trace.counter("sim.launch.native"), 1);
  EXPECT_EQ(sim::jit::JitCache::Instance().compiles(), 1u);
}

TEST(JitTierTest, ThresholdCountsLaunchesBeforeCompiling) {
  if (!sim::jit::ToolchainAvailable())
    GTEST_SKIP() << "no host toolchain in this environment";
  sim::jit::JitCache::Instance().ResetForTesting();
  const compiler::CompiledKernel kernel = CompileGaussian(73, 41);
  Rng rng(0x22u);
  const HostImage<float> input = RandomInput(73, 41, rng);
  sim::TraceSink trace;
  const sim::SimulatorOptions options = NativeOptions(3);
  // Launches 1 and 2 stay on the threaded VM; launch 3 reaches the
  // threshold and compiles; launch 4 hits the installed fast path.
  RunOnce(kernel, input, options, &trace);
  RunOnce(kernel, input, options, &trace);
  EXPECT_EQ(trace.counter("jit.threaded"), 2);
  EXPECT_EQ(trace.counter("jit.compile"), 0);
  RunOnce(kernel, input, options, &trace);
  EXPECT_EQ(trace.counter("jit.compile"), 1);
  EXPECT_EQ(trace.counter("jit.hit"), 1);
  RunOnce(kernel, input, options, &trace);
  EXPECT_EQ(trace.counter("jit.hit"), 2);
  EXPECT_EQ(trace.counter("sim.launch.native"), 2);
  EXPECT_EQ(trace.counter("sim.launch.bytecode"), 2);
}

TEST(JitTierTest, ThreadedVmMatchesSwitchVm) {
  // A huge threshold pins the computed-goto VM: no toolchain involved, so
  // this holds in every environment.
  const compiler::CompiledKernel kernel = CompileGaussian(73, 41);
  Rng rng(0x33u);
  const HostImage<float> input = RandomInput(73, 41, rng);
  const RunResult vm = RunOnce(kernel, input, sim::SimulatorOptions{});
  sim::TraceSink trace;
  const RunResult threaded =
      RunOnce(kernel, input, NativeOptions(INT_MAX), &trace);
  ExpectSameOutput(vm, threaded);
  EXPECT_EQ(trace.counter("jit.threaded"), 1);
  EXPECT_EQ(trace.counter("jit.compile"), 0);
}

TEST(JitDegradationTest, MissingToolchainFallsBackToThreadedVm) {
  sim::jit::JitCache::Instance().ResetForTesting();
  const compiler::CompiledKernel kernel = CompileGaussian(73, 41);
  Rng rng(0x44u);
  const HostImage<float> input = RandomInput(73, 41, rng);
  const RunResult vm = RunOnce(kernel, input, sim::SimulatorOptions{});
  ToolchainGuard guard("");
  EXPECT_FALSE(sim::jit::ToolchainAvailable());
  sim::TraceSink trace;
  const RunResult first = RunOnce(kernel, input, NativeOptions(1), &trace);
  ExpectSameOutput(vm, first);
  EXPECT_EQ(trace.counter("jit.error"), 1);
  EXPECT_EQ(trace.counter("jit.threaded"), 1);
  EXPECT_EQ(trace.counter("sim.launch.native"), 0);
  // Failure is latched: the second launch does not probe the toolchain
  // again and still produces identical output.
  const RunResult second = RunOnce(kernel, input, NativeOptions(1), &trace);
  ExpectSameOutput(vm, second);
  EXPECT_EQ(trace.counter("jit.error"), 1);
  EXPECT_EQ(trace.counter("jit.threaded"), 2);
  EXPECT_EQ(sim::jit::JitCache::Instance().compiles(), 0u);
}

TEST(JitDegradationTest, BrokenCompilerFallsBackToThreadedVm) {
  sim::jit::JitCache::Instance().ResetForTesting();
  const compiler::CompiledKernel kernel = CompileGaussian(73, 41);
  Rng rng(0x55u);
  const HostImage<float> input = RandomInput(73, 41, rng);
  const RunResult vm = RunOnce(kernel, input, sim::SimulatorOptions{});
  ToolchainGuard guard("/bin/false");
  sim::TraceSink trace;
  const RunResult native = RunOnce(kernel, input, NativeOptions(1), &trace);
  ExpectSameOutput(vm, native);
  EXPECT_EQ(trace.counter("jit.error"), 1);
  EXPECT_EQ(trace.counter("sim.launch.native"), 0);
}

TEST(JitCacheTest, IdenticalProgramsShareOneModule) {
  if (!sim::jit::ToolchainAvailable())
    GTEST_SKIP() << "no host toolchain in this environment";
  sim::jit::JitCache::Instance().ResetForTesting();
  // Two independent compilations of the same kernel source: distinct
  // ProgramSets (distinct TierStates) whose emitted source is identical,
  // so the second only pays a cache lookup.
  const compiler::CompiledKernel a = CompileGaussian(73, 41);
  const compiler::CompiledKernel b = CompileGaussian(73, 41);
  ASSERT_NE(a.bytecode.get(), b.bytecode.get());
  Rng rng(0x66u);
  const HostImage<float> input = RandomInput(73, 41, rng);
  sim::TraceSink ta, tb;
  RunOnce(a, input, NativeOptions(1), &ta);
  RunOnce(b, input, NativeOptions(1), &tb);
  EXPECT_EQ(ta.counter("jit.compile"), 1);
  EXPECT_EQ(tb.counter("jit.compile"), 0);
  EXPECT_EQ(tb.counter("jit.cache_hit"), 1);
  EXPECT_EQ(sim::jit::JitCache::Instance().compiles(), 1u);
}

TEST(JitCacheTest, ParallelLanesShareOneCompile) {
  if (!sim::jit::ToolchainAvailable())
    GTEST_SKIP() << "no host toolchain in this environment";
  sim::jit::JitCache::Instance().ResetForTesting();
  const compiler::CompiledKernel kernel = CompileGaussian(73, 41);
  Rng rng(0x77u);
  const HostImage<float> input = RandomInput(73, 41, rng);
  const RunResult reference = RunOnce(kernel, input, sim::SimulatorOptions{});
  ASSERT_TRUE(reference.status.ok()) << reference.status.ToString();
  // Exploration-lane shape: every thread owns a Simulator and a launch but
  // shares the kernel's ProgramSet, all hitting the tier on first launch.
  constexpr int kLanes = 8;
  std::vector<RunResult> results(kLanes);
  {
    std::vector<std::thread> lanes;
    lanes.reserve(kLanes);
    for (int t = 0; t < kLanes; ++t)
      lanes.emplace_back([&, t] {
        results[static_cast<std::size_t>(t)] =
            RunOnce(kernel, input, NativeOptions(1));
      });
    for (std::thread& lane : lanes) lane.join();
  }
  for (const RunResult& r : results) ExpectSameOutput(reference, r);
  // The in-flight deduplication means the toolchain ran exactly once even
  // though all lanes requested compilation concurrently.
  EXPECT_EQ(sim::jit::JitCache::Instance().compiles(), 1u);
}

/// Points GlobalDiskStore at a scratch directory for one test (wiped so a
/// previous run's entries cannot warm the cold pass), restoring the
/// disabled hermetic default (and a clean JitCache) on exit.
struct DiskStoreGuard {
  explicit DiskStoreGuard(const std::string& root) {
    std::filesystem::remove_all(root);
    support::DiskStoreOptions options;
    options.root = root;
    support::ConfigureGlobalDiskStore(std::move(options));
  }
  ~DiskStoreGuard() {
    support::ConfigureGlobalDiskStore({});
    sim::jit::JitCache::Instance().ResetForTesting();
  }
};

TEST(JitCacheTest, WarmStartLoadsTheSharedObjectFromDisk) {
  if (!sim::jit::ToolchainAvailable())
    GTEST_SKIP() << "no host toolchain in this environment";
  DiskStoreGuard disk(::testing::TempDir() + "/jit_warm_start_cache");
  sim::jit::JitCache::Instance().ResetForTesting();

  const compiler::CompiledKernel kernel = CompileGaussian(73, 41);
  const sim::jit::JitCache::Outcome cold =
      sim::jit::JitCache::Instance().GetOrCompile(*kernel.bytecode);
  ASSERT_TRUE(cold.error.empty()) << cold.error;
  ASSERT_NE(cold.program, nullptr);
  EXPECT_TRUE(cold.compiled);
  EXPECT_TRUE(cold.disk_checked);
  EXPECT_FALSE(cold.disk_hit);
  EXPECT_TRUE(cold.disk_stored);

  // Drop the in-memory module cache — the next request models a fresh
  // process, which must dlopen the persisted .so without a toolchain run.
  sim::jit::JitCache::Instance().ResetForTesting();
  const sim::jit::JitCache::Outcome warm =
      sim::jit::JitCache::Instance().GetOrCompile(*kernel.bytecode);
  ASSERT_TRUE(warm.error.empty()) << warm.error;
  ASSERT_NE(warm.program, nullptr);
  EXPECT_FALSE(warm.compiled);
  EXPECT_TRUE(warm.disk_hit);
  EXPECT_EQ(sim::jit::JitCache::Instance().compiles(), 0u);

  // The reloaded module serves real launches with VM-identical output.
  Rng rng(0x99u);
  const HostImage<float> input = RandomInput(73, 41, rng);
  const RunResult vm = RunOnce(kernel, input, sim::SimulatorOptions{});
  const RunResult native = RunOnce(kernel, input, NativeOptions(1));
  ExpectSameOutput(vm, native);
  EXPECT_EQ(sim::jit::JitCache::Instance().compiles(), 0u);
}

}  // namespace
}  // namespace hipacc
