// Rank-1 factorization of 2D filter masks — the separability test behind
// separable-filter decomposition. Lives at the AST layer (next to MaskInfo)
// so both the compiler's `separate` rewrite and the operator library can use
// it without a dependency cycle.
#pragma once

#include <optional>
#include <vector>

namespace hipacc::ast {

/// A rank-1 (separable) factorization of a 2D mask: mask[y][x] ==
/// col[y] * row[x] for every coefficient, up to the tolerance the
/// factorizer verified. Applying `row` along x then `col` along y (or vice
/// versa) reproduces the 2D convolution.
struct Rank1Factors {
  std::vector<float> row;  ///< size_x coefficients (the x / row pass)
  std::vector<float> col;  ///< size_y coefficients (the y / column pass)
};

/// Attempts to factor a size_x x size_y row-major mask into an outer
/// product col * row^T. Pivot method: the largest-magnitude coefficient
/// anchors the factor row and column, and every coefficient is then checked
/// against the reconstruction with tolerance `rel_tol` relative to that
/// pivot. Gaussian, box and single-axis Sobel masks factor; Laplacian or a
/// combined Sobel-XY mask (a rank-2 sum) returns nullopt, as does an
/// all-zero mask. The two factors are magnitude-balanced (equal infinity
/// norms) so neither pass concentrates the dynamic range.
std::optional<Rank1Factors> FactorizeRank1(const std::vector<float>& mask,
                                           int size_x, int size_y,
                                           float rel_tol = 1e-5f);

}  // namespace hipacc::ast
