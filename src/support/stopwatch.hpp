// Wall-clock stopwatch used by the benchmark harnesses and the runtime's
// host-side timing (the simulated device reports modelled time separately).
#pragma once

#include <chrono>

namespace hipacc {

/// Monotonic stopwatch; starts on construction.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  /// Elapsed milliseconds since construction or the last Restart().
  double ElapsedMs() const {
    return std::chrono::duration<double, std::milli>(Clock::now() - start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace hipacc
