// hipacc-compile: command-line front to the source-to-source compiler.
//
//   hipacc-compile kernel.hipacc [options]
//     --backend=cuda|opencl       target language (default cuda)
//     --device="Tesla C2050"      target GPU from the device database
//     --width=N --height=N        image size (bakes region constants,
//                                 drives Algorithm 2; default 4096)
//     --tex=none|linear|array2d   texture policy (default none)
//     --smem                      stage accessor tiles through scratchpad
//     --no-const-mask             keep masks in global memory
//     --config=BXxBY              force a launch configuration (else
//                                 Algorithm 2 selects one)
//     --explore                   print the configuration exploration table
//                                 (Section V-D) instead of the source
//     --explore-jobs=N            parallel exploration workers (0 = all
//                                 cores; results identical for every N)
//     --sim-engine=bytecode|ast   simulator execution engine (default
//                                 bytecode; results are bit-identical)
//     --trace-out=FILE            write a Chrome trace_event timeline of
//                                 compile passes, cache accesses, and
//                                 simulated launches (open in
//                                 chrome://tracing or Perfetto)
//     --print-pass-timings        print per-pass compile durations to stderr
//     --dump-after=PASS           dump the pipeline state after the named
//                                 pass (parse|lower|estimate|select_config|
//                                 emit) to stderr
//     --no-cache                  compile from scratch instead of going
//                                 through the process-wide compilation cache
//     --list-devices              print the device database and exit
//
// Prints the generated kernel source to stdout; diagnostics go to stderr.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "compiler/cache.hpp"
#include "compiler/explore.hpp"
#include "compiler/kernel_file.hpp"
#include "compiler/pass.hpp"
#include "hwmodel/device_db.hpp"
#include "sim/options.hpp"
#include "sim/trace.hpp"

using namespace hipacc;

namespace {

bool ParseFlag(const char* arg, const char* name, std::string* value) {
  const size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0) return false;
  if (arg[len] == '=') {
    *value = arg + len + 1;
    return true;
  }
  if (arg[len] == '\0') {
    value->clear();
    return true;
  }
  return false;
}

int Usage() {
  std::fprintf(stderr,
               "usage: hipacc-compile <kernel.hipacc> [--backend=cuda|opencl] "
               "[--device=NAME] [--width=N] [--height=N] "
               "[--tex=none|linear|array2d] [--smem] [--no-const-mask] "
               "[--config=BXxBY] [--explore] [--explore-jobs=N] "
               "[--sim-engine=bytecode|ast] "
               "[--trace-out=FILE] [--print-pass-timings] "
               "[--dump-after=PASS] [--no-cache] [--list-devices]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string input_path;
  compiler::CompileOptions options;
  options.device = hw::TeslaC2050();
  options.image_width = 4096;
  options.image_height = 4096;
  options.cache = &compiler::GlobalCompilationCache();
  bool explore = false;
  bool print_pass_timings = false;
  std::vector<compiler::PassTiming> pass_timings;
  compiler::ExploreOptions explore_options;
  std::string trace_out;
  sim::TraceSink trace;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    std::string value;
    if (ParseFlag(arg, "--backend", &value)) {
      if (value == "cuda") options.codegen.backend = ast::Backend::kCuda;
      else if (value == "opencl") options.codegen.backend = ast::Backend::kOpenCL;
      else return Usage();
    } else if (ParseFlag(arg, "--device", &value)) {
      auto device = hw::FindDevice(value);
      if (!device.ok()) {
        std::fprintf(stderr, "error: %s\n", device.status().ToString().c_str());
        return 1;
      }
      options.device = device.value();
    } else if (ParseFlag(arg, "--width", &value)) {
      options.image_width = std::atoi(value.c_str());
    } else if (ParseFlag(arg, "--height", &value)) {
      options.image_height = std::atoi(value.c_str());
    } else if (ParseFlag(arg, "--tex", &value)) {
      if (value == "none") options.codegen.texture = codegen::TexturePolicy::kNone;
      else if (value == "linear") options.codegen.texture = codegen::TexturePolicy::kLinear;
      else if (value == "array2d") options.codegen.texture = codegen::TexturePolicy::kArray2D;
      else return Usage();
    } else if (ParseFlag(arg, "--smem", &value)) {
      options.codegen.use_scratchpad = true;
    } else if (ParseFlag(arg, "--no-const-mask", &value)) {
      options.codegen.masks_in_constant_memory = false;
    } else if (ParseFlag(arg, "--config", &value)) {
      int bx = 0, by = 0;
      if (std::sscanf(value.c_str(), "%dx%d", &bx, &by) != 2 || bx <= 0 ||
          by <= 0)
        return Usage();
      options.forced_config = hw::KernelConfig{bx, by};
    } else if (ParseFlag(arg, "--sim-engine", &value)) {
      auto engine = sim::ParseExecEngine(value);
      if (!engine.ok()) {
        std::fprintf(stderr, "error: %s\n",
                     engine.status().ToString().c_str());
        return 2;
      }
      sim::DefaultSimulatorOptions().engine = engine.value();
    } else if (ParseFlag(arg, "--explore-jobs", &value)) {
      explore_options.jobs = std::atoi(value.c_str());
    } else if (ParseFlag(arg, "--trace-out", &value)) {
      if (value.empty()) return Usage();
      trace_out = value;
      options.trace = &trace;
      explore_options.trace = &trace;
    } else if (ParseFlag(arg, "--explore", &value)) {
      explore = true;
    } else if (ParseFlag(arg, "--print-pass-timings", &value)) {
      print_pass_timings = true;
      options.pass_timings = &pass_timings;
    } else if (ParseFlag(arg, "--dump-after", &value)) {
      bool known = false;
      for (const std::string& name : compiler::DefaultPassNames())
        known = known || name == value;
      if (!known) {
        std::fprintf(stderr, "error: unknown pass '%s' (expected one of:",
                     value.c_str());
        for (const std::string& name : compiler::DefaultPassNames())
          std::fprintf(stderr, " %s", name.c_str());
        std::fprintf(stderr, ")\n");
        return 2;
      }
      options.dump_after = value;
    } else if (ParseFlag(arg, "--no-cache", &value)) {
      options.cache = nullptr;
    } else if (ParseFlag(arg, "--list-devices", &value)) {
      std::printf("%-20s %-6s %5s %10s %8s %11s %8s\n", "device", "vendor",
                  "simd", "regs/SM", "(gran)", "smem/SM", "(gran)");
      for (const auto& device : hw::DeviceDatabase())
        std::printf("%-20s %-6s %5d %10d %8d %9d B %8d\n",
                    device.name.c_str(), to_string(device.vendor),
                    device.simd_width, device.regs_per_sm,
                    device.reg_alloc_granularity, device.smem_per_sm,
                    device.smem_alloc_granularity);
      return 0;
    } else if (arg[0] == '-') {
      return Usage();
    } else {
      input_path = arg;
    }
  }
  if (input_path.empty()) return Usage();

  auto source = compiler::LoadKernelFile(input_path);
  if (!source.ok()) {
    std::fprintf(stderr, "error: %s\n", source.status().ToString().c_str());
    return 1;
  }
  auto compiled = compiler::Compile(source.value(), options);
  if (!compiled.ok()) {
    std::fprintf(stderr, "error: %s\n", compiled.status().ToString().c_str());
    return 1;
  }
  const compiler::CompiledKernel& kernel = compiled.value();

  std::fprintf(stderr,
               "hipacc-compile: kernel '%s' for %s (%s): config %dx%d, "
               "%d regs/thread, occupancy %.0f%%, border threads %lld\n",
               kernel.decl.name.c_str(), options.device.name.c_str(),
               to_string(options.codegen.backend),
               kernel.config.config.block_x, kernel.config.config.block_y,
               kernel.resources.regs_per_thread,
               100.0 * kernel.config.occupancy.occupancy,
               kernel.config.border_threads);

  if (print_pass_timings) {
    std::fprintf(stderr, "hipacc-compile: pass timings:\n");
    for (const compiler::PassTiming& t : pass_timings)
      std::fprintf(stderr, "  %-14s %8.3f ms\n", t.pass.c_str(), t.ms);
    if (options.cache != nullptr) {
      const compiler::CompilationCache::Stats stats = options.cache->stats();
      std::fprintf(stderr,
                   "hipacc-compile: cache: %lld hits, %lld misses "
                   "(frontend %lld/%lld, target %lld/%lld)\n",
                   stats.hits(), stats.misses(), stats.frontend_hits,
                   stats.frontend_misses, stats.target_hits,
                   stats.target_misses);
    }
  }

  if (explore) {
    dsl::Image<float> in(options.image_width, options.image_height);
    dsl::Image<float> out(options.image_width, options.image_height);
    runtime::BindingSet bindings;
    bindings.Input(kernel.decl.accessors.front().name, in).Output(out);
    for (const auto& p : kernel.decl.params) bindings.Scalar(p.name, 1.0);
    auto points = compiler::ExploreConfigurations(kernel, options.device,
                                                  bindings, explore_options);
    if (!points.ok()) {
      std::fprintf(stderr, "error: %s\n", points.status().ToString().c_str());
      return 1;
    }
    std::printf("%8s %6s %6s %9s %10s\n", "threads", "blk_x", "blk_y",
                "occupancy", "time_ms");
    for (const auto& p : points.value())
      std::printf("%8d %6d %6d %8.0f%% %10.3f\n", p.config.threads(),
                  p.config.block_x, p.config.block_y, 100.0 * p.occupancy,
                  p.ms);
  } else {
    std::fputs(kernel.source.c_str(), stdout);
  }

  if (!trace_out.empty()) {
    const Status written = trace.WriteChromeTrace(trace_out);
    if (!written.ok()) {
      std::fprintf(stderr, "error: %s\n", written.ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "hipacc-compile: wrote trace to %s (%zu events)\n",
                 trace_out.c_str(), trace.event_count());
  }
  return 0;
}
