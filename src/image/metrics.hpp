// Image-comparison metrics used by tests (exact and tolerance-based equality
// of DSL vs reference results) and examples (denoising quality reporting).
#pragma once

#include "image/host_image.hpp"

namespace hipacc {

/// Largest absolute per-pixel difference; images must have equal shapes.
double MaxAbsDiff(const HostImage<float>& a, const HostImage<float>& b);

/// Mean squared error.
double MeanSquaredError(const HostImage<float>& a, const HostImage<float>& b);

/// Peak signal-to-noise ratio in dB for a given peak value (default 1.0).
/// Returns +inf (HUGE_VAL) for identical images.
double Psnr(const HostImage<float>& a, const HostImage<float>& b,
            double peak = 1.0);

/// True if every pixel pair differs by at most `tol`.
bool AllClose(const HostImage<float>& a, const HostImage<float>& b,
              double tol);

}  // namespace hipacc
