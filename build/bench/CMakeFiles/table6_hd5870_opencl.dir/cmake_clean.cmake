file(REMOVE_RECURSE
  "CMakeFiles/table6_hd5870_opencl.dir/table6_hd5870_opencl.cpp.o"
  "CMakeFiles/table6_hd5870_opencl.dir/table6_hd5870_opencl.cpp.o.d"
  "table6_hd5870_opencl"
  "table6_hd5870_opencl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table6_hd5870_opencl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
