# Empty dependencies file for fig4_config_exploration.
# This may be replaced when dependencies are built.
