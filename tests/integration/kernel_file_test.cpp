// The .hipacc kernel description format and the CLI driver's parsing layer.
#include "compiler/kernel_file.hpp"

#include <gtest/gtest.h>

#include "ast/visitor.hpp"
#include "codegen/lower.hpp"

namespace hipacc::compiler {
namespace {

constexpr const char kBilateralFile[] = R"(# comment line
kernel bilateral
param int sigma_d
param int sigma_r
accessor Input 13 13 clamp
body
float d = 0.0f;
float p = 0.0f;
for (int yf = -2 * sigma_d; yf <= 2 * sigma_d; yf++) {
  for (int xf = -2 * sigma_d; xf <= 2 * sigma_d; xf++) {
    p += Input(xf, yf);
    d += 1.0f;
  }
}
output() = p / d;
)";

TEST(KernelFileTest, ParsesDirectivesAndBody) {
  auto src = ParseKernelFile(kBilateralFile);
  ASSERT_TRUE(src.ok()) << src.status().ToString();
  EXPECT_EQ(src.value().name, "bilateral");
  ASSERT_EQ(src.value().params.size(), 2u);
  EXPECT_EQ(src.value().params[0].name, "sigma_d");
  EXPECT_EQ(src.value().params[0].type, ast::ScalarType::kInt);
  ASSERT_EQ(src.value().accessors.size(), 1u);
  EXPECT_EQ(src.value().accessors[0].window.half_x, 6);
  EXPECT_EQ(src.value().accessors[0].boundary, ast::BoundaryMode::kClamp);
  // The body survives verbatim and parses through the full frontend.
  auto kernel = frontend::ParseKernel(src.value());
  EXPECT_TRUE(kernel.ok()) << kernel.status().ToString();
}

TEST(KernelFileTest, StaticMaskValues) {
  auto src = ParseKernelFile(
      "kernel conv\n"
      "accessor Input 3 3 mirror\n"
      "mask M 3 3\n"
      "values 0 1 0 1 -4 1 0 1 0\n"
      "body\n"
      "output() = convolve(M, SUM, M() * Input(M));\n");
  ASSERT_TRUE(src.ok()) << src.status().ToString();
  ASSERT_EQ(src.value().masks.size(), 1u);
  EXPECT_TRUE(src.value().masks[0].is_static());
  EXPECT_FLOAT_EQ(src.value().masks[0].static_values[4], -4.0f);
}

TEST(KernelFileTest, ConstantModeRequiresValue) {
  EXPECT_FALSE(ParseKernelFile("kernel k\naccessor A 3 3 constant\nbody\n"
                               "output() = A();\n").ok());
  auto with_value = ParseKernelFile(
      "kernel k\naccessor A 3 3 constant 0.5\nbody\noutput() = A();\n");
  ASSERT_TRUE(with_value.ok());
  EXPECT_FLOAT_EQ(with_value.value().accessors[0].constant_value, 0.5f);
}

TEST(KernelFileTest, ErrorCases) {
  // No kernel name.
  EXPECT_FALSE(ParseKernelFile("body\noutput() = 1.0f;\n").ok());
  // No body.
  EXPECT_FALSE(ParseKernelFile("kernel k\n").ok());
  // Even window size.
  EXPECT_FALSE(ParseKernelFile("kernel k\naccessor A 4 3 clamp\nbody\n"
                               "output() = A();\n").ok());
  // Unknown mode / type / directive.
  EXPECT_FALSE(ParseKernelFile("kernel k\naccessor A 3 3 wrap\nbody\n").ok());
  EXPECT_FALSE(ParseKernelFile("kernel k\nparam double x\nbody\n").ok());
  EXPECT_FALSE(ParseKernelFile("kernel k\nfrobnicate\nbody\n").ok());
  // values without mask / wrong count.
  EXPECT_FALSE(ParseKernelFile("kernel k\nvalues 1 2 3\nbody\n").ok());
  EXPECT_FALSE(ParseKernelFile("kernel k\nmask M 3 3\nvalues 1 2\nbody\n"
                               "output() = 1.0f;\n").ok());
}

TEST(KernelFileTest, MissingFileReported) {
  EXPECT_FALSE(LoadKernelFile("/nonexistent/path.hipacc").ok());
}

TEST(KernelFileTest, UnrolledConvolveDropsUnusedMask) {
  auto src = ParseKernelFile(
      "kernel conv\n"
      "accessor Input 3 3 mirror\n"
      "mask M 3 3\n"
      "values 0 1 0 1 -4 1 0 1 0\n"
      "body\n"
      "output() = convolve(M, SUM, M() * Input(M));\n");
  ASSERT_TRUE(src.ok());
  auto kernel = frontend::ParseKernel(src.value());
  ASSERT_TRUE(kernel.ok());
  auto lowered = codegen::LowerKernel(kernel.value(), {});
  ASSERT_TRUE(lowered.ok());
  // All coefficients were propagated: no constant-memory mask remains.
  EXPECT_TRUE(lowered.value().const_masks.empty());
}

}  // namespace
}  // namespace hipacc::compiler
