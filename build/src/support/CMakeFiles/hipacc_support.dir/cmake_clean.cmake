file(REMOVE_RECURSE
  "CMakeFiles/hipacc_support.dir/log.cpp.o"
  "CMakeFiles/hipacc_support.dir/log.cpp.o.d"
  "CMakeFiles/hipacc_support.dir/rng.cpp.o"
  "CMakeFiles/hipacc_support.dir/rng.cpp.o.d"
  "CMakeFiles/hipacc_support.dir/status.cpp.o"
  "CMakeFiles/hipacc_support.dir/status.cpp.o.d"
  "CMakeFiles/hipacc_support.dir/string_utils.cpp.o"
  "CMakeFiles/hipacc_support.dir/string_utils.cpp.o.d"
  "libhipacc_support.a"
  "libhipacc_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hipacc_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
