// The function-mapping table (paper Section V-A): CUDA keeps type suffixes,
// OpenCL overloads unsuffixed names; unsupported functions are rejected.
#include "ast/builtins.hpp"

#include <gtest/gtest.h>

namespace hipacc::ast {
namespace {

TEST(BuiltinsTest, CanonicalLookup) {
  const auto fn = FindBuiltin("exp");
  ASSERT_TRUE(fn.has_value());
  EXPECT_EQ(fn->cuda_name, "expf");
  EXPECT_EQ(fn->opencl_name, "exp");
  EXPECT_EQ(fn->cuda_intrinsic, "__expf");
  EXPECT_EQ(fn->arity, 1);
  EXPECT_EQ(fn->cost, OpCost::kSfu);
}

TEST(BuiltinsTest, SuffixedSpellingResolvesToSameEntry) {
  const auto by_cuda = FindBuiltin("expf");
  ASSERT_TRUE(by_cuda.has_value());
  EXPECT_EQ(by_cuda->name, "exp");
}

TEST(BuiltinsTest, TwoArgumentFunctions) {
  const auto fn = FindBuiltin("fminf");
  ASSERT_TRUE(fn.has_value());
  EXPECT_EQ(fn->arity, 2);
  EXPECT_EQ(fn->cost, OpCost::kAlu);
  const auto pow_fn = FindBuiltin("pow");
  ASSERT_TRUE(pow_fn.has_value());
  EXPECT_EQ(pow_fn->cost, OpCost::kMulti);
}

TEST(BuiltinsTest, IntegerFunctions) {
  const auto fn = FindBuiltin("min");
  ASSERT_TRUE(fn.has_value());
  EXPECT_EQ(fn->result, ScalarType::kInt);
}

TEST(BuiltinsTest, UnsupportedFunctionReturnsNullopt) {
  EXPECT_FALSE(FindBuiltin("erfinv").has_value());
  EXPECT_FALSE(FindBuiltin("").has_value());
  EXPECT_FALSE(FindBuiltin("printf").has_value());
}

TEST(BuiltinsTest, CostClassesCoverAllTrigAndRoots) {
  for (const char* name : {"sqrt", "rsqrt", "log", "sin", "cos"}) {
    const auto fn = FindBuiltin(name);
    ASSERT_TRUE(fn.has_value()) << name;
    EXPECT_EQ(fn->cost, OpCost::kSfu) << name;
  }
  for (const char* name : {"fabs", "floor", "ceil", "round"}) {
    const auto fn = FindBuiltin(name);
    ASSERT_TRUE(fn.has_value()) << name;
    EXPECT_EQ(fn->cost, OpCost::kAlu) << name;
  }
}

}  // namespace
}  // namespace hipacc::ast
