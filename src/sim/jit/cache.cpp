#include "sim/jit/cache.hpp"

#include "sim/bytecode.hpp"
#include "sim/jit/emit.hpp"
#include "sim/trace.hpp"
#include "support/hash.hpp"
#include "support/log.hpp"

namespace hipacc::sim::jit {

JitCache& JitCache::Instance() {
  static JitCache* cache = new JitCache();  // immortal: lanes may outlive main
  return *cache;
}

void JitCache::ResetForTesting() {
  const std::lock_guard<std::mutex> lock(mu_);
  map_.clear();
  compiles_.store(0);
}

JitCache::Outcome JitCache::GetOrCompile(const ProgramSet& ps) {
  Outcome out;
  EmittedSource emitted = EmitNativeSource(ps);

  support::Fnv1a key;
  key.Mix(emitted.source);
  key.Mix(kJitAbiVersion);
  key.Mix(ToolchainIdentity());
  const std::uint64_t digest = key.digest();

  std::shared_ptr<Entry> entry;
  bool owner = false;
  {
    std::unique_lock<std::mutex> lock(mu_);
    auto& bucket = map_[digest];
    for (const auto& e : bucket)
      if (e->source == emitted.source) entry = e;
    if (!entry) {
      entry = std::make_shared<Entry>();
      entry->source = emitted.source;
      bucket.push_back(entry);
      owner = true;
    } else {
      // In-flight deduplication: wait for the compiling thread.
      cv_.wait(lock, [&] { return entry->done; });
      out.program = entry->program;
      out.error = entry->error;
      return out;
    }
  }

  // Owner path: compile outside the lock (toolchain runs take ~0.5 s).
  out.compiled = true;
  Result<std::shared_ptr<NativeModule>> module =
      CompileSharedObject(emitted.source, "hipacc_" + support::Fnv1a().Mix(digest).hex());
  // Count actual toolchain invocations; a missing toolchain (Unimplemented)
  // never ran anything.
  if (module.ok() ||
      module.status().code() != StatusCode::kUnimplemented)
    compiles_.fetch_add(1);
  std::shared_ptr<const NativeProgram> program;
  std::string error;
  if (module.ok()) {
    auto native = std::make_shared<NativeProgram>();
    native->module = module.value();
    for (const auto& si : emitted.symbols) {
      NativeProgram::Entry e;
      e.region = si.region;
      e.fused = si.fused;
      e.fn = reinterpret_cast<JitWarpFn>(
          native->module->Sym(si.symbol.c_str()));
      if (!e.fn) {
        error = "missing jit symbol " + si.symbol;
        break;
      }
      native->fns.push_back(e);
    }
    if (error.empty()) program = std::move(native);
  } else {
    error = module.status().ToString();
  }

  {
    const std::lock_guard<std::mutex> lock(mu_);
    entry->done = true;
    entry->failed = !error.empty();
    entry->error = error;
    entry->program = program;
  }
  cv_.notify_all();
  out.program = std::move(program);
  out.error = std::move(error);
  return out;
}

const NativeProgram* AcquireNative(const ProgramSet& ps, int threshold,
                                   TraceSink* trace) {
  TierState* ts = ps.jit_state.get();
  if (!ts) return nullptr;

  // Lock-free hot path once tiered up.
  if (const NativeProgram* fast = ts->fast.load(std::memory_order_acquire)) {
    if (trace) trace->IncrementCounter("jit.hit");
    return fast;
  }
  if (ts->phase.load(std::memory_order_relaxed) == 2) {
    if (trace) trace->IncrementCounter("jit.threaded");
    return nullptr;
  }

  const std::uint64_t launch =
      ts->launches.fetch_add(1, std::memory_order_relaxed) + 1;
  if (launch < static_cast<std::uint64_t>(threshold > 0 ? threshold : 1)) {
    if (trace) trace->IncrementCounter("jit.threaded");
    return nullptr;
  }

  const std::lock_guard<std::mutex> lock(ts->mu);
  if (const NativeProgram* fast = ts->fast.load(std::memory_order_acquire)) {
    if (trace) trace->IncrementCounter("jit.hit");
    return fast;
  }
  if (ts->phase.load(std::memory_order_relaxed) == 2) {
    if (trace) trace->IncrementCounter("jit.threaded");
    return nullptr;
  }

  JitCache::Outcome outcome = JitCache::Instance().GetOrCompile(ps);
  if (!outcome.program) {
    ts->phase.store(2, std::memory_order_release);
    if (trace) {
      trace->IncrementCounter("jit.error");
      trace->IncrementCounter("jit.threaded");
    }
    LogWarn("native tier unavailable for " + ps.kernel_name + ": " +
            outcome.error + " — staying on the threaded VM");
    return nullptr;
  }
  ts->program = outcome.program;
  ts->phase.store(1, std::memory_order_release);
  ts->fast.store(ts->program.get(), std::memory_order_release);
  if (trace) {
    trace->IncrementCounter(outcome.compiled ? "jit.compile"
                                             : "jit.cache_hit");
    trace->IncrementCounter("jit.hit");
  }
  return ts->program.get();
}

}  // namespace hipacc::sim::jit
