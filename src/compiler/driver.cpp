#include "compiler/driver.hpp"

#include "compiler/cache.hpp"
#include "compiler/pass.hpp"
#include "sim/trace.hpp"
#include "support/log.hpp"
#include "support/string_utils.hpp"

namespace hipacc::compiler {
namespace {

/// The verbose line HIPAcc prints per compiled kernel (kept stable across
/// the pass-manager refactor; benches and users grep for it).
void LogCompiled(const CompiledKernel& kernel, const CompileOptions& options) {
  LogInfo(StrFormat("compiled kernel '%s' for %s/%s: config %dx%d, "
                    "%d regs/thread, occupancy %.0f%%",
                    kernel.decl.name.c_str(), options.device.name.c_str(),
                    to_string(options.codegen.backend),
                    kernel.config.config.block_x, kernel.config.config.block_y,
                    kernel.resources.regs_per_thread,
                    100.0 * kernel.config.occupancy.occupancy));
}

FrontendArtifacts FrontendFromArtifact(const CompiledKernel& kernel) {
  FrontendArtifacts fe;
  fe.decl = kernel.decl;
  fe.device_ir = kernel.device_ir;
  fe.resources = kernel.resources;
  fe.codegen = kernel.codegen;
  fe.source_fingerprint = kernel.source_fingerprint;
  fe.source_hash = kernel.source_hash;
  return fe;
}

void SeedFromFrontend(CompilationContext& ctx, FrontendArtifacts fe) {
  ctx.artifact.decl = std::move(fe.decl);
  ctx.artifact.device_ir = std::move(fe.device_ir);
  ctx.artifact.resources = fe.resources;
  ctx.artifact.codegen = fe.codegen;
  ctx.artifact.source_fingerprint = std::move(fe.source_fingerprint);
  ctx.artifact.source_hash = fe.source_hash;
}

/// Runs `pipeline`, and on success stores the results into the cache (when
/// enabled) and emits the per-kernel log line.
Result<CompiledKernel> RunAndFinish(PassManager pipeline,
                                    CompilationContext& ctx,
                                    const CacheKey* frontend_key,
                                    const CacheKey* target_key) {
  if (!ctx.options.dump_after.empty())
    pipeline.set_dump_hook(ctx.options.dump_after, DumpAfterPass);
  const Status status = pipeline.Run(ctx);
  if (ctx.options.pass_timings != nullptr)
    ctx.options.pass_timings->insert(ctx.options.pass_timings->end(),
                                     ctx.timings.begin(), ctx.timings.end());
  if (!status.ok()) return status;
  CompilationCache* cache = ctx.options.cache;
  if (cache != nullptr) {
    if (frontend_key != nullptr)
      cache->StoreFrontend(*frontend_key, FrontendFromArtifact(ctx.artifact),
                           ctx.options.trace);
    if (target_key != nullptr)
      cache->StoreTarget(*target_key, ctx.artifact, ctx.options.trace);
  }
  LogCompiled(ctx.artifact, ctx.options);
  return std::move(ctx.artifact);
}

}  // namespace

Result<CompiledKernel> Compile(const frontend::KernelSource& source,
                               const CompileOptions& options) {
  CompilationContext ctx;
  ctx.source = &source;
  ctx.options = options;
  // Cache keys (and provenance) are computed from the source the pipeline
  // will actually compile: with fusion requested, that is the fused source.
  // Pre-seeding ctx.fused_source lets the fuse pass reuse the result.
  if (!options.fusion.empty()) {
    Result<frontend::KernelSource> fused =
        ApplyFusion(source, options.fusion);
    if (!fused.ok()) return fused.status();
    ctx.fused_source = std::move(fused).take();
  }
  const frontend::KernelSource& keyed =
      ctx.fused_source ? *ctx.fused_source : source;
  ctx.artifact.source_fingerprint = SourceFingerprint(keyed);
  ctx.artifact.source_hash = SourceHash(ctx.artifact.source_fingerprint);

  CompilationCache* cache = options.cache;
  if (cache == nullptr)
    return RunAndFinish(BuildCompilePipeline(), ctx, nullptr, nullptr);

  const CacheKey frontend_key = MakeFrontendKeyFromFingerprint(
      ctx.artifact.source_fingerprint, options.codegen);
  // Profile-influenced artifacts carry the decision in the key: a measured
  // winner and the heuristic may pick different configurations from the
  // same source, and the cache must never hand one out for the other.
  const std::string profile_salt = ProfileSalt(DecideForCompile(
      options.profiles, options.profile_policy,
      ctx.artifact.source_fingerprint, options.codegen, options.device,
      options.image_width, options.image_height,
      options.forced_config.has_value()));
  const CacheKey target_key =
      MakeTargetKey(frontend_key, options.device, options.image_width,
                    options.image_height, options.forced_config, profile_salt);
  if (std::optional<CompiledKernel> hit =
          cache->LookupTarget(target_key, options.trace)) {
    LogCompiled(*hit, options);
    return std::move(*hit);
  }
  if (std::optional<FrontendArtifacts> fe =
          cache->LookupFrontend(frontend_key, options.trace)) {
    SeedFromFrontend(ctx, std::move(*fe));
    return RunAndFinish(BuildTargetPipeline(), ctx, nullptr, &target_key);
  }
  return RunAndFinish(BuildCompilePipeline(), ctx, &frontend_key, &target_key);
}

Result<CompiledKernel> Retarget(const CompiledKernel& kernel,
                                const CompileOptions& options) {
  CompilationContext ctx;
  ctx.options = options;
  ctx.artifact.decl = kernel.decl;
  ctx.artifact.source_fingerprint = kernel.source_fingerprint;
  ctx.artifact.source_hash = kernel.source_hash;

  // The lowered IR is target-independent given fixed codegen options: reuse
  // it (and the resource estimate) when the provenance matches, so Retarget
  // only re-runs configuration selection and emission.
  const bool reuse_ir =
      options.codegen == kernel.codegen &&
      kernel.device_ir.backend == options.codegen.backend &&
      !kernel.device_ir.variants.empty();

  CompilationCache* cache = options.cache;
  if (cache != nullptr && !kernel.source_fingerprint.empty()) {
    const CacheKey frontend_key = MakeFrontendKeyFromFingerprint(
        kernel.source_fingerprint, options.codegen);
    const std::string profile_salt = ProfileSalt(DecideForCompile(
        options.profiles, options.profile_policy, kernel.source_fingerprint,
        options.codegen, options.device, options.image_width,
        options.image_height, options.forced_config.has_value()));
    const CacheKey target_key =
        MakeTargetKey(frontend_key, options.device, options.image_width,
                      options.image_height, options.forced_config,
                      profile_salt);
    if (std::optional<CompiledKernel> hit =
            cache->LookupTarget(target_key, options.trace)) {
      LogCompiled(*hit, options);
      return std::move(*hit);
    }
    if (reuse_ir) {
      SeedFromFrontend(ctx, FrontendFromArtifact(kernel));
      ctx.artifact.bytecode = kernel.bytecode;  // same IR, same programs
      return RunAndFinish(BuildTargetPipeline(), ctx, nullptr, &target_key);
    }
    if (std::optional<FrontendArtifacts> fe =
            cache->LookupFrontend(frontend_key, options.trace)) {
      SeedFromFrontend(ctx, std::move(*fe));
      return RunAndFinish(BuildTargetPipeline(), ctx, nullptr, &target_key);
    }
    return RunAndFinish(BuildDevicePipeline(), ctx, &frontend_key,
                        &target_key);
  }

  if (reuse_ir) {
    SeedFromFrontend(ctx, FrontendFromArtifact(kernel));
    ctx.artifact.bytecode = kernel.bytecode;  // same IR, same programs
    return RunAndFinish(BuildTargetPipeline(), ctx, nullptr, nullptr);
  }
  return RunAndFinish(BuildDevicePipeline(), ctx, nullptr, nullptr);
}

}  // namespace hipacc::compiler
