// Reproduces Table III: bilateral filter on the Tesla C2050, OpenCL backend.
#include <cstdio>

#include "common/bilateral_table.hpp"
#include "common/table.hpp"
#include "hwmodel/device_db.hpp"

int main(int argc, char** argv) {
  hipacc::support::CliParser cli =
      hipacc::bench::MakeBenchCli("table3_tesla_opencl", "Table III: bilateral filter, Tesla C2050, OpenCL backend");
  if (const int code = cli.HandleArgs(argc, argv); code >= 0) return code;
  hipacc::bench::BilateralTableOptions options;
  options.device = hipacc::hw::TeslaC2050();
  options.json_out = "BENCH_table3.json";
  options.backend = hipacc::ast::Backend::kOpenCL;
  std::printf("%s\n", hipacc::bench::RunBilateralTable(
                          "Table III: Tesla C2050, OpenCL backend", options)
                          .c_str());
  return 0;
}
