#include "ast/printer.hpp"

#include "support/status.hpp"
#include "support/string_utils.hpp"

namespace hipacc::ast {
namespace {

std::string PrintArgs(const Expr& e, size_t begin = 0) {
  std::vector<std::string> parts;
  for (size_t i = begin; i < e.args.size(); ++i)
    parts.push_back(PrintExpr(e.args[i]));
  return Join(parts, ", ");
}

}  // namespace

std::string PrintExpr(const ExprPtr& expr) {
  if (!expr) return "<null>";
  const Expr& e = *expr;
  switch (e.kind) {
    case ExprKind::kIntLit:
      return StrFormat("%lld", e.int_value);
    case ExprKind::kFloatLit: {
      std::string s = StrFormat("%.9g", e.float_value);
      if (s.find('.') == std::string::npos &&
          s.find('e') == std::string::npos &&
          s.find("inf") == std::string::npos &&
          s.find("nan") == std::string::npos)
        s += ".0";
      return s + "f";
    }
    case ExprKind::kBoolLit:
      return e.bool_value ? "true" : "false";
    case ExprKind::kVarRef:
      return e.name;
    case ExprKind::kUnary:
      return StrFormat("%s(%s)", to_string(e.unary_op),
                       PrintExpr(e.args[0]).c_str());
    case ExprKind::kBinary:
      return StrFormat("(%s %s %s)", PrintExpr(e.args[0]).c_str(),
                       to_string(e.binary_op), PrintExpr(e.args[1]).c_str());
    case ExprKind::kConditional:
      return StrFormat("(%s ? %s : %s)", PrintExpr(e.args[0]).c_str(),
                       PrintExpr(e.args[1]).c_str(),
                       PrintExpr(e.args[2]).c_str());
    case ExprKind::kCall:
      return StrFormat("%s(%s)", e.name.c_str(), PrintArgs(e).c_str());
    case ExprKind::kCast:
      return StrFormat("(%s)(%s)", to_string(e.type),
                       PrintExpr(e.args[0]).c_str());
    case ExprKind::kAccessorRead:
      return StrFormat("%s(%s)", e.name.c_str(), PrintArgs(e).c_str());
    case ExprKind::kMaskRead:
      return StrFormat("%s(%s)", e.name.c_str(), PrintArgs(e).c_str());
    case ExprKind::kIterIndex:
      return e.is_y ? "y()" : "x()";
    case ExprKind::kThreadIndex:
      return to_string(e.thread_index);
    case ExprKind::kMemRead: {
      std::string guards;
      if (e.checks.lo_x) guards += "lx";
      if (e.checks.hi_x) guards += "hx";
      if (e.checks.lo_y) guards += "ly";
      if (e.checks.hi_y) guards += "hy";
      return StrFormat("__%s_read<%s%s%s>(%s, %s, %s)", to_string(e.space),
                       to_string(e.boundary), guards.empty() ? "" : ",",
                       guards.c_str(), e.name.c_str(),
                       PrintExpr(e.args[0]).c_str(),
                       PrintExpr(e.args[1]).c_str());
    }
  }
  return "<?>";
}

std::string PrintStmt(const StmtPtr& stmt, int indent) {
  if (!stmt) return "";
  const std::string pad(static_cast<size_t>(indent) * 2, ' ');
  const Stmt& s = *stmt;
  switch (s.kind) {
    case StmtKind::kDecl:
      if (s.value)
        return StrFormat("%s%s %s = %s;\n", pad.c_str(),
                         to_string(s.decl_type), s.name.c_str(),
                         PrintExpr(s.value).c_str());
      return StrFormat("%s%s %s;\n", pad.c_str(), to_string(s.decl_type),
                       s.name.c_str());
    case StmtKind::kAssign:
      return StrFormat("%s%s %s %s;\n", pad.c_str(), s.name.c_str(),
                       to_string(s.assign_op), PrintExpr(s.value).c_str());
    case StmtKind::kOutputAssign:
      return StrFormat("%soutput() = %s;\n", pad.c_str(),
                       PrintExpr(s.value).c_str());
    case StmtKind::kIf: {
      std::string out = StrFormat("%sif (%s) {\n", pad.c_str(),
                                  PrintExpr(s.cond).c_str());
      out += PrintStmt(s.body[0], indent + 1);
      if (s.body.size() > 1) {
        out += pad + "} else {\n";
        out += PrintStmt(s.body[1], indent + 1);
      }
      out += pad + "}\n";
      return out;
    }
    case StmtKind::kFor: {
      std::string out = StrFormat(
          "%sfor (int %s = %s; %s <= %s; %s += %d) {\n", pad.c_str(),
          s.name.c_str(), PrintExpr(s.lo).c_str(), s.name.c_str(),
          PrintExpr(s.hi).c_str(), s.name.c_str(), s.step);
      out += PrintStmt(s.body[0], indent + 1);
      out += pad + "}\n";
      return out;
    }
    case StmtKind::kBlock: {
      std::string out;
      for (const auto& child : s.body) out += PrintStmt(child, indent);
      return out;
    }
    case StmtKind::kBarrier:
      return pad + "__barrier();\n";
    case StmtKind::kMemWrite:
      return StrFormat("%s__%s_write(%s, %s, %s) = %s;\n", pad.c_str(),
                       to_string(s.space), s.name.c_str(),
                       PrintExpr(s.x).c_str(), PrintExpr(s.y).c_str(),
                       PrintExpr(s.value).c_str());
  }
  return "";
}

std::string PrintKernel(const KernelDecl& kernel) {
  std::string out = "kernel " + kernel.name + " {\n";
  for (const auto& p : kernel.params)
    out += StrFormat("  param %s %s;\n", to_string(p.type), p.name.c_str());
  for (const auto& a : kernel.accessors)
    out += StrFormat("  accessor %s window=%dx%d boundary=%s;\n",
                     a.name.c_str(), a.window.size_x(), a.window.size_y(),
                     to_string(a.boundary));
  for (const auto& m : kernel.masks)
    out += StrFormat("  mask %s %dx%d %s;\n", m.name.c_str(), m.size_x,
                     m.size_y, m.is_static() ? "static" : "dynamic");
  out += "  body {\n";
  out += PrintStmt(kernel.body, 2);
  out += "  }\n}\n";
  return out;
}

std::string PrintDeviceKernel(const DeviceKernel& kernel) {
  std::string out = StrFormat("device_kernel %s backend=%s {\n",
                              kernel.name.c_str(), to_string(kernel.backend));
  for (const auto& b : kernel.buffers)
    out += StrFormat("  buffer %s space=%s%s;\n", b.name.c_str(),
                     to_string(b.space), b.is_output ? " output" : "");
  for (const auto& m : kernel.const_masks)
    out += StrFormat("  const_mask %s %dx%d %s;\n", m.name.c_str(), m.size_x,
                     m.size_y, m.is_static() ? "static" : "dynamic");
  if (kernel.smem)
    out += StrFormat("  smem %s stages %s halo=%dx%d;\n",
                     kernel.smem->smem_name.c_str(),
                     kernel.smem->accessor.c_str(), kernel.smem->window.half_x,
                     kernel.smem->window.half_y);
  for (const auto& variant : kernel.variants) {
    out += StrFormat("  region %s {\n", to_string(variant.region));
    out += PrintStmt(variant.body, 2);
    out += "  }\n";
  }
  out += "}\n";
  return out;
}

}  // namespace hipacc::ast
