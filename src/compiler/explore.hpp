// Configuration exploration (paper Section V-D / Figure 4): times every
// valid configuration of a compiled kernel on the simulated device. The
// paper JIT-compiles each configuration with substituted macros; here each
// configuration re-launches the interpreter with different region constants.
#pragma once

#include <vector>

#include "compiler/executable.hpp"

namespace hipacc::compiler {

struct ExplorePoint {
  hw::KernelConfig config;
  double occupancy = 0.0;
  long long border_threads = 0;
  double ms = 0.0;
};

/// Measures every valid configuration. Points are returned sorted by thread
/// count then block_x (the layout of Figure 4's x axis).
Result<std::vector<ExplorePoint>> ExploreConfigurations(
    const CompiledKernel& kernel, const hw::DeviceSpec& device,
    const runtime::BindingSet& bindings);

}  // namespace hipacc::compiler
