#include "baselines/manual.hpp"

#include "ops/kernel_sources.hpp"

namespace hipacc::baselines {

Result<compiler::CompiledKernel> CompileManualBilateral(
    int sigma_d, ast::BoundaryMode mode, const ManualVariant& variant,
    ast::Backend backend, const hw::DeviceSpec& device, int width, int height,
    hw::KernelConfig config) {
  frontend::KernelSource source =
      variant.use_mask_kernel
          ? ops::BilateralMaskSource(sigma_d, mode, /*static_mask=*/true)
          : ops::BilateralSource(sigma_d, mode);
  source.name = "manual_" + source.name;

  compiler::CompileOptions options;
  options.codegen.backend = backend;
  options.codegen.texture = variant.texture;
  options.codegen.border = variant.border;
  options.codegen.masks_in_constant_memory = variant.use_mask_kernel;
  options.device = device;
  options.image_width = width;
  options.image_height = height;
  options.forced_config = config;
  return compiler::Compile(source, options);
}

}  // namespace hipacc::baselines
