#include "hwmodel/device_db.hpp"

namespace hipacc::hw {
namespace {

DeviceSpec MakeTeslaC2050() {
  DeviceSpec d;
  d.name = "Tesla C2050";
  d.vendor = Vendor::kNvidia;
  d.compute_capability = 20;  // Fermi
  d.simd_width = 32;
  d.max_threads_per_block = 1024;
  d.max_threads_per_sm = 1536;
  d.max_blocks_per_sm = 8;
  d.regs_per_sm = 32768;
  d.reg_alloc_granularity = 64;  // per-warp granularity on Fermi
  d.regs_allocated_per_block = false;
  d.smem_per_sm = 48 * 1024;
  d.smem_alloc_granularity = 128;
  d.smem_banks = 32;
  d.num_sms = 14;
  d.alus_per_sm = 32;
  d.sfus_per_sm = 4;
  d.sfu_ops_per_transcendental = 2;  // MUFU + range-reduction multiply
  d.isa = CoreIsa::kScalar;
  d.core_clock_ghz = 1.15;
  d.mem_bandwidth_gbps = 144.0;
  d.mem_latency_cycles = 400;
  d.mem_transaction_bytes = 128;
  d.has_global_l1 = true;  // Fermi caches global loads by default
  d.tex_cache_bytes = 12 * 1024;
  d.tex_cache_latency_cycles = 60;
  d.opencl_issue_overhead = 1.35;  // Tables II vs III: ~30-40% slower kernels
  return d;
}

DeviceSpec MakeQuadroFx5800() {
  DeviceSpec d;
  d.name = "Quadro FX 5800";
  d.vendor = Vendor::kNvidia;
  d.compute_capability = 13;  // GT200
  d.simd_width = 32;
  d.max_threads_per_block = 512;
  d.max_threads_per_sm = 1024;
  d.max_blocks_per_sm = 8;
  d.regs_per_sm = 16384;
  d.reg_alloc_granularity = 512;  // per-block granularity on CC 1.x
  d.regs_allocated_per_block = true;
  d.smem_per_sm = 16 * 1024;
  d.smem_alloc_granularity = 512;
  d.smem_banks = 16;
  d.num_sms = 30;
  d.alus_per_sm = 8;
  d.sfus_per_sm = 2;
  d.sfu_ops_per_transcendental = 4;  // GT200: software range reduction
  d.isa = CoreIsa::kScalar;
  d.core_clock_ghz = 1.30;
  d.mem_bandwidth_gbps = 102.0;
  d.mem_latency_cycles = 500;
  d.mem_transaction_bytes = 128;
  d.has_global_l1 = false;  // GT200: only the texture path is cached
  d.tex_cache_bytes = 8 * 1024;
  d.tex_cache_latency_cycles = 70;
  d.opencl_issue_overhead = 1.35;
  return d;
}

DeviceSpec MakeGtx580() {
  DeviceSpec d = MakeTeslaC2050();
  d.name = "GeForce GTX 580";
  d.num_sms = 16;
  d.core_clock_ghz = 1.544;
  d.mem_bandwidth_gbps = 192.4;
  return d;
}

DeviceSpec MakeRadeonHd5870() {
  DeviceSpec d;
  d.name = "Radeon HD 5870";
  d.vendor = Vendor::kAmd;
  d.compute_capability = 0;
  d.simd_width = 64;  // wavefront
  d.max_threads_per_block = 256;
  d.max_threads_per_sm = 1536;  // ~24 wavefronts per SIMD
  d.max_blocks_per_sm = 8;
  d.regs_per_sm = 16384;
  d.reg_alloc_granularity = 256;
  d.regs_allocated_per_block = false;
  d.smem_per_sm = 32 * 1024;  // LDS
  d.smem_alloc_granularity = 256;
  d.smem_banks = 32;
  d.num_sms = 20;
  d.alus_per_sm = 16;  // 16 VLIW5 lanes issue per cycle
  d.sfus_per_sm = 16;  // the T-unit of each VLIW5 bundle
  d.isa = CoreIsa::kVliw5;
  d.core_clock_ghz = 0.85;
  d.mem_bandwidth_gbps = 153.6;
  d.mem_latency_cycles = 500;
  d.mem_transaction_bytes = 128;
  d.has_global_l1 = true;  // Evergreen: global reads via the R/O cache path
  d.tex_cache_bytes = 8 * 1024;
  d.tex_cache_latency_cycles = 80;
  return d;
}

DeviceSpec MakeRadeonHd6970() {
  DeviceSpec d = MakeRadeonHd5870();
  d.name = "Radeon HD 6970";
  d.isa = CoreIsa::kVliw4;
  d.num_sms = 24;
  d.alus_per_sm = 16;
  d.core_clock_ghz = 0.88;
  d.mem_bandwidth_gbps = 176.0;
  return d;
}

}  // namespace

const std::vector<DeviceSpec>& DeviceDatabase() {
  static const std::vector<DeviceSpec> devices = {
      MakeTeslaC2050(), MakeQuadroFx5800(), MakeGtx580(), MakeRadeonHd5870(),
      MakeRadeonHd6970()};
  return devices;
}

Result<DeviceSpec> FindDevice(const std::string& name) {
  for (const auto& d : DeviceDatabase())
    if (d.name == name) return d;
  return Status::Invalid("unknown device: " + name);
}

DeviceSpec TeslaC2050() { return MakeTeslaC2050(); }
DeviceSpec QuadroFx5800() { return MakeQuadroFx5800(); }
DeviceSpec RadeonHd5870() { return MakeRadeonHd5870(); }
DeviceSpec RadeonHd6970() { return MakeRadeonHd6970(); }

const char* to_string(Vendor vendor) noexcept {
  switch (vendor) {
    case Vendor::kNvidia: return "NVIDIA";
    case Vendor::kAmd: return "AMD";
  }
  return "?";
}

}  // namespace hipacc::hw
