#include "compiler/fusion.hpp"

#include <cctype>
#include <cmath>
#include <functional>

#include "support/string_utils.hpp"

namespace hipacc::compiler {
namespace {

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// True when body[pos, pos+len) is a whole identifier (not a substring of a
/// longer one).
bool IsWholeIdent(const std::string& body, std::size_t pos, std::size_t len) {
  if (pos > 0 && IsIdentChar(body[pos - 1])) return false;
  const std::size_t end = pos + len;
  return end >= body.size() || !IsIdentChar(body[end]);
}

std::size_t SkipSpace(const std::string& body, std::size_t pos) {
  while (pos < body.size() &&
         std::isspace(static_cast<unsigned char>(body[pos])) != 0)
    ++pos;
  return pos;
}

/// Local variables declared in a kernel body: identifiers introduced by
/// `float x`, `int i`, `bool b` (including for-init declarations).
std::vector<std::string> DeclaredLocals(const std::string& body) {
  static const char* kTypes[] = {"float", "int", "bool"};
  std::vector<std::string> names;
  for (const char* type : kTypes) {
    const std::size_t tlen = std::char_traits<char>::length(type);
    for (std::size_t pos = body.find(type); pos != std::string::npos;
         pos = body.find(type, pos + 1)) {
      if (!IsWholeIdent(body, pos, tlen)) continue;
      std::size_t p = SkipSpace(body, pos + tlen);
      std::size_t end = p;
      while (end < body.size() && IsIdentChar(body[end])) ++end;
      if (end > p) names.push_back(body.substr(p, end - p));
    }
  }
  return names;
}

bool Contains(const std::vector<std::string>& names, const std::string& name) {
  for (const std::string& n : names)
    if (n == name) return true;
  return false;
}

/// True when `name` whole-word occurs anywhere in `text`.
bool MentionsIdent(const std::string& text, const std::string& name) {
  for (std::size_t pos = text.find(name); pos != std::string::npos;
       pos = text.find(name, pos + 1))
    if (IsWholeIdent(text, pos, name.size())) return true;
  return false;
}

/// Position one past the matching ')' for the '(' at `open`; npos when
/// unbalanced.
std::size_t MatchParen(const std::string& body, std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < body.size(); ++i) {
    if (body[i] == '(') ++depth;
    if (body[i] == ')' && --depth == 0) return i + 1;
  }
  return std::string::npos;
}

/// Splits a balanced argument list (the text between a call's parentheses)
/// at top-level commas.
std::vector<std::string> SplitTopLevelArgs(const std::string& args) {
  std::vector<std::string> out;
  int depth = 0;
  std::size_t start = 0;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == '(') ++depth;
    if (args[i] == ')') --depth;
    if (args[i] == ',' && depth == 0) {
      out.push_back(args.substr(start, i - start));
      start = i + 1;
    }
  }
  const std::string last = args.substr(start);
  if (!out.empty() || SkipSpace(last, 0) != last.size()) out.push_back(last);
  return out;
}

/// Replaces every read `name(...)` (balanced argument list) with `local`.
/// Returns the number of replacements.
int ReplaceReads(std::string* body, const std::string& name,
                 const std::string& local) {
  int replaced = 0;
  std::size_t pos = 0;
  while ((pos = body->find(name, pos)) != std::string::npos) {
    if (!IsWholeIdent(*body, pos, name.size())) {
      pos += name.size();
      continue;
    }
    std::size_t open = SkipSpace(*body, pos + name.size());
    if (open >= body->size() || (*body)[open] != '(') {
      pos += name.size();
      continue;
    }
    const std::size_t close = MatchParen(*body, open);
    if (close == std::string::npos) return -1;  // unbalanced; parser rejects
    body->replace(pos, close - pos, local);
    pos += local.size();
    ++replaced;
  }
  return replaced;
}

/// Rewrites every read of `name` with the string `fn(args)` returns. Args
/// are the top-level-comma-split argument texts. Returns the replacement
/// count or an error from `fn` / on unbalanced parentheses.
Result<int> RewriteReads(
    std::string* body, const std::string& name,
    const std::function<Result<std::string>(const std::vector<std::string>&)>&
        fn) {
  int replaced = 0;
  std::size_t pos = 0;
  while ((pos = body->find(name, pos)) != std::string::npos) {
    if (!IsWholeIdent(*body, pos, name.size())) {
      pos += name.size();
      continue;
    }
    const std::size_t open = SkipSpace(*body, pos + name.size());
    if (open >= body->size() || (*body)[open] != '(') {
      pos += name.size();
      continue;
    }
    const std::size_t close = MatchParen(*body, open);
    if (close == std::string::npos)
      return Status::Invalid("unbalanced parentheses near '" + name + "'");
    const std::string args = body->substr(open + 1, close - open - 2);
    Result<std::string> repl = fn(SplitTopLevelArgs(args));
    if (!repl.ok()) return repl.status();
    body->replace(pos, close - pos, repl.value());
    pos += repl.value().size();
    ++replaced;
  }
  return replaced;
}

/// Renames call sites `from(...)` to `to(...)`, keeping the argument list.
/// Returns the number of renamed sites.
int RenameCalls(std::string* body, const std::string& from,
                const std::string& to) {
  int renamed = 0;
  std::size_t pos = 0;
  while ((pos = body->find(from, pos)) != std::string::npos) {
    if (!IsWholeIdent(*body, pos, from.size())) {
      pos += from.size();
      continue;
    }
    const std::size_t open = SkipSpace(*body, pos + from.size());
    if (open >= body->size() || (*body)[open] != '(') {
      pos += from.size();
      continue;
    }
    body->replace(pos, from.size(), to);
    pos += to.size();
    ++renamed;
  }
  return renamed;
}

/// Rewrites every bare `output()` target to `output(<name>)`. Fails (-1)
/// when a named output write is present — chained horizontal fusion always
/// folds a fresh (single-output) sibling into the accumulated kernel.
int RewriteOutputTargets(std::string* body, const std::string& name) {
  int rewritten = 0;
  std::size_t pos = 0;
  while ((pos = body->find("output", pos)) != std::string::npos) {
    if (!IsWholeIdent(*body, pos, 6)) {
      pos += 6;
      continue;
    }
    const std::size_t open = SkipSpace(*body, pos + 6);
    if (open >= body->size() || (*body)[open] != '(') {
      pos += 6;
      continue;
    }
    const std::size_t inner = SkipSpace(*body, open + 1);
    if (inner >= body->size()) return -1;
    if ((*body)[inner] != ')') return -1;  // already a named output
    body->replace(pos, inner + 1 - pos, "output(" + name + ")");
    pos += 7 + name.size() + 1;
    ++rewritten;
  }
  return rewritten;
}

/// Rewrites the producer's single top-level `output() = expr;` into
/// `float <local> = expr;`. Fails when there is no write, several writes,
/// or the write sits inside a nested block (its value would go out of
/// scope before the consumer body runs).
Status RewriteProducerOutput(std::string* body, const std::string& local,
                             const std::string& producer_name) {
  std::size_t found = std::string::npos;
  int count = 0;
  for (std::size_t pos = body->find("output"); pos != std::string::npos;
       pos = body->find("output", pos + 1)) {
    if (!IsWholeIdent(*body, pos, 6)) continue;
    ++count;
    found = pos;
  }
  if (count != 1)
    return Status::Invalid(StrFormat(
        "cannot fuse into kernel '%s': expected exactly one output() write, "
        "found %d",
        producer_name.c_str(), count));
  int depth = 0;
  for (std::size_t i = 0; i < found; ++i) {
    if ((*body)[i] == '{') ++depth;
    if ((*body)[i] == '}') --depth;
  }
  if (depth != 0)
    return Status::Invalid(
        "cannot fuse into kernel '" + producer_name +
        "': its output() write is inside a nested block, so the fused "
        "value would not be in scope for the consumer body");
  std::size_t open = SkipSpace(*body, found + 6);
  if (open >= body->size() || (*body)[open] != '(')
    return Status::Invalid("cannot fuse into kernel '" + producer_name +
                           "': malformed output() write");
  std::size_t close = SkipSpace(*body, open + 1);
  if (close >= body->size() || (*body)[close] != ')')
    return Status::Invalid("cannot fuse into kernel '" + producer_name +
                           "': malformed output() write");
  std::size_t eq = SkipSpace(*body, close + 1);
  if (eq >= body->size() || (*body)[eq] != '=' ||
      (eq + 1 < body->size() && (*body)[eq + 1] == '='))
    return Status::Invalid("cannot fuse into kernel '" + producer_name +
                           "': output() is not written by a plain assignment");
  body->replace(found, close + 1 - found, "float " + local);
  return Status::Ok();
}

/// All identifier-like names a kernel introduces: params, accessors, masks,
/// declared body locals, extra-output names.
std::vector<std::string> KernelNames(const frontend::KernelSource& k) {
  std::vector<std::string> names;
  for (const ast::ParamInfo& p : k.params) names.push_back(p.name);
  for (const ast::AccessorInfo& a : k.accessors) names.push_back(a.name);
  for (const ast::MaskInfo& m : k.masks) names.push_back(m.name);
  for (const std::string& o : k.extra_outputs) names.push_back(o);
  for (std::string& l : DeclaredLocals(k.body)) names.push_back(std::move(l));
  return names;
}

/// Checks that every name `b` introduces (optionally skipping `exempt`) is
/// absent from `a_names`.
Status CheckDisjoint(const std::vector<std::string>& a_names,
                     const frontend::KernelSource& b,
                     const std::string& exempt) {
  for (const std::string& name : KernelNames(b)) {
    if (name == exempt) continue;
    if (Contains(a_names, name))
      return Status::Invalid("cannot fuse: name '" + name +
                             "' exists in both kernels");
  }
  return Status::Ok();
}

// ---- halo fusion helpers ---------------------------------------------------

/// A float literal whose parsed double is exactly double(v): %.17g
/// round-trips any double through strtod, so the inlined coefficient equals
/// the one convolve() unrolling would have produced (every engine op casts
/// operands through float, making the two paths bit-identical).
Result<std::string> FloatLiteral(float v) {
  if (!std::isfinite(v))
    return Status::Invalid("non-finite mask coefficient in convolve()");
  std::string text = StrFormat("%.17g", static_cast<double>(v));
  if (text.find('.') == std::string::npos &&
      text.find('e') == std::string::npos &&
      text.find('E') == std::string::npos)
    text += ".0";
  text += "f";
  // The DSL has no negative literals; let unary minus (exact) rebuild one.
  if (text[0] == '-') return "(" + text + ")";
  return text;
}

/// Extracts `expr` from a producer whose whole body is one top-level
/// `output() = expr;` — the only producer shape halo fusion can inline at
/// every consumer tap (locals would need per-tap re-evaluation, loops a
/// statement context).
Result<std::string> ExtractProducerExpr(const frontend::KernelSource& p) {
  const std::string& body = p.body;
  std::size_t pos = SkipSpace(body, 0);
  if (body.compare(pos, 6, "output") != 0 || !IsWholeIdent(body, pos, 6))
    return Status::Invalid(
        "halo fusion requires an expression-bodied producer (a single "
        "'output() = expr;'), but kernel '" +
        p.name + "' does not start with output()");
  pos = SkipSpace(body, pos + 6);
  if (pos >= body.size() || body[pos] != '(')
    return Status::Invalid("malformed output() in kernel '" + p.name + "'");
  pos = SkipSpace(body, pos + 1);
  if (pos >= body.size() || body[pos] != ')')
    return Status::Invalid("halo fusion cannot inline multi-output producer '" +
                           p.name + "'");
  pos = SkipSpace(body, pos + 1);
  if (pos >= body.size() || body[pos] != '=')
    return Status::Invalid("malformed output() write in kernel '" + p.name +
                           "'");
  ++pos;
  const std::size_t semi = body.find(';', pos);
  if (semi == std::string::npos)
    return Status::Invalid("missing ';' in kernel '" + p.name + "'");
  if (SkipSpace(body, semi + 1) != body.size())
    return Status::Invalid(
        "halo fusion requires an expression-bodied producer (a single "
        "'output() = expr;'), but kernel '" +
        p.name + "' has further statements");
  return body.substr(pos, semi - pos);
}

/// Unrolls `convolve(M, RED, expr)` calls in a producer expression into the
/// reduction over all taps, with `M()` replaced by the coefficient literal
/// and single-argument accessor reads `In(M)` by literal offsets — the
/// textual equivalent of the parser's constant-propagating unrolling, so
/// the inlined producer folds to the same device IR the standalone kernel
/// would.
Result<std::string> ExpandConvolve(std::string expr,
                                   const frontend::KernelSource& p) {
  for (int guard = 0; guard < 8; ++guard) {
    std::size_t pos = std::string::npos;
    for (std::size_t i = expr.find("convolve"); i != std::string::npos;
         i = expr.find("convolve", i + 1)) {
      if (IsWholeIdent(expr, i, 8)) {
        pos = i;
        break;
      }
    }
    if (pos == std::string::npos) return expr;
    const std::size_t open = SkipSpace(expr, pos + 8);
    if (open >= expr.size() || expr[open] != '(')
      return Status::Invalid("malformed convolve() in kernel '" + p.name + "'");
    const std::size_t close = MatchParen(expr, open);
    if (close == std::string::npos)
      return Status::Invalid("unbalanced convolve() in kernel '" + p.name +
                             "'");
    const std::vector<std::string> args =
        SplitTopLevelArgs(expr.substr(open + 1, close - open - 2));
    if (args.size() != 3)
      return Status::Invalid("convolve() expects 3 arguments in kernel '" +
                             p.name + "'");
    std::string mask_name = args[0];
    mask_name = mask_name.substr(SkipSpace(mask_name, 0));
    while (!mask_name.empty() &&
           std::isspace(static_cast<unsigned char>(mask_name.back())) != 0)
      mask_name.pop_back();
    std::string reduce = args[1];
    reduce = reduce.substr(SkipSpace(reduce, 0));
    while (!reduce.empty() &&
           std::isspace(static_cast<unsigned char>(reduce.back())) != 0)
      reduce.pop_back();
    if (reduce != "SUM" && reduce != "MIN" && reduce != "MAX" &&
        reduce != "PROD")
      return Status::Invalid("unknown convolve reduction '" + reduce + "'");
    const ast::MaskInfo* mask = nullptr;
    for (const ast::MaskInfo& m : p.masks)
      if (m.name == mask_name) mask = &m;
    if (mask == nullptr || !mask->is_static())
      return Status::Invalid(
          "convolve() needs a compile-time-constant mask for halo fusion");

    const int hx = mask->size_x / 2;
    const int hy = mask->size_y / 2;
    // One term per tap, in the parser's unrolling order (yf outer, xf
    // inner), with M() folded to the coefficient literal and In(M) to the
    // literal tap offset.
    std::vector<std::string> terms;
    for (int yf = -hy; yf <= hy; ++yf) {
      for (int xf = -hx; xf <= hx; ++xf) {
        const float coeff =
            mask->static_values[static_cast<std::size_t>(yf + hy) *
                                    mask->size_x +
                                (xf + hx)];
        Result<std::string> lit = FloatLiteral(coeff);
        if (!lit.ok()) return lit.status();
        std::string term = args[2];
        if (ReplaceReads(&term, mask_name, lit.value()) < 0)
          return Status::Invalid("unbalanced mask read in convolve()");
        for (const ast::AccessorInfo& acc : p.accessors) {
          Result<int> r = RewriteReads(
              &term, acc.name,
              [&](const std::vector<std::string>& rargs)
                  -> Result<std::string> {
                if (rargs.size() == 1) {
                  std::string only = rargs[0];
                  only = only.substr(SkipSpace(only, 0));
                  while (!only.empty() &&
                         std::isspace(
                             static_cast<unsigned char>(only.back())) != 0)
                    only.pop_back();
                  if (only != mask_name)
                    return Status::Invalid(
                        "accessor '" + acc.name +
                        "' with one argument expects the convolve mask");
                  return StrFormat("%s(%d, %d)", acc.name.c_str(), xf, yf);
                }
                // 0- or 2-argument reads pass through untouched.
                std::string original = acc.name + "(";
                for (std::size_t i = 0; i < rargs.size(); ++i) {
                  if (i > 0) original += ",";
                  original += rargs[i];
                }
                return original + ")";
              });
          if (!r.ok()) return r.status();
        }
        if (MentionsIdent(term, mask_name))
          return Status::Invalid(
              "halo fusion cannot expand convolve(): mask '" + mask_name +
              "' is used outside M() / In(M)");
        terms.push_back(std::move(term));
      }
    }
    // Combine left-associatively, exactly like the parser: SUM/PROD as an
    // operator chain, MIN/MAX as nested fmin/fmax calls.
    std::string combined;
    for (const std::string& term : terms) {
      if (combined.empty()) {
        combined = "(" + term + ")";
      } else if (reduce == "SUM") {
        combined += " + (" + term + ")";
      } else if (reduce == "PROD") {
        combined += " * (" + term + ")";
      } else {
        const char* fn = reduce == "MIN" ? "fmin" : "fmax";
        combined = std::string(fn) + "(" + combined + ", (" + term + "))";
      }
    }
    expr.replace(pos, close - pos, "(" + combined + ")");
  }
  return Status::Invalid("too many convolve() calls to expand");
}

/// DSL arithmetic that reproduces dsl::ResolveBoundaryIndex for coordinate
/// expression `v` over extent `n` — evaluated by the engines in exact int
/// arithmetic, so the fused read coordinate equals the index the unfused
/// intermediate image would have been read at.
std::string RemapIndexExpr(const std::string& v, int n,
                           ast::BoundaryMode mode) {
  const std::string V = "(" + v + ")";
  if (mode == ast::BoundaryMode::kClamp) {
    // clamp: in-range identity, else nearest edge.
    return StrFormat("(%s < 0 ? 0 : (%s > %d ? %d : %s))", V.c_str(),
                     V.c_str(), n - 1, n - 1, V.c_str());
  }
  // mirror: reflect with period 2n (closed form of the iterative
  // reflection): r = ((v % 2n) + 2n) % 2n; r < n ? r : 2n-1-r.
  const int two_n = 2 * n;
  const std::string r = StrFormat("(((%s %% %d) + %d) %% %d)", V.c_str(),
                                  two_n, two_n, two_n);
  return StrFormat("(%s < %d ? %s : %d - %s)", r.c_str(), n, r.c_str(),
                   two_n - 1, r.c_str());
}

/// Replaces nullary calls `name()` with `repl`.
int ReplaceNullaryCalls(std::string* body, const std::string& name,
                        const std::string& repl) {
  int replaced = 0;
  std::size_t pos = 0;
  while ((pos = body->find(name, pos)) != std::string::npos) {
    if (!IsWholeIdent(*body, pos, name.size())) {
      pos += name.size();
      continue;
    }
    const std::size_t open = SkipSpace(*body, pos + name.size());
    if (open >= body->size() || (*body)[open] != '(') {
      pos += name.size();
      continue;
    }
    const std::size_t close = SkipSpace(*body, open + 1);
    if (close >= body->size() || (*body)[close] != ')') {
      pos += name.size();
      continue;
    }
    body->replace(pos, close + 1 - pos, repl);
    pos += repl.size();
    ++replaced;
  }
  return replaced;
}

/// Replaces every whole-identifier occurrence of `from` with `to`
/// (alpha-renaming of kernel-internal names: masks, body locals).
void ReplaceIdent(std::string* body, const std::string& from,
                  const std::string& to) {
  std::size_t pos = 0;
  while ((pos = body->find(from, pos)) != std::string::npos) {
    if (!IsWholeIdent(*body, pos, from.size())) {
      pos += from.size();
      continue;
    }
    body->replace(pos, from.size(), to);
    pos += to.size();
  }
}

/// Replaces plain textual occurrences of a placeholder token.
void ReplaceToken(std::string* body, const std::string& token,
                  const std::string& repl) {
  std::size_t pos = 0;
  while ((pos = body->find(token, pos)) != std::string::npos) {
    body->replace(pos, token.size(), repl);
    pos += repl.size();
  }
}

}  // namespace

const char* to_string(FuseKind kind) noexcept {
  switch (kind) {
    case FuseKind::kPoint: return "point";
    case FuseKind::kHorizontal: return "horizontal";
    case FuseKind::kHalo: return "halo";
  }
  return "?";
}

const char* to_string(FusionMode mode) noexcept {
  switch (mode) {
    case FusionMode::kOff: return "off";
    case FusionMode::kPoint: return "point";
    case FusionMode::kHorizontal: return "horizontal";
    case FusionMode::kHalo: return "halo";
    case FusionMode::kAll: return "all";
  }
  return "?";
}

Result<FusionMode> ParseFusionMode(const std::string& text) {
  if (text == "off") return FusionMode::kOff;
  if (text == "point") return FusionMode::kPoint;
  if (text == "horizontal") return FusionMode::kHorizontal;
  if (text == "halo") return FusionMode::kHalo;
  if (text == "all") return FusionMode::kAll;
  return Status::Invalid("unknown fusion mode '" + text +
                         "' (expected off|point|horizontal|halo|all)");
}

bool FusionModeAllows(FusionMode mode, FuseKind kind) noexcept {
  switch (mode) {
    case FusionMode::kOff: return false;
    case FusionMode::kAll: return true;
    case FusionMode::kPoint: return kind == FuseKind::kPoint;
    case FusionMode::kHorizontal: return kind == FuseKind::kHorizontal;
    case FusionMode::kHalo: return kind == FuseKind::kHalo;
  }
  return false;
}

Result<frontend::KernelSource> FusePointwise(
    const frontend::KernelSource& producer,
    const frontend::KernelSource& consumer, const std::string& accessor) {
  // The consumed accessor must exist and the consumer must be a pure point
  // operator: every accessor window 1x1, so all its reads are offset (0,0).
  const ast::AccessorInfo* consumed = nullptr;
  for (const ast::AccessorInfo& acc : consumer.accessors) {
    if (acc.window.half_x != 0 || acc.window.half_y != 0)
      return Status::Invalid(StrFormat(
          "cannot fuse kernel '%s' into '%s': accessor '%s' has a %dx%d "
          "window — only point operators (all windows 1x1) are fusable",
          consumer.name.c_str(), producer.name.c_str(), acc.name.c_str(),
          acc.window.size_x(), acc.window.size_y()));
    if (acc.name == accessor) consumed = &acc;
  }
  if (consumed == nullptr)
    return Status::Invalid(StrFormat(
        "cannot fuse kernel '%s' into '%s': it has no accessor named '%s'",
        consumer.name.c_str(), producer.name.c_str(), accessor.c_str()));

  // Merging must not capture names: params, accessors, masks, and declared
  // body locals of the two kernels have to be disjoint. Producer locals
  // matter too — a consumer param shadowed by a producer body variable
  // would silently read the wrong value in the merged body. The consumed
  // accessor is exempt: its reads are substituted away and its name does
  // not survive into the fused kernel.
  const std::vector<std::string> producer_names = KernelNames(producer);
  HIPACC_RETURN_IF_ERROR(CheckDisjoint(producer_names, consumer, accessor));

  // Pick a fresh name for the producer's pixel value.
  const std::vector<std::string> consumer_names = KernelNames(consumer);
  std::string local = "fused_" + accessor;
  while (Contains(producer_names, local) || Contains(consumer_names, local))
    local += "_";

  std::string producer_body = producer.body;
  HIPACC_RETURN_IF_ERROR(
      RewriteProducerOutput(&producer_body, local, producer.name));

  std::string consumer_body = consumer.body;
  const int replaced = ReplaceReads(&consumer_body, accessor, local);
  if (replaced < 0)
    return Status::Invalid("cannot fuse kernel '" + consumer.name +
                           "': unbalanced parentheses in its body");
  if (replaced == 0)
    return Status::Invalid(StrFormat(
        "cannot fuse kernel '%s' into '%s': its body never reads "
        "accessor '%s'",
        consumer.name.c_str(), producer.name.c_str(), accessor.c_str()));

  frontend::KernelSource fused;
  fused.name = producer.name + "_" + consumer.name;
  fused.params = producer.params;
  fused.params.insert(fused.params.end(), consumer.params.begin(),
                      consumer.params.end());
  // Producer accessors first: the front accessor (the windowed one) keeps
  // driving the boundary-handling region layout of the fused kernel.
  fused.accessors = producer.accessors;
  for (const ast::AccessorInfo& acc : consumer.accessors)
    if (acc.name != accessor) fused.accessors.push_back(acc);
  fused.masks = producer.masks;
  fused.masks.insert(fused.masks.end(), consumer.masks.begin(),
                     consumer.masks.end());
  fused.extra_outputs = producer.extra_outputs;
  for (const std::string& o : consumer.extra_outputs)
    fused.extra_outputs.push_back(o);
  fused.body = producer_body + "\n" + consumer_body;
  return fused;
}

Result<frontend::KernelSource> FuseHorizontal(
    const frontend::KernelSource& a, const std::string& a_accessor,
    const frontend::KernelSource& b, const std::string& b_accessor,
    const std::string& output_name) {
  if (!b.extra_outputs.empty())
    return Status::Invalid(
        "cannot fuse sibling '" + b.name +
        "': it already carries extra outputs (fold fresh siblings into the "
        "accumulated kernel instead)");
  if (output_name.empty())
    return Status::Invalid("horizontal fusion needs an extra-output name");
  for (const std::string& o : a.extra_outputs)
    if (o == output_name)
      return Status::Invalid("extra-output name '" + output_name +
                             "' already used");

  const ast::AccessorInfo* a_acc = nullptr;
  for (const ast::AccessorInfo& acc : a.accessors)
    if (acc.name == a_accessor) a_acc = &acc;
  const ast::AccessorInfo* b_acc = nullptr;
  for (const ast::AccessorInfo& acc : b.accessors)
    if (acc.name == b_accessor) b_acc = &acc;
  if (a_acc == nullptr || b_acc == nullptr)
    return Status::Invalid(StrFormat(
        "cannot fuse siblings '%s' and '%s': shared-input accessor '%s' / "
        "'%s' not found",
        a.name.c_str(), b.name.c_str(), a_accessor.c_str(),
        b_accessor.c_str()));

  // The shared input collapses into one accessor when the boundary
  // semantics agree — a 1x1 window never reads out of bounds, so its mode
  // is irrelevant; two windowed accessors must match exactly.
  const bool a_windowed =
      a_acc->window.half_x != 0 || a_acc->window.half_y != 0;
  const bool b_windowed =
      b_acc->window.half_x != 0 || b_acc->window.half_y != 0;
  bool merge = true;
  if (a_windowed && b_windowed) {
    merge = a_acc->boundary == b_acc->boundary &&
            (a_acc->boundary != ast::BoundaryMode::kConstant ||
             a_acc->constant_value == b_acc->constant_value);
    if (!merge)
      return Status::Invalid(StrFormat(
          "cannot fuse siblings '%s' and '%s': their windowed reads of the "
          "shared input use different boundary handling",
          a.name.c_str(), b.name.c_str()));
  }

  // Alpha-rename b-internal names (mask names, declared body locals) that
  // collide with a's: they are invisible outside the kernel, unlike params
  // and accessors, which the runtime binds by name (a collision there stays
  // a hard reject — two siblings binding different values under one name
  // have no correct merge).
  const std::vector<std::string> a_names = KernelNames(a);
  frontend::KernelSource b_renamed = b;
  {
    std::vector<std::string> taken = a_names;
    for (const std::string& n : KernelNames(b)) taken.push_back(n);
    auto fresh = [&taken](const std::string& base) {
      std::string name = base;
      while (Contains(taken, name)) name += "_";
      taken.push_back(name);
      return name;
    };
    for (ast::MaskInfo& mask : b_renamed.masks) {
      if (!Contains(a_names, mask.name)) continue;
      const std::string renamed = fresh(mask.name + "_" + output_name);
      ReplaceIdent(&b_renamed.body, mask.name, renamed);
      mask.name = renamed;
    }
    for (const std::string& local : DeclaredLocals(b_renamed.body)) {
      if (!Contains(a_names, local)) continue;
      ReplaceIdent(&b_renamed.body, local, fresh(local + "_" + output_name));
    }
  }
  HIPACC_RETURN_IF_ERROR(CheckDisjoint(a_names, b_renamed, b_accessor));
  if (Contains(a_names, output_name) ||
      Contains(KernelNames(b_renamed), output_name))
    return Status::Invalid("extra-output name '" + output_name +
                           "' collides with a kernel name");

  std::string b_body = b_renamed.body;
  if (b_accessor != a_accessor) {
    if (RenameCalls(&b_body, b_accessor, a_accessor) == 0)
      return Status::Invalid(StrFormat(
          "cannot fuse siblings '%s' and '%s': '%s' never reads accessor "
          "'%s'",
          a.name.c_str(), b.name.c_str(), b.name.c_str(),
          b_accessor.c_str()));
  }
  if (RewriteOutputTargets(&b_body, output_name) <= 0)
    return Status::Invalid("cannot fuse sibling '" + b.name +
                           "': no rewritable output() write");

  frontend::KernelSource fused;
  fused.name = a.name + "_" + b.name;
  fused.params = a.params;
  fused.params.insert(fused.params.end(), b.params.begin(), b.params.end());
  fused.accessors = a.accessors;
  for (ast::AccessorInfo& acc : fused.accessors) {
    if (acc.name != a_accessor) continue;
    // Merged accessor: element-wise max window; the windowed side's
    // boundary handling wins (a point read never needs any).
    acc.window.half_x = std::max(acc.window.half_x, b_acc->window.half_x);
    acc.window.half_y = std::max(acc.window.half_y, b_acc->window.half_y);
    if (!a_windowed && b_windowed) {
      acc.boundary = b_acc->boundary;
      acc.constant_value = b_acc->constant_value;
    }
  }
  for (const ast::AccessorInfo& acc : b.accessors)
    if (acc.name != b_accessor) fused.accessors.push_back(acc);
  fused.masks = a.masks;
  fused.masks.insert(fused.masks.end(), b_renamed.masks.begin(),
                     b_renamed.masks.end());
  fused.extra_outputs = a.extra_outputs;
  fused.extra_outputs.push_back(output_name);
  fused.body = a.body + "\n" + b_body;
  return fused;
}

Result<frontend::KernelSource> FuseHalo(const frontend::KernelSource& producer,
                                        const frontend::KernelSource& consumer,
                                        const std::string& accessor,
                                        int image_width, int image_height) {
  if (!producer.extra_outputs.empty())
    return Status::Invalid("halo fusion cannot inline multi-output producer '" +
                           producer.name + "'");
  if (image_width <= 0 || image_height <= 0)
    return Status::Invalid("halo fusion needs the iteration-space extents");

  const ast::AccessorInfo* consumed = nullptr;
  for (const ast::AccessorInfo& acc : consumer.accessors)
    if (acc.name == accessor) consumed = &acc;
  if (consumed == nullptr)
    return Status::Invalid(StrFormat(
        "cannot fuse kernel '%s' into '%s': it has no accessor named '%s'",
        consumer.name.c_str(), producer.name.c_str(), accessor.c_str()));
  if (consumed->boundary != ast::BoundaryMode::kClamp &&
      consumed->boundary != ast::BoundaryMode::kMirror)
    return Status::Invalid(StrFormat(
        "halo fusion requires clamp or mirror boundary handling on the "
        "consumed accessor, got %s (repeat breaks scratchpad tile locality; "
        "constant would need f(c) != c; undefined has no defined remap)",
        to_string(consumed->boundary)));

  // Producer shape: a single top-level `output() = expr;`, with convolve()
  // unrolled textually so only literal-offset accessor reads remain.
  Result<std::string> expr = ExtractProducerExpr(producer);
  if (!expr.ok()) return expr.status();
  Result<std::string> expanded = ExpandConvolve(expr.value(), producer);
  if (!expanded.ok()) return expanded.status();
  std::string proto = std::move(expanded).take();

  // Producer masks whose reads were all constant-propagated away by the
  // convolve() expansion do not survive into the fused kernel (and are
  // exempt from name-disjointness — Gaussian→Laplacian both call their
  // mask "M").
  std::vector<ast::MaskInfo> surviving_masks;
  for (const ast::MaskInfo& m : producer.masks)
    if (MentionsIdent(proto, m.name)) surviving_masks.push_back(m);

  frontend::KernelSource producer_view = producer;
  producer_view.masks = surviving_masks;
  const std::vector<std::string> producer_names = KernelNames(producer_view);
  HIPACC_RETURN_IF_ERROR(CheckDisjoint(producer_names, consumer, accessor));

  // Placeholders for the remapped producer-iteration coordinate; chosen
  // fresh so no kernel text can capture them.
  std::string cxp = "__halo_cx";
  std::string cyp = "__halo_cy";
  while (proto.find(cxp) != std::string::npos ||
         consumer.body.find(cxp) != std::string::npos)
    cxp += "_";
  while (proto.find(cyp) != std::string::npos ||
         consumer.body.find(cyp) != std::string::npos)
    cyp += "_";

  // Producer x()/y() evaluate at the remapped coordinate.
  ReplaceNullaryCalls(&proto, "x", cxp);
  ReplaceNullaryCalls(&proto, "y", cyp);

  // Producer reads In(a, b) happen at (remapped + offset): express them as
  // consumer-level reads In((a) + cx - x(), (b) + cy - y()) so the fused
  // accessor applies the *producer's* boundary mode to the same absolute
  // coordinate the standalone producer would have resolved.
  for (const ast::AccessorInfo& acc : producer.accessors) {
    Result<int> r = RewriteReads(
        &proto, acc.name,
        [&](const std::vector<std::string>& args) -> Result<std::string> {
          std::string dx = "0";
          std::string dy = "0";
          if (args.size() == 2) {
            dx = args[0];
            dy = args[1];
          } else if (!args.empty()) {
            return Status::Invalid(
                "halo fusion: unsupported single-argument read of '" +
                acc.name + "' outside convolve()");
          }
          return StrFormat("%s((%s) + %s - x(), (%s) + %s - y())",
                           acc.name.c_str(), dx.c_str(), cxp.c_str(),
                           dy.c_str(), cyp.c_str());
        });
    if (!r.ok()) return r.status();
  }

  // Substitute the producer expression at every consumer tap, remapping the
  // tap coordinate with the consumed accessor's boundary mode (extents as
  // literals — known at plan time, exactly like the paper's baked kernels).
  std::string consumer_body = consumer.body;
  Result<int> replaced = RewriteReads(
      &consumer_body, accessor,
      [&](const std::vector<std::string>& args) -> Result<std::string> {
        std::string dx = "0";
        std::string dy = "0";
        if (args.size() == 2) {
          dx = args[0];
          dy = args[1];
        } else if (!args.empty()) {
          return Status::Invalid(
              "halo fusion: consumer reads '" + accessor +
              "' at a convolve mask position — unsupported");
        }
        if (MentionsIdent(dx, accessor) || MentionsIdent(dy, accessor))
          return Status::Invalid("halo fusion: nested reads of '" + accessor +
                                 "' in an offset expression");
        const std::string cx = RemapIndexExpr("x() + (" + dx + ")",
                                              image_width, consumed->boundary);
        const std::string cy = RemapIndexExpr("y() + (" + dy + ")",
                                              image_height, consumed->boundary);
        std::string inst = proto;
        ReplaceToken(&inst, cxp, "(" + cx + ")");
        ReplaceToken(&inst, cyp, "(" + cy + ")");
        // The float cast reproduces the store-then-load rounding of the
        // eliminated intermediate image.
        return "((float)(" + inst + "))";
      });
  if (!replaced.ok()) return replaced.status();
  if (replaced.value() == 0)
    return Status::Invalid(StrFormat(
        "cannot fuse kernel '%s' into '%s': its body never reads "
        "accessor '%s'",
        consumer.name.c_str(), producer.name.c_str(), accessor.c_str()));

  frontend::KernelSource fused;
  fused.name = producer.name + "_" + consumer.name;
  fused.params = producer.params;
  fused.params.insert(fused.params.end(), consumer.params.begin(),
                      consumer.params.end());
  // Producer accessors first, windows extended by the consumer's window of
  // the consumed accessor — the extended tile+halo region the scratchpad
  // stages and the boundary-region bands are sized from.
  fused.accessors = producer.accessors;
  for (ast::AccessorInfo& acc : fused.accessors) {
    acc.window.half_x += consumed->window.half_x;
    acc.window.half_y += consumed->window.half_y;
  }
  for (const ast::AccessorInfo& acc : consumer.accessors)
    if (acc.name != accessor) fused.accessors.push_back(acc);
  fused.masks = surviving_masks;
  fused.masks.insert(fused.masks.end(), consumer.masks.begin(),
                     consumer.masks.end());
  fused.extra_outputs = consumer.extra_outputs;
  fused.body = consumer_body;
  return fused;
}

Result<frontend::KernelSource> ApplyFusion(
    const frontend::KernelSource& producer,
    const std::vector<FusionRequest>& chain) {
  frontend::KernelSource current = producer;
  for (const FusionRequest& request : chain) {
    Result<frontend::KernelSource> fused = Status::Invalid("unknown kind");
    switch (request.kind) {
      case FuseKind::kPoint:
        fused = FusePointwise(current, request.consumer, request.accessor);
        break;
      case FuseKind::kHorizontal:
        fused = FuseHorizontal(current, request.accessor, request.consumer,
                               request.peer_accessor, request.output_name);
        break;
      case FuseKind::kHalo:
        fused = FuseHalo(current, request.consumer, request.accessor,
                         request.image_width, request.image_height);
        break;
    }
    if (!fused.ok()) return fused.status();
    current = std::move(fused).take();
  }
  return current;
}

}  // namespace hipacc::compiler
