# Empty dependencies file for hipacc_hwmodel.
# This may be replaced when dependencies are built.
