// Non-owning 2D view over row-major pixel storage, with an explicit stride so
// padded allocations (global-memory padding for coalescing) share the type.
#pragma once

#include <cstddef>

#include "support/status.hpp"

namespace hipacc {

/// A mutable or const 2D view: `Span2D<float>` / `Span2D<const float>`.
/// `stride` is the distance in elements between the starts of two rows and
/// may exceed `width` when the underlying buffer is padded.
template <typename T>
class Span2D {
 public:
  Span2D() = default;
  Span2D(T* data, int width, int height, int stride)
      : data_(data), width_(width), height_(height), stride_(stride) {
    HIPACC_CHECK(width >= 0 && height >= 0 && stride >= width);
  }
  /// Dense view (stride == width).
  Span2D(T* data, int width, int height)
      : Span2D(data, width, height, width) {}

  /// Implicit conversion from mutable to const element type.
  operator Span2D<const T>() const {
    return Span2D<const T>(data_, width_, height_, stride_);
  }

  T* data() const noexcept { return data_; }
  int width() const noexcept { return width_; }
  int height() const noexcept { return height_; }
  int stride() const noexcept { return stride_; }
  bool empty() const noexcept { return width_ == 0 || height_ == 0; }

  /// Unchecked element access; (x, y) must lie inside the view.
  T& operator()(int x, int y) const { return data_[y * static_cast<std::ptrdiff_t>(stride_) + x]; }

  /// Checked element access for tests and debugging.
  T& at(int x, int y) const {
    HIPACC_CHECK_MSG(contains(x, y), "Span2D::at out of range");
    return (*this)(x, y);
  }

  bool contains(int x, int y) const noexcept {
    return x >= 0 && x < width_ && y >= 0 && y < height_;
  }

  /// Pointer to the first element of row `y`.
  T* row(int y) const { return data_ + y * static_cast<std::ptrdiff_t>(stride_); }

  /// Sub-view of the rectangle [x0, x0+w) x [y0, y0+h); must be in bounds.
  Span2D subview(int x0, int y0, int w, int h) const {
    HIPACC_CHECK(x0 >= 0 && y0 >= 0 && w >= 0 && h >= 0 && x0 + w <= width_ &&
                 y0 + h <= height_);
    return Span2D(data_ + y0 * static_cast<std::ptrdiff_t>(stride_) + x0, w, h, stride_);
  }

 private:
  T* data_ = nullptr;
  int width_ = 0;
  int height_ = 0;
  int stride_ = 0;
};

}  // namespace hipacc
