#include "support/atomic_file.hpp"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>
#include <utime.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "support/string_utils.hpp"

namespace hipacc::support {
namespace {

bool IsDir(const std::string& path) {
  struct stat st{};
  return ::stat(path.c_str(), &st) == 0 && S_ISDIR(st.st_mode);
}

/// Process-unique suffix for temp names: pid + a monotonic counter, so
/// concurrent writers (threads or processes) never collide on the temp file
/// even when racing for the same destination.
std::string TempSuffix() {
  static std::atomic<std::uint64_t> counter{0};
  return StrFormat(".tmp.%d.%llu", static_cast<int>(::getpid()),
                   static_cast<unsigned long long>(
                       counter.fetch_add(1, std::memory_order_relaxed)));
}

}  // namespace

Status EnsureDirs(const std::string& path) {
  if (path.empty()) return Status::Invalid("EnsureDirs: empty path");
  if (IsDir(path)) return Status::Ok();
  std::string partial;
  for (const std::string& part : Split(path, '/')) {
    partial += part;
    partial += '/';
    if (part.empty() || IsDir(partial)) continue;
    if (::mkdir(partial.c_str(), 0755) != 0 && errno != EEXIST)
      return Status::Internal(StrFormat("mkdir %s failed: %s", partial.c_str(),
                                        std::strerror(errno)));
  }
  return Status::Ok();
}

Status WriteFileAtomic(const std::string& path, const std::string& contents) {
  const std::string tmp = path + TempSuffix();
  FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr)
    return Status::Internal(StrFormat("open %s for write failed: %s",
                                      tmp.c_str(), std::strerror(errno)));
  const std::size_t written =
      contents.empty() ? 0 : std::fwrite(contents.data(), 1, contents.size(), f);
  const bool flushed = std::fflush(f) == 0;
  std::fclose(f);
  if (written != contents.size() || !flushed) {
    std::remove(tmp.c_str());
    return Status::Internal("short write to " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::Internal(StrFormat("rename %s -> %s failed: %s", tmp.c_str(),
                                      path.c_str(), std::strerror(errno)));
  }
  return Status::Ok();
}

std::optional<std::string> ReadFileIfExists(const std::string& path) {
  FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return std::nullopt;
  std::string out;
  char buffer[1 << 16];
  std::size_t n = 0;
  while ((n = std::fread(buffer, 1, sizeof(buffer), f)) > 0)
    out.append(buffer, n);
  const bool ok = std::ferror(f) == 0;
  std::fclose(f);
  if (!ok) return std::nullopt;
  return out;
}

void RemoveFileQuiet(const std::string& path) { std::remove(path.c_str()); }

std::vector<DirEntry> ListDirFiles(const std::string& dir) {
  std::vector<DirEntry> out;
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return out;
  while (const dirent* entry = ::readdir(d)) {
    const std::string name = entry->d_name;
    if (name == "." || name == "..") continue;
    const std::string path = dir + "/" + name;
    struct stat st{};
    if (::stat(path.c_str(), &st) != 0 || !S_ISREG(st.st_mode)) continue;
    out.push_back({path, static_cast<std::uint64_t>(st.st_size),
                   static_cast<std::int64_t>(st.st_mtime)});
  }
  ::closedir(d);
  return out;
}

std::vector<std::string> ListSubdirs(const std::string& dir) {
  std::vector<std::string> out;
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return out;
  while (const dirent* entry = ::readdir(d)) {
    const std::string name = entry->d_name;
    if (name == "." || name == "..") continue;
    if (IsDir(dir + "/" + name)) out.push_back(name);
  }
  ::closedir(d);
  return out;
}

void TouchFile(const std::string& path) { ::utime(path.c_str(), nullptr); }

std::string UserCacheDir(const std::string& app) {
  if (const char* xdg = std::getenv("XDG_CACHE_HOME"))
    if (xdg[0] != '\0') return std::string(xdg) + "/" + app;
  if (const char* home = std::getenv("HOME"))
    if (home[0] != '\0') return std::string(home) + "/.cache/" + app;
  return "";
}

FileLock::FileLock(const std::string& path, int wait_ms, int stale_ms)
    : path_(path) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(wait_ms);
  for (;;) {
    const int fd = ::open(path_.c_str(), O_CREAT | O_EXCL | O_WRONLY, 0644);
    if (fd >= 0) {
      const std::string pid = StrFormat("%d\n", static_cast<int>(::getpid()));
      (void)!::write(fd, pid.data(), pid.size());
      ::close(fd);
      held_ = true;
      return;
    }
    if (errno == EEXIST) {
      // Break locks whose owner crashed before the unlink.
      struct stat st{};
      if (::stat(path_.c_str(), &st) == 0) {
        const auto age = std::chrono::system_clock::now() -
                         std::chrono::system_clock::from_time_t(st.st_mtime);
        if (age > std::chrono::milliseconds(stale_ms)) {
          std::remove(path_.c_str());
          continue;
        }
      }
    }
    if (std::chrono::steady_clock::now() >= deadline) return;  // proceed unlocked
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
}

FileLock::~FileLock() {
  if (held_) std::remove(path_.c_str());
}

}  // namespace hipacc::support
