#include "ast/cfg.hpp"

#include <gtest/gtest.h>

namespace hipacc::ast {
namespace {

StmtPtr SimpleAssign(const char* name) {
  return Assign(name, AssignOp::kAssign, IntLit(0));
}

TEST(CfgTest, StraightLineIsOneBlockPlusExit) {
  const StmtPtr body = Block({Decl(ScalarType::kInt, "a", IntLit(0)),
                              SimpleAssign("a"), OutputAssign(IntLit(1))});
  const Cfg cfg = BuildCfg(body);
  ASSERT_EQ(cfg.blocks.size(), 2u);  // entry + exit
  EXPECT_EQ(cfg.block(cfg.entry).stmts.size(), 3u);
  EXPECT_EQ(cfg.block(cfg.entry).successors,
            std::vector<int>{cfg.exit});
}

TEST(CfgTest, IfCreatesDiamond) {
  const StmtPtr body = Block({
      If(BoolLit(true), Block({SimpleAssign("t")}), Block({SimpleAssign("f")})),
      OutputAssign(IntLit(0)),
  });
  const Cfg cfg = BuildCfg(body);
  const BasicBlock& entry = cfg.block(cfg.entry);
  ASSERT_EQ(entry.successors.size(), 2u);  // then + else
  ASSERT_NE(entry.terminator, nullptr);
  EXPECT_EQ(entry.terminator->kind, StmtKind::kIf);
  // Both branches converge on the join block.
  const int then_end = entry.successors[0];
  const int else_end = entry.successors[1];
  EXPECT_EQ(cfg.block(then_end).successors, cfg.block(else_end).successors);
}

TEST(CfgTest, IfWithoutElseBranchesToJoin) {
  const StmtPtr body =
      Block({If(BoolLit(true), Block({SimpleAssign("t")}))});
  const Cfg cfg = BuildCfg(body);
  const BasicBlock& entry = cfg.block(cfg.entry);
  ASSERT_EQ(entry.successors.size(), 2u);  // then + direct edge to join
}

TEST(CfgTest, ForLoopHasBackEdge) {
  const StmtPtr body = Block({For("i", IntLit(0), IntLit(3), 1,
                                  Block({SimpleAssign("x")}))});
  const Cfg cfg = BuildCfg(body);
  // Find the header: the block whose terminator is the For statement.
  const BasicBlock* header = nullptr;
  for (const auto& bb : cfg.blocks)
    if (bb.terminator && bb.terminator->kind == StmtKind::kFor) header = &bb;
  ASSERT_NE(header, nullptr);
  EXPECT_EQ(header->successors.size(), 2u);  // body and loop exit
  // The body block loops back to the header.
  const int body_id = header->successors[0];
  bool back_edge = false;
  // Follow the body chain until a block points back at the header.
  std::vector<int> work = {body_id};
  std::vector<bool> seen(cfg.blocks.size(), false);
  while (!work.empty()) {
    const int id = work.back();
    work.pop_back();
    if (seen[static_cast<size_t>(id)]) continue;
    seen[static_cast<size_t>(id)] = true;
    for (const int succ : cfg.block(id).successors) {
      if (succ == header->id) back_edge = true;
      else work.push_back(succ);
    }
  }
  EXPECT_TRUE(back_edge);
}

TEST(CfgTest, DepthFirstOrderVisitsEveryBlockOnce) {
  const StmtPtr body = Block({
      For("y", IntLit(0), IntLit(2), 1,
          Block({For("x", IntLit(0), IntLit(2), 1,
                     Block({If(BoolLit(true), Block({SimpleAssign("a")}))}))})),
      OutputAssign(IntLit(0)),
  });
  const Cfg cfg = BuildCfg(body);
  const std::vector<int> order = DepthFirstOrder(cfg);
  EXPECT_EQ(order.size(), cfg.blocks.size());
  std::vector<bool> seen(cfg.blocks.size(), false);
  for (const int id : order) {
    EXPECT_FALSE(seen[static_cast<size_t>(id)]);
    seen[static_cast<size_t>(id)] = true;
  }
  EXPECT_EQ(order.front(), cfg.entry);
}

}  // namespace
}  // namespace hipacc::ast
