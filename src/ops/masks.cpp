#include "ops/masks.hpp"

#include <cmath>

#include "support/status.hpp"

namespace hipacc::ops {

std::vector<float> GaussianMask2D(int size, float sigma) {
  HIPACC_CHECK(size > 0 && size % 2 == 1 && sigma > 0.0f);
  const int half = size / 2;
  std::vector<float> mask(static_cast<size_t>(size) * size);
  double sum = 0.0;
  for (int y = -half; y <= half; ++y) {
    for (int x = -half; x <= half; ++x) {
      const double v =
          std::exp(-(x * x + y * y) / (2.0 * sigma * sigma));
      mask[static_cast<size_t>(y + half) * size + (x + half)] =
          static_cast<float>(v);
      sum += v;
    }
  }
  for (float& v : mask) v = static_cast<float>(v / sum);
  return mask;
}

std::vector<float> GaussianMask1D(int size, float sigma) {
  HIPACC_CHECK(size > 0 && size % 2 == 1 && sigma > 0.0f);
  const int half = size / 2;
  std::vector<float> mask(static_cast<size_t>(size));
  double sum = 0.0;
  for (int x = -half; x <= half; ++x) {
    const double v = std::exp(-(x * x) / (2.0 * sigma * sigma));
    mask[static_cast<size_t>(x + half)] = static_cast<float>(v);
    sum += v;
  }
  for (float& v : mask) v = static_cast<float>(v / sum);
  return mask;
}

std::vector<float> BilateralClosenessMask(int sigma_d) {
  HIPACC_CHECK(sigma_d > 0);
  const int half = 2 * sigma_d;
  const int size = 4 * sigma_d + 1;
  const double c_d = 1.0 / (2.0 * sigma_d * sigma_d);
  std::vector<float> mask(static_cast<size_t>(size) * size);
  for (int y = -half; y <= half; ++y)
    for (int x = -half; x <= half; ++x)
      mask[static_cast<size_t>(y + half) * size + (x + half)] =
          static_cast<float>(std::exp(-c_d * x * x) * std::exp(-c_d * y * y));
  return mask;
}

std::vector<float> SobelMaskX() {
  return {-1.0f, 0.0f, 1.0f, -2.0f, 0.0f, 2.0f, -1.0f, 0.0f, 1.0f};
}

std::vector<float> SobelMaskY() {
  return {-1.0f, -2.0f, -1.0f, 0.0f, 0.0f, 0.0f, 1.0f, 2.0f, 1.0f};
}

std::vector<float> LaplacianMask3() {
  return {0.0f, 1.0f, 0.0f, 1.0f, -4.0f, 1.0f, 0.0f, 1.0f, 0.0f};
}

std::vector<float> BoxMask(int size) {
  HIPACC_CHECK(size > 0 && size % 2 == 1);
  return std::vector<float>(static_cast<size_t>(size) * size,
                            1.0f / static_cast<float>(size * size));
}

}  // namespace hipacc::ops
