#include "sim/vm.hpp"

#include <vector>

#include "dsl/boundary.hpp"
#include "sim/block_state.hpp"

namespace hipacc::sim {
namespace {

using namespace hipacc::ast;

/// Resolves one coordinate under the read's guard set. Returns -1 when the
/// constant value must be substituted; sets *violation for unguarded OOB.
/// (Identical to the interpreter's ResolveCoord.)
int ResolveCoord(int c, int n, BoundaryMode mode, bool check_lo, bool check_hi,
                 bool hardware_resolved, bool* violation) {
  if (c >= 0 && c < n) return c;
  if (hardware_resolved)  // texture unit applies the address mode silently
    return dsl::ResolveBoundaryIndex(
        c, n, mode == BoundaryMode::kUndefined ? BoundaryMode::kClamp : mode);
  const bool guarded = (c < 0 && check_lo) || (c >= n && check_hi);
  if (!guarded) {
    *violation = true;
    return c < 0 ? 0 : n - 1;  // clamp as a safety net after recording
  }
  return dsl::ResolveBoundaryIndex(c, n, mode);
}

/// Launch-time bindings of a program's buffer/mask tables, resolved once per
/// block. Null entries are legal until an instruction touches them.
struct BindCtx {
  std::vector<const BufferBinding*> buffers;
  struct MaskBind {
    const std::vector<float>* data = nullptr;
    int width = 1;
  };
  std::vector<MaskBind> masks;
};

struct ParamFill {
  std::uint16_t reg = 0;
  ScalarType type = ScalarType::kFloat;
  double value = 0.0;
};

// Lane loops templated on the operator so the per-lane switch inside the
// Eval*Lane helpers constant-folds away (at -O2 the optimizer does not
// unswitch the loop by itself); dispatch happens once per instruction, not
// once per lane. Reading both operands before the write keeps dst aliasing
// either source safe, exactly like the generic handlers did.

template <ast::BinaryOp op, bool float_math>
void BinaryLanes(const WarpVal& a, const WarpVal& b, WarpVal* d, int warp) {
  for (int l = 0; l < warp; ++l) {
    const std::size_t i = static_cast<std::size_t>(l);
    d->lanes[i] = EvalBinaryLane(op, float_math, a.lanes[i], b.lanes[i]);
  }
}

template <ast::AssignOp op, bool float_math>
void AssignLanes(const WarpVal& s, WarpVal* d, const LaneMask& mk,
                 ast::ScalarType to, bool convert, int warp) {
  constexpr ast::ScalarType kFolded =
      float_math ? ast::ScalarType::kFloat : ast::ScalarType::kInt;
  for (int l = 0; l < warp; ++l) {
    const std::size_t i = static_cast<std::size_t>(l);
    if (!mk[i]) continue;
    const double rhs = convert ? ConvertLaneValue(s.lanes[i], to) : s.lanes[i];
    d->lanes[i] = CombineLane(kFolded, op, d->lanes[i], rhs);
  }
}

template <VmBuiltin fn>
void BuiltinLanes(const WarpVal& a, const WarpVal& b, WarpVal* d, int warp) {
  for (int l = 0; l < warp; ++l) {
    const std::size_t i = static_cast<std::size_t>(l);
    d->lanes[i] = EvalBuiltinLane(fn, a.lanes[i], b.lanes[i]);
  }
}

/// Accumulates the interpreter-parity ALU/SFU costs in locals the compiler
/// can keep in registers; the destructor flushes them into the Metrics on
/// every exit path (including error returns) so totals stay exact.
struct CostCounters {
  Metrics* m;
  std::uint64_t alu = 0;
  std::uint64_t sfu = 0;
  ~CostCounters() {
    m->alu_ops += alu;
    m->sfu_calls += sfu;
  }
};

/// Per-thread scratch shared by consecutive VmRunner instances on the same
/// worker thread (one simulated block each).
struct VmScratch {
  std::vector<WarpVal> regs;
  std::vector<LaneMask> masks;
};

VmScratch& ThreadScratch() {
  static thread_local VmScratch scratch;
  return scratch;
}

class VmRunner {
 public:
  VmRunner(const Launch& launch, const ProgramSet& ps,
           const hw::DeviceSpec& device, int bx, int by, Metrics* metrics,
           VmDispatch dispatch)
      : st_(launch, device, bx, by, metrics),
        ps_(ps),
        dispatch_(dispatch),
        regs_(ThreadScratch().regs),
        masks_(ThreadScratch().masks) {}

  Status Run(std::uint64_t* executed_insns) {
    Result<BlockState::Plan> begun = st_.Begin();
    if (!begun.ok()) return begun.status();
    const BlockState::Plan plan = begun.value();
    const Program* prog = ps_.Find(plan.region);
    if (!prog)
      return Status::Internal("no bytecode program for region of kernel " +
                              ps_.kernel_name);

    bind_.buffers.reserve(ps_.buffer_names.size());
    for (const auto& name : ps_.buffer_names)
      bind_.buffers.push_back(st_.launch.FindBuffer(name));
    bind_.masks.reserve(ps_.const_masks.size());
    for (const auto& ref : ps_.const_masks) {
      BindCtx::MaskBind mb;
      const auto it = st_.launch.const_masks.find(ref.name);
      if (it != st_.launch.const_masks.end()) mb.data = &it->second;
      mb.width = ref.width;
      bind_.masks.push_back(mb);
    }

    std::vector<ParamFill> seeds;
    seeds.reserve(prog->params.size());
    for (const auto& p : prog->params) {
      const auto it = st_.launch.scalar_args.find(p.name);
      const double v = it != st_.launch.scalar_args.end() ? it->second : 0.0;
      seeds.push_back(ParamFill{
          p.reg, p.type,
          p.type == ScalarType::kFloat
              ? static_cast<double>(static_cast<float>(v))
              : v});
    }

    grid_ = hw::ComputeGrid(st_.launch.config, st_.launch.width,
                            st_.launch.height, st_.launch.kernel->ppt);
    regs_.resize(static_cast<std::size_t>(prog->num_regs));
    masks_.resize(static_cast<std::size_t>(prog->num_masks));

    for (int w = 0; w < plan.warps; ++w) {
      st_.BuildWarpContext(w, plan.threads);
      if (!AnyActive(st_.active)) continue;
      // Integer mirrors of the warp context so fused coordinates are pure
      // int adds instead of per-lane double→int conversions.
      for (int l = 0; l < st_.warp_size; ++l) {
        const std::size_t i = static_cast<std::size_t>(l);
        tid_xi_[i] = static_cast<int>(st_.tid_x[i]);
        tid_yi_[i] = static_cast<int>(st_.tid_y[i]);
        gid_xi_[i] = static_cast<int>(st_.gid_x[i]);
        gid_yi_[i] = static_cast<int>(st_.gid_y[i]);
      }
      masks_[0] = st_.active;
      for (const ParamFill& seed : seeds) {
        WarpVal& r = regs_[seed.reg];
        r.type = seed.type;
        r.lanes.fill(seed.value);
      }
      HIPACC_RETURN_IF_ERROR(dispatch_ == VmDispatch::kThreaded
                                 ? ExecWarpThreaded(*prog, executed_insns)
                                 : ExecWarpSwitch(*prog, executed_insns));
    }
    return Status::Ok();
  }

 private:
  /// Materializes one coordinate for every lane of the warp, dispatching on
  /// the coordinate kind once instead of per lane. Lanes outside `mk` get 0
  /// for register coordinates (their values are never used — every consumer
  /// skips or zero-fills masked lanes) so stale register lanes are never
  /// cast to int.
  void CoordLanes(const Coord& c, const LaneMask& mk, int warp,
                  int* out) const {
    switch (c.kind) {
      case CoordKind::kReg: {
        const WarpVal& r = regs_[c.reg];
        for (int l = 0; l < warp; ++l) {
          const std::size_t i = static_cast<std::size_t>(l);
          out[l] = mk[i] ? static_cast<int>(r.lanes[i]) : 0;
        }
        break;
      }
      case CoordKind::kGidX:
        for (int l = 0; l < warp; ++l)
          out[l] = gid_xi_[static_cast<std::size_t>(l)] + c.off;
        break;
      case CoordKind::kGidY:
        for (int l = 0; l < warp; ++l)
          out[l] = gid_yi_[static_cast<std::size_t>(l)] + c.off;
        break;
      case CoordKind::kTidX:
        for (int l = 0; l < warp; ++l)
          out[l] = tid_xi_[static_cast<std::size_t>(l)] + c.off;
        break;
      case CoordKind::kTidY:
        for (int l = 0; l < warp; ++l)
          out[l] = tid_yi_[static_cast<std::size_t>(l)] + c.off;
        break;
      case CoordKind::kImm:
        for (int l = 0; l < warp; ++l) out[l] = c.off;
        break;
    }
  }

  // Both dispatchers share the handler bodies in vm_exec.inc; only the
  // dispatch glue differs, so they cannot diverge semantically.
  Status ExecWarpSwitch(const Program& prog, std::uint64_t* executed_insns) {
#define HIPACC_VM_THREADED 0
#include "sim/vm_exec.inc"
#undef HIPACC_VM_THREADED
  }

#if defined(__GNUC__) || defined(__clang__)
  Status ExecWarpThreaded(const Program& prog, std::uint64_t* executed_insns) {
#define HIPACC_VM_THREADED 1
#include "sim/vm_exec.inc"
#undef HIPACC_VM_THREADED
  }
#else
  // Computed goto is a GNU extension; other compilers run the switch.
  Status ExecWarpThreaded(const Program& prog, std::uint64_t* executed_insns) {
    return ExecWarpSwitch(prog, executed_insns);
  }
#endif

  Status LoadImage(const Insn& I, int warp) {
    const BufferBinding* buf = bind_.buffers[static_cast<std::size_t>(I.buffer)];
    if (!buf)
      return Status::Invalid(
          "unbound buffer " + ps_.buffer_names[static_cast<std::size_t>(I.buffer)]);
    Metrics* m = st_.metrics;
    WarpVal& d = regs_[I.dst];
    const LaneMask& mk = masks_[I.mask];
    const bool tex = I.sub == 1;
    const bool hardware_resolved = I.hw_bh || tex;
    int cxs[kMaxWarpWidth];
    int cys[kMaxWarpWidth];
    CoordLanes(I.cx, mk, warp, cxs);
    CoordLanes(I.cy, mk, warp, cys);
    const int bw = buf->width;
    const int bh = buf->height;
    const int stride = buf->stride;
    const float* data = buf->data;
    st_.addr_scratch.clear();
    for (int l = 0; l < warp; ++l) {
      const std::size_t i = static_cast<std::size_t>(l);
      if (!mk[i]) {
        d.lanes[i] = 0.0;
        continue;
      }
      const int cx = cxs[l];
      const int cy = cys[l];
      // In-range fast path: boundary handling (of any mode) only matters
      // for out-of-range coordinates, which even border-region warps see on
      // a minority of lanes.
      if (static_cast<unsigned>(cx) < static_cast<unsigned>(bw) &&
          static_cast<unsigned>(cy) < static_cast<unsigned>(bh)) {
        const std::uint64_t addr =
            static_cast<std::uint64_t>(cy) * stride + cx;
        d.lanes[i] = static_cast<double>(data[addr]);
        st_.addr_scratch.push_back(addr);
        continue;
      }
      // Constant mode with guards: out-of-bounds lanes are predicated off
      // and produce the constant without touching memory.
      if (I.boundary == BoundaryMode::kConstant && !I.hw_bh) {
        const bool oob_x =
            (cx < 0 && I.checks.lo_x) || (cx >= buf->width && I.checks.hi_x);
        const bool oob_y =
            (cy < 0 && I.checks.lo_y) || (cy >= buf->height && I.checks.hi_y);
        if (oob_x || oob_y) {
          d.lanes[i] = static_cast<double>(I.cvalue);
          continue;
        }
      }
      bool violation = false;
      const int rx = ResolveCoord(cx, buf->width, I.boundary, I.checks.lo_x,
                                  I.checks.hi_x, hardware_resolved, &violation);
      const int ry = ResolveCoord(cy, buf->height, I.boundary, I.checks.lo_y,
                                  I.checks.hi_y, hardware_resolved, &violation);
      if (violation) ++m->oob_violations;
      if (rx < 0 || ry < 0) {
        d.lanes[i] = static_cast<double>(I.cvalue);
        continue;
      }
      const std::uint64_t addr = static_cast<std::uint64_t>(ry) * buf->stride + rx;
      d.lanes[i] = static_cast<double>(buf->data[addr]);
      st_.addr_scratch.push_back(addr);
    }
    d.type = ScalarType::kFloat;
    if (tex)
      st_.memory.TextureAccess(st_.addr_scratch, m);
    else
      st_.memory.GlobalAccess(st_.addr_scratch, /*is_write=*/false, m);
    return Status::Ok();
  }

  static void CopyLanes(WarpVal* d, const std::array<double, kMaxWarpWidth>& src,
                        int warp) {
    for (int l = 0; l < warp; ++l) {
      const std::size_t i = static_cast<std::size_t>(l);
      d->lanes[i] = src[i];
    }
  }

  static void FillLanes(WarpVal* d, double v, int warp) {
    for (int l = 0; l < warp; ++l) d->lanes[static_cast<std::size_t>(l)] = v;
  }

  BlockState st_;
  const ProgramSet& ps_;
  VmDispatch dispatch_;
  BindCtx bind_;
  hw::GridDim grid_;
  // Register/mask files live in thread-local scratch reused across blocks
  // (allocating and zero-filling hundreds of WarpVals per block would
  // dominate small launches). Reuse is safe: every compiled program writes
  // a register before its first read (reads before declaration are compile
  // bail-outs), so stale lanes from a previous block are never observable.
  std::vector<WarpVal>& regs_;
  std::vector<LaneMask>& masks_;
  // Integer mirrors of the current warp's thread/global indices, refreshed
  // per warp so fused coordinate operands stay in integer arithmetic.
  std::array<int, kMaxWarpWidth> tid_xi_{}, tid_yi_{}, gid_xi_{}, gid_yi_{};
};

}  // namespace

Status RunBlockBytecode(const Launch& launch, const ProgramSet& programs,
                        const hw::DeviceSpec& device, int block_x_idx,
                        int block_y_idx, Metrics* metrics,
                        std::uint64_t* executed_insns, VmDispatch dispatch) {
  HIPACC_CHECK(launch.kernel != nullptr && metrics != nullptr);
  return VmRunner(launch, programs, device, block_x_idx, block_y_idx, metrics,
                  dispatch)
      .Run(executed_insns);
}

}  // namespace hipacc::sim
