# Empty compiler generated dependencies file for hipacc_baselines.
# This may be replaced when dependencies are built.
