file(REMOVE_RECURSE
  "CMakeFiles/table7_hd6970_opencl.dir/table7_hd6970_opencl.cpp.o"
  "CMakeFiles/table7_hd6970_opencl.dir/table7_hd6970_opencl.cpp.o.d"
  "table7_hd6970_opencl"
  "table7_hd6970_opencl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table7_hd6970_opencl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
