// Streaming frame executor: differential bit-identity against the one-shot
// graph path (serial and overlap windows, every boundary mode), cross-frame
// aliasing stress at full window depth, in-order retirement, per-epoch
// profile batching, streaming CLI flags, and failure propagation from the
// bind/retire callbacks.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "compiler/profile.hpp"
#include "image/synthetic.hpp"
#include "ops/isp.hpp"
#include "runtime/stream_executor.hpp"
#include "sim/trace.hpp"

namespace hipacc {
namespace {

constexpr int kSize = 48;

/// Workers are pinned above 1 so the overlap window actually overlaps even
/// on a single-core build machine (0 would resolve to hardware concurrency).
runtime::GraphOptions StreamGraphOptions() {
  runtime::GraphOptions options;
  options.workers = 4;
  return options;
}

HostImage<float> FrameRaw(long long frame) {
  return MakeNoiseImage(kSize, kSize, 977u + static_cast<std::uint64_t>(frame));
}

struct IspOutputs {
  HostImage<float> y{kSize, kSize};
  HostImage<float> u{kSize, kSize};
  HostImage<float> v{kSize, kSize};
};

/// One-shot reference: each frame through PipelineGraph::Run on a fresh
/// per-frame execution (the non-streaming path the executor must match bit
/// for bit).
std::vector<IspOutputs> OneShotReference(ast::BoundaryMode mode, int frames,
                                         const HostImage<float>& gain,
                                         const runtime::GraphOptions& options) {
  runtime::PipelineGraph graph;
  ops::BuildCameraIspGraph(graph, kSize, kSize, mode);
  std::vector<IspOutputs> outputs(static_cast<std::size_t>(frames));
  for (int f = 0; f < frames; ++f) {
    const HostImage<float> raw = FrameRaw(f);
    IspOutputs& out = outputs[static_cast<std::size_t>(f)];
    const Status run =
        graph.Run({{"raw", &raw}, {"gain", &gain}},
                  {{"y_dn", &out.y}, {"u", &out.u}, {"v", &out.v}}, options);
    EXPECT_TRUE(run.ok()) << run.ToString();
  }
  return outputs;
}

/// Streams `frames` frames and copies every retired frame's outputs aside.
std::vector<IspOutputs> StreamFrames(ast::BoundaryMode mode, int frames,
                                     const HostImage<float>& gain,
                                     runtime::StreamMode stream_mode,
                                     int in_flight,
                                     const runtime::GraphOptions& options,
                                     runtime::StreamStats* stats = nullptr) {
  runtime::PipelineGraph graph;
  ops::BuildCameraIspGraph(graph, kSize, kSize, mode);
  runtime::StreamOptions sopts;
  sopts.mode = stream_mode;
  sopts.in_flight = in_flight;
  runtime::StreamExecutor executor(graph, options, sopts);

  const int window = executor.window();
  std::vector<HostImage<float>> raws(static_cast<std::size_t>(window));
  std::vector<IspOutputs> slots(static_cast<std::size_t>(window));
  std::vector<IspOutputs> retired(static_cast<std::size_t>(frames));
  const Status run = executor.Run(
      frames,
      [&](long long frame, runtime::PipelineGraph::InputBindings* in,
          runtime::PipelineGraph::OutputBindings* out) {
        const std::size_t slot = static_cast<std::size_t>(frame % window);
        raws[slot] = FrameRaw(frame);
        in->assign({{"raw", &raws[slot]}, {"gain", &gain}});
        out->assign({{"y_dn", &slots[slot].y},
                     {"u", &slots[slot].u},
                     {"v", &slots[slot].v}});
        return Status::Ok();
      },
      [&](long long frame) {
        retired[static_cast<std::size_t>(frame)] =
            slots[static_cast<std::size_t>(frame % window)];
        return Status::Ok();
      });
  EXPECT_TRUE(run.ok()) << run.ToString();
  if (stats != nullptr) *stats = executor.stats();
  return retired;
}

TEST(StreamExecutorTest, SerialStreamMatchesOneShotRuns) {
  const HostImage<float> gain = ops::MakeVignettingGain(kSize, kSize);
  const runtime::GraphOptions options = StreamGraphOptions();
  const std::vector<IspOutputs> expected =
      OneShotReference(ast::BoundaryMode::kClamp, 4, gain, options);
  const std::vector<IspOutputs> streamed =
      StreamFrames(ast::BoundaryMode::kClamp, 4, gain,
                   runtime::StreamMode::kSerial, 1, options);
  for (std::size_t f = 0; f < expected.size(); ++f) {
    EXPECT_EQ(expected[f].y, streamed[f].y) << "frame " << f;
    EXPECT_EQ(expected[f].u, streamed[f].u) << "frame " << f;
    EXPECT_EQ(expected[f].v, streamed[f].v) << "frame " << f;
  }
}

TEST(StreamExecutorTest, OverlapBitIdenticalAcrossDepthsAndBoundaryModes) {
  const HostImage<float> gain = ops::MakeVignettingGain(kSize, kSize);
  const runtime::GraphOptions options = StreamGraphOptions();
  const int frames = 5;
  const ast::BoundaryMode modes[] = {
      ast::BoundaryMode::kUndefined, ast::BoundaryMode::kClamp,
      ast::BoundaryMode::kRepeat, ast::BoundaryMode::kMirror,
      ast::BoundaryMode::kConstant};
  for (const ast::BoundaryMode mode : modes) {
    const std::vector<IspOutputs> expected =
        OneShotReference(mode, frames, gain, options);
    for (const int in_flight : {1, 2, 3}) {
      const std::vector<IspOutputs> streamed =
          StreamFrames(mode, frames, gain, runtime::StreamMode::kOverlap,
                       in_flight, options);
      for (std::size_t f = 0; f < expected.size(); ++f) {
        EXPECT_EQ(expected[f].y, streamed[f].y)
            << "mode " << static_cast<int>(mode) << " in_flight " << in_flight
            << " frame " << f;
        EXPECT_EQ(expected[f].u, streamed[f].u);
        EXPECT_EQ(expected[f].v, streamed[f].v);
      }
    }
  }
}

// Holds frame 0 in the retire callback until the window is fully admitted,
// forcing every frame of the window to be genuinely in flight at once; each
// retired frame must still carry exactly its own frame's pixels (the
// per-frame FrameExec + BufferPool contract: no cross-frame aliasing).
TEST(StreamExecutorTest, FullWindowDepthDoesNotAliasFrames) {
  const HostImage<float> gain = ops::MakeVignettingGain(kSize, kSize);
  const runtime::GraphOptions options = StreamGraphOptions();
  const int frames = 8;
  const int in_flight = 3;
  const std::vector<IspOutputs> expected =
      OneShotReference(ast::BoundaryMode::kClamp, frames, gain, options);

  runtime::PipelineGraph graph;
  ops::BuildCameraIspGraph(graph, kSize, kSize, ast::BoundaryMode::kClamp);
  runtime::StreamOptions sopts;
  sopts.mode = runtime::StreamMode::kOverlap;
  sopts.in_flight = in_flight;
  runtime::StreamExecutor executor(graph, options, sopts);
  const int window = executor.window();
  ASSERT_EQ(window, in_flight);

  std::vector<HostImage<float>> raws(static_cast<std::size_t>(window));
  std::vector<IspOutputs> slots(static_cast<std::size_t>(window));
  std::vector<IspOutputs> retired(static_cast<std::size_t>(frames));
  std::atomic<int> admitted{0};
  const Status run = executor.Run(
      frames,
      [&](long long frame, runtime::PipelineGraph::InputBindings* in,
          runtime::PipelineGraph::OutputBindings* out) {
        const std::size_t slot = static_cast<std::size_t>(frame % window);
        raws[slot] = FrameRaw(frame);
        in->assign({{"raw", &raws[slot]}, {"gain", &gain}});
        out->assign({{"y_dn", &slots[slot].y},
                     {"u", &slots[slot].u},
                     {"v", &slots[slot].v}});
        admitted.fetch_add(1);
        return Status::Ok();
      },
      [&](long long frame) {
        if (frame == 0) {
          // The window can keep admitting while retirement is blocked; wait
          // for it to fill completely before letting any frame retire.
          while (admitted.load() < in_flight)
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
        retired[static_cast<std::size_t>(frame)] =
            slots[static_cast<std::size_t>(frame % window)];
        return Status::Ok();
      });
  ASSERT_TRUE(run.ok()) << run.ToString();
  EXPECT_EQ(executor.stats().max_in_flight, in_flight);
  for (std::size_t f = 0; f < expected.size(); ++f) {
    EXPECT_EQ(expected[f].y, retired[f].y) << "frame " << f;
    EXPECT_EQ(expected[f].u, retired[f].u) << "frame " << f;
    EXPECT_EQ(expected[f].v, retired[f].v) << "frame " << f;
  }
}

TEST(StreamExecutorTest, FramesRetireInOrderAndStatsCount) {
  const HostImage<float> gain = ops::MakeVignettingGain(kSize, kSize);
  runtime::GraphOptions options = StreamGraphOptions();
  sim::TraceSink trace;
  options.run.trace = &trace;

  runtime::PipelineGraph graph;
  ops::BuildCameraIspGraph(graph, kSize, kSize, ast::BoundaryMode::kClamp);
  runtime::StreamOptions sopts;
  sopts.mode = runtime::StreamMode::kOverlap;
  sopts.in_flight = 3;
  runtime::StreamExecutor executor(graph, options, sopts);

  const int frames = 6;
  HostImage<float> raw(kSize, kSize);
  IspOutputs out;
  std::vector<long long> order;
  const Status run = executor.Run(
      frames,
      [&](long long frame, runtime::PipelineGraph::InputBindings* in,
          runtime::PipelineGraph::OutputBindings* outputs) {
        raw = FrameRaw(frame);
        in->assign({{"raw", &raw}, {"gain", &gain}});
        outputs->assign({{"y_dn", &out.y}, {"u", &out.u}, {"v", &out.v}});
        return Status::Ok();
      },
      [&](long long frame) {
        order.push_back(frame);
        return Status::Ok();
      });
  ASSERT_TRUE(run.ok()) << run.ToString();
  ASSERT_EQ(order.size(), static_cast<std::size_t>(frames));
  for (int f = 0; f < frames; ++f) EXPECT_EQ(order[static_cast<std::size_t>(f)], f);
  EXPECT_EQ(executor.stats().frames, frames);
  EXPECT_EQ(executor.stats().latencies_ms.size(),
            static_cast<std::size_t>(frames));
  EXPECT_GE(executor.stats().max_in_flight, 1);
  EXPECT_LE(executor.stats().max_in_flight, 3);
  EXPECT_GT(executor.stats().fps, 0.0);
  EXPECT_GE(executor.stats().LatencyPercentile(99),
            executor.stats().LatencyPercentile(50));
  EXPECT_EQ(trace.counter("stream.frames"), frames);
  EXPECT_EQ(trace.counter("stream.runs"), 1);
}

// Streaming must not take the profile store's lock per launch: every frame
// flushes its simulated-launch observations as ONE RecordBatch at retire.
TEST(StreamExecutorTest, ProfileObservationsBatchPerFrame) {
  const HostImage<float> gain = ops::MakeVignettingGain(kSize, kSize);
  compiler::ProfileStore store;
  runtime::GraphOptions options = StreamGraphOptions();
  options.executor = runtime::GraphOptions::Executor::kSimulator;
  options.run.profiles = &store;

  const int frames = 3;
  StreamFrames(ast::BoundaryMode::kClamp, frames, gain,
               runtime::StreamMode::kOverlap, 2, options);
  // One flush per frame; each frame contributed one observation per
  // simulated kernel launch (>= 1), merged in that single flush.
  EXPECT_EQ(store.flush_count(), frames);
  EXPECT_GE(store.observation_count(), store.flush_count());
  EXPECT_EQ(store.observation_count() % frames, 0);
  EXPECT_GT(store.size(), 0u);
}

TEST(StreamExecutorTest, ModelledOverlapAtLeastMatchesSerial) {
  runtime::PipelineGraph graph;
  ops::BuildCameraIspGraph(graph, kSize, kSize, ast::BoundaryMode::kClamp);
  runtime::StreamOptions serial;
  serial.mode = runtime::StreamMode::kSerial;
  runtime::StreamExecutor serial_exec(graph, StreamGraphOptions(), serial);
  Result<runtime::StreamModel> serial_model = serial_exec.ModelThroughput(16);
  ASSERT_TRUE(serial_model.ok()) << serial_model.status().ToString();

  runtime::PipelineGraph graph2;
  ops::BuildCameraIspGraph(graph2, kSize, kSize, ast::BoundaryMode::kClamp);
  runtime::StreamOptions overlap;
  overlap.mode = runtime::StreamMode::kOverlap;
  overlap.in_flight = 2;
  runtime::StreamExecutor overlap_exec(graph2, StreamGraphOptions(), overlap);
  Result<runtime::StreamModel> overlap_model =
      overlap_exec.ModelThroughput(16);
  ASSERT_TRUE(overlap_model.ok()) << overlap_model.status().ToString();

  EXPECT_GT(serial_model.value().fps, 0.0);
  EXPECT_GE(overlap_model.value().fps, serial_model.value().fps);
  EXPECT_LE(serial_model.value().compute_utilisation, 1.0);
  EXPECT_LE(overlap_model.value().compute_utilisation, 1.0);
}

TEST(StreamExecutorTest, BinderAndRetirerErrorsAbortTheStream) {
  const HostImage<float> gain = ops::MakeVignettingGain(kSize, kSize);
  HostImage<float> raw = FrameRaw(0);
  IspOutputs out;
  const auto bind_ok = [&](long long, runtime::PipelineGraph::InputBindings* in,
                           runtime::PipelineGraph::OutputBindings* outputs) {
    in->assign({{"raw", &raw}, {"gain", &gain}});
    outputs->assign({{"y_dn", &out.y}, {"u", &out.u}, {"v", &out.v}});
    return Status::Ok();
  };

  runtime::PipelineGraph graph;
  ops::BuildCameraIspGraph(graph, kSize, kSize, ast::BoundaryMode::kClamp);
  runtime::StreamOptions sopts;
  sopts.mode = runtime::StreamMode::kOverlap;
  sopts.in_flight = 2;
  {
    runtime::StreamExecutor executor(graph, StreamGraphOptions(), sopts);
    const Status run = executor.Run(
        4,
        [&](long long frame, runtime::PipelineGraph::InputBindings* in,
            runtime::PipelineGraph::OutputBindings* outputs) {
          if (frame == 1) return Status::Invalid("no frame 1");
          return bind_ok(frame, in, outputs);
        },
        {});
    EXPECT_FALSE(run.ok());
  }
  {
    runtime::StreamExecutor executor(graph, StreamGraphOptions(), sopts);
    const Status run =
        executor.Run(4, bind_ok, [](long long frame) {
          return frame == 0 ? Status::Invalid("retire failed")
                            : Status::Ok();
        });
    EXPECT_FALSE(run.ok());
  }
  {
    // Unbound source: the per-frame binding validation rejects the frame.
    runtime::StreamExecutor executor(graph, StreamGraphOptions(), sopts);
    const Status run = executor.Run(
        2,
        [&](long long, runtime::PipelineGraph::InputBindings* in,
            runtime::PipelineGraph::OutputBindings* outputs) {
          in->assign({{"raw", &raw}});  // "gain" missing
          outputs->assign({{"y_dn", &out.y}, {"u", &out.u}, {"v", &out.v}});
          return Status::Ok();
        },
        {});
    EXPECT_FALSE(run.ok());
  }
  {
    // The executor stays usable after a failed stream.
    runtime::StreamExecutor executor(graph, StreamGraphOptions(), sopts);
    const Status run = executor.Run(2, bind_ok, {});
    EXPECT_TRUE(run.ok()) << run.ToString();
  }
}

TEST(StreamExecutorTest, StreamCliFlagsRoundTrip) {
  runtime::StreamCliConfig config;
  support::CliParser cli("stream_test", "streaming flag test");
  runtime::RegisterStreamFlags(&cli, &config);
  const char* argv[] = {"stream_test", "--frames=9", "--in-flight=3",
                        "--fps-target=60", "--stream-mode=serial"};
  ASSERT_TRUE(cli.Parse(5, argv).ok());
  EXPECT_EQ(config.frames, 9);
  Result<runtime::StreamOptions> options = config.ToOptions();
  ASSERT_TRUE(options.ok());
  EXPECT_EQ(options.value().mode, runtime::StreamMode::kSerial);
  EXPECT_EQ(options.value().in_flight, 3);
  EXPECT_EQ(options.value().fps_target, 60.0);
  // Generated help mentions every streaming flag.
  const std::string help = cli.Help();
  for (const char* flag :
       {"--frames", "--in-flight", "--fps-target", "--stream-mode"})
    EXPECT_NE(help.find(flag), std::string::npos) << flag;

  config.mode = "sideways";
  EXPECT_FALSE(config.ToOptions().ok());
  config.mode = "overlap";
  config.in_flight = 0;
  EXPECT_FALSE(config.ToOptions().ok());
  config.in_flight = 2;
  config.frames = 0;
  EXPECT_FALSE(config.ToOptions().ok());
}

TEST(StreamExecutorTest, ZeroFramesIsANoOp) {
  runtime::PipelineGraph graph;
  ops::BuildCameraIspGraph(graph, kSize, kSize, ast::BoundaryMode::kClamp);
  runtime::StreamExecutor executor(graph, StreamGraphOptions(), {});
  const Status run = executor.Run(
      0,
      [](long long, runtime::PipelineGraph::InputBindings*,
         runtime::PipelineGraph::OutputBindings*) { return Status::Ok(); },
      {});
  EXPECT_TRUE(run.ok());
  EXPECT_EQ(executor.stats().frames, 0);
  EXPECT_EQ(executor.stats().LatencyPercentile(99), 0.0);
}

}  // namespace
}  // namespace hipacc
